"""Wikihop-style cross-document queries.

Wikihop poses queries as ``(subject entity, relation, ?)`` with a candidate
answer set and a bag of support documents; answering requires hopping from
the subject's document to the document holding the relation value.

The original dataset has no gold-document supervision; the paper says it
post-processed Wikihop "to satisfy our retriever task setting" — we generate
the supervision directly (``gold_titles``), which is the same end state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.corpus import Corpus
from repro.data.hotpot import CHAIN_PAIRS
from repro.data.world import World


@dataclass
class WikihopQuery:
    """One (subject, relation, ?) query with candidates and supports."""

    qid: int
    subject: str
    relation: str
    text: str  # "<relation> <subject>" surface form, as in Wikihop
    candidates: List[str]
    answer: str
    gold_titles: List[str]
    support_titles: List[str] = field(default_factory=list)


@dataclass
class WikihopDataset:
    """Train/validation splits of Wikihop-style queries."""

    corpus: Corpus
    train: List[WikihopQuery] = field(default_factory=list)
    validation: List[WikihopQuery] = field(default_factory=list)

    @property
    def all_queries(self) -> List[WikihopQuery]:
        return self.train + self.validation


def build_wikihop_dataset(
    world: World,
    corpus: Corpus,
    n_candidates: int = 6,
    n_extra_supports: int = 4,
    validation_fraction: float = 0.2,
    seed: Optional[int] = None,
    max_queries: Optional[int] = None,
) -> WikihopDataset:
    """Generate Wikihop-style queries from the world's 2-hop chains.

    For every chain ``anchor --r1--> bridge --r2--> value``, emit a query
    ``(anchor, r2, ?)`` whose answer is ``value``, with distractor
    candidates drawn from other values of ``r2`` and support documents that
    include the gold path plus random distractor documents.
    """
    rng = np.random.RandomState(world.config.seed + 202 if seed is None else seed)
    value_pool: Dict[str, List[str]] = {}
    for _, r2 in CHAIN_PAIRS:
        if r2 not in value_pool:
            values = sorted({f.value_text for f in world.facts_with_relation(r2)})
            value_pool[r2] = values

    all_titles = corpus.titles()
    queries: List[WikihopQuery] = []
    qid = 0
    for r1, r2 in CHAIN_PAIRS:
        for hop1_fact in world.facts_with_relation(r1):
            bridge = hop1_fact.value_entity
            if bridge is None:
                continue
            hop2_fact = world.fact_of(bridge, r2)
            if hop2_fact is None:
                continue
            answer = hop2_fact.value_text
            distractors = [v for v in value_pool[r2] if v != answer]
            if len(distractors) > n_candidates - 1:
                picked = rng.choice(
                    len(distractors), size=n_candidates - 1, replace=False
                )
                distractors = [distractors[int(i)] for i in picked]
            candidates = distractors + [answer]
            rng.shuffle(candidates)
            gold_titles = [hop1_fact.subject.name, bridge.name]
            extra = [
                all_titles[int(i)]
                for i in rng.choice(
                    len(all_titles),
                    size=min(n_extra_supports, len(all_titles)),
                    replace=False,
                )
                if all_titles[int(i)] not in gold_titles
            ]
            queries.append(
                WikihopQuery(
                    qid=qid,
                    subject=hop1_fact.subject.name,
                    relation=r2,
                    text=f"{r2.replace('_', ' ')} {hop1_fact.subject.name}",
                    candidates=candidates,
                    answer=answer,
                    gold_titles=gold_titles,
                    support_titles=gold_titles + extra,
                )
            )
            qid += 1

    order = rng.permutation(len(queries))
    queries = [queries[i] for i in order]
    if max_queries is not None:
        queries = queries[:max_queries]
    n_val = int(round(len(queries) * validation_fraction))
    return WikihopDataset(
        corpus=corpus, train=queries[n_val:], validation=queries[:n_val]
    )
