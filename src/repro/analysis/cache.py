"""Per-file result cache making the lint gate incremental.

Parsing and rule-checking one file is pure: the findings, suppression
map and module summary depend only on (file content, rule set, config).
So each file's phase-1 output persists under ``.repro-lint-cache/``
keyed by

* the file's repo-relative path,
* the SHA-256 of its raw bytes,
* the *run fingerprint*: :data:`~repro.analysis.core.RULESET_VERSION`,
  the resolved rule ids, and every config field that can change
  findings — derived with the same canonical-digest machinery
  (:func:`repro.ingest.fingerprint.hash_texts`) that drives incremental
  ingestion.

Editing a file misses only that file's entry; editing the config or
bumping the ruleset version misses everything (the key changed), and the
stale entries are simply never read again. Entries are written through
:func:`repro.storage.atomic.atomic_write_json`, so concurrent workers
racing on the same entry each land a complete file and the loser's
``os.replace`` just rewrites identical content.

The cache is best-effort by design: any unreadable, corrupt or
version-skewed entry is a miss, and a write failure (read-only checkout,
full disk) degrades to uncached linting rather than an error.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.analysis.config import LintConfig
from repro.analysis.core import RULESET_VERSION, Finding
from repro.analysis.project import ModuleSummary
from repro.ingest.fingerprint import hash_texts
from repro.storage.atomic import atomic_write_json

#: On-disk entry format; bump on layout changes.
CACHE_FORMAT_VERSION = 1

#: Default cache location, relative to the lint root.
DEFAULT_CACHE_DIR = ".repro-lint-cache"


def run_fingerprint(config: LintConfig, rule_ids: List[str]) -> str:
    """Digest of everything besides file content that shapes findings.

    ``config.root`` is deliberately excluded: it only anchors relative
    paths, and the relative path is part of each entry key already, so
    including the absolute root would needlessly split caches across
    checkouts.
    """
    payload = {
        "ruleset_version": RULESET_VERSION,
        "cache_format": CACHE_FORMAT_VERSION,
        "rules": sorted(rule_ids),
        "paths": list(config.paths),
        "select": list(config.select),
        "ignore": list(config.ignore),
        "allow": {
            rule_id: list(patterns)
            for rule_id, patterns in sorted(config.allow.items())
        },
        "layers_order": list(config.layers_order),
        "layers": {
            layer: list(prefixes)
            for layer, prefixes in sorted(config.layers.items())
        },
        "dead_symbol_allow": list(config.dead_symbol_allow),
    }
    return hash_texts(
        ["lint-run:v1", json.dumps(payload, sort_keys=True)]
    )


#: What a cache hit restores: the (already suppression/allow-filtered)
#: file-local findings, the suppression map phase 2 re-applies to
#: project findings, and the module summary phase 2 builds its model on.
CacheEntry = Tuple[
    List[Finding], Dict[int, Set[str]], Optional[ModuleSummary]
]


class LintCache:
    """One run's view of the on-disk cache (fingerprint pre-bound)."""

    def __init__(
        self, directory: Union[str, Path], fingerprint: str
    ) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self._prepared = False

    def _entry_path(self, rel_path: str, content_sha: str) -> Path:
        key = hash_texts(
            ["lint-entry:v1", rel_path, content_sha, self.fingerprint]
        )
        return self.directory / f"{key}.json"

    def load(self, rel_path: str, content_sha: str) -> Optional[CacheEntry]:
        """The cached phase-1 result, or ``None`` on any miss/corruption."""
        path = self._entry_path(rel_path, content_sha)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        try:
            if payload["version"] != CACHE_FORMAT_VERSION:
                return None
            if payload["rel_path"] != rel_path:
                return None  # hash collision or tampering: recompute
            findings = [
                Finding(
                    rule_id=str(item["rule"]),
                    path=str(item["path"]),
                    line=int(item["line"]),
                    col=int(item["col"]),
                    message=str(item["message"]),
                )
                for item in payload["findings"]
            ]
            suppressions = {
                int(line): set(ids)
                for line, ids in payload["suppressed"].items()
            }
            summary_data = payload["summary"]
            summary = (
                ModuleSummary.from_dict(summary_data)
                if summary_data is not None
                else None
            )
        except (KeyError, TypeError, ValueError):
            return None
        return findings, suppressions, summary

    def store(
        self,
        rel_path: str,
        content_sha: str,
        findings: List[Finding],
        suppressions: Dict[int, Set[str]],
        summary: Optional[ModuleSummary],
    ) -> None:
        """Persist one phase-1 result (best-effort; failures degrade)."""
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "rel_path": rel_path,
            "content_sha": content_sha,
            "findings": [
                {
                    "rule": finding.rule_id,
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col,
                    "message": finding.message,
                }
                for finding in findings
            ],
            "suppressed": {
                str(line): sorted(ids)
                for line, ids in sorted(suppressions.items())
            },
            "summary": summary.to_dict() if summary is not None else None,
        }
        try:
            if not self._prepared:
                self.directory.mkdir(parents=True, exist_ok=True)
                self._prepared = True
            atomic_write_json(
                self._entry_path(rel_path, content_sha), payload
            )
        except OSError:
            pass  # lint: ignore[except-pass] -- cache is best-effort; a full disk must not fail the lint run
