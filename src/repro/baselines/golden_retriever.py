"""GoldEn baseline (Qi et al. 2019): IR retrieval + per-hop query expansion.

GoldEn retrieves hop 1 with classical IR, generates a new query from the
retrieved document (its trained generator is supervised by the LCS oracle
— our :mod:`repro.updater.golden` implements that heuristic directly), and
retrieves hop 2 with the expanded query.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.lexical import LexicalRetriever
from repro.data.corpus import Corpus
from repro.index.entity_index import EntityIndex
from repro.updater.golden import golden_expansion_terms


class GoldEnRetriever:
    """BM25 hop-1 + entity query expansion + BM25 hop-2."""

    def __init__(
        self,
        corpus: Corpus,
        linker: Optional[EntityIndex] = None,
        field: str = "text",
        k_hop1: int = 8,
        k_hop2: int = 4,
    ):
        self.corpus = corpus
        self.field = field
        self.k_hop1 = k_hop1
        self.k_hop2 = k_hop2
        self.lexical = LexicalRetriever(corpus)
        if linker is None:
            linker = EntityIndex(corpus.titles())
            for document in corpus:
                linker.add_document(document.doc_id, document.text)
        self.linker = linker

    def generate_query(self, question: str, doc_id: int) -> str:
        """Hop-2 query: question expanded with novel entities of the doc."""
        terms = golden_expansion_terms(
            question, self.linker.entities_of(doc_id), max_terms=1
        )
        if not terms:
            return question
        return f"{question} {' '.join(terms)}"

    def retrieve_documents(self, question: str, k: int = 8) -> List[str]:
        """One-hop retrieval (Table IV row): BM25 titles."""
        return self.lexical.retrieve_titles(question, k=k, field=self.field)

    def retrieve_paths(
        self, question: str, k_paths: int = 8
    ) -> List[Tuple[str, ...]]:
        """Two-hop paths: hop-1 BM25, query generation, hop-2 BM25."""
        paths: List[Tuple[str, ...]] = []
        scores: List[float] = []
        seen = set()
        for hop1 in self.lexical.retrieve(question, k=self.k_hop1, field=self.field):
            new_query = self.generate_query(question, hop1.doc_id)
            for hop2 in self.lexical.retrieve(
                new_query, k=self.k_hop2 + 1, field=self.field
            ):
                if hop2.doc_id == hop1.doc_id:
                    continue
                key = (hop1.doc_id, hop2.doc_id)
                if key in seen:
                    continue
                seen.add(key)
                paths.append(
                    (
                        self.corpus[hop1.doc_id].title,
                        self.corpus[hop2.doc_id].title,
                    )
                )
                scores.append(hop1.score + hop2.score)
        order = sorted(range(len(paths)), key=lambda i: -scores[i])
        return [paths[i] for i in order[:k_paths]]
