"""Iterative retriever-updater document-path retrieval.

Hop 1 fetches candidate documents with the single retriever; for each
candidate the question updater selects an updater-clue triple and composes
``q'``; hop 2 runs the single retriever with ``q'``. A path's score is the
sum of its per-hop scores (paper Eq. 8) — the "Triple-fact Retrieval-base"
configuration. Rescoring the resulting candidate paths with the path
ranking model gives the full "Triple-fact Retrieval".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.oie.triple import Triple
from repro.precision import PrecisionLike
from repro.retriever.single import RetrievedDocument, SingleRetriever
from repro.retriever.strategies import l2_normalize_rows
from repro.updater.question import compose_updated_question
from repro.updater.updater import QuestionUpdater


@dataclass
class DocumentPath:
    """One candidate reasoning path (hop-1 doc, hop-2 doc)."""

    doc_ids: Tuple[int, ...]
    titles: Tuple[str, ...]
    score: float
    hop_scores: Tuple[float, ...] = ()
    clue: Optional[Triple] = None  # updater-clue used between hops
    matched_triples: Tuple[Optional[Triple], ...] = ()
    updated_question: Optional[str] = None

    @property
    def title_set(self) -> frozenset:
        return frozenset(self.titles)

    def explain(self) -> str:
        """Human-readable account of the reasoning chain."""
        lines = [f"path score {self.score:.3f}"]
        for hop, title in enumerate(self.titles):
            matched = (
                self.matched_triples[hop]
                if hop < len(self.matched_triples)
                else None
            )
            lines.append(f"  hop {hop + 1}: {title} via {matched}")
            if hop == 0 and self.clue is not None:
                lines.append(f"  updater-clue: {self.clue}")
        return "\n".join(lines)


@dataclass
class MultiHopConfig:
    """Beam widths of the iterative retrieval."""

    k_hop1: int = 8  # hop-1 candidates to expand
    k_hop2: int = 4  # hop-2 candidates per hop-1 document
    k_paths: int = 8  # paths returned
    # weight of the updater-clue embedding in the hop-2 query vector.
    # The paper appends the clue tokens to the question; with a full-size
    # BERT, attention re-weights the novel tokens, but mean pooling would
    # drown ~5 clue tokens in ~20 question tokens — so the clue enters the
    # query as an explicit embedding mix: v(q') = v(q) + clue_weight*v(t').
    clue_weight: float = 1.0


class MultiHopRetriever:
    """Retriever-updater iteration over a shared triple store."""

    def __init__(
        self,
        retriever: SingleRetriever,
        updater: QuestionUpdater,
        config: Optional[MultiHopConfig] = None,
    ):
        self.retriever = retriever
        self.updater = updater
        self.config = config or MultiHopConfig()

    @staticmethod
    def _clue_text(question: str, clue: Triple) -> str:
        """The encoded bridge signal of one updater clue.

        Encode only the clue's *novel* tokens: the full flattened triple
        still contains the anchor entity (its subject), which would pull
        hop 2 straight back to hop-1-like documents; the novel part is the
        bridge signal. The sharpest such signal is the novel *entity*:
        prefer capitalized novel tokens, then any novel token, then the
        whole clue.
        """
        question_tokens = set(
            t.lower() for t in question.replace("?", " ").split()
        )
        novel = [
            token
            for token in clue.flatten().split()
            if token.lower() not in question_tokens
        ]
        capitalized = [t for t in novel if t[:1].isupper()]
        return " ".join(capitalized or novel) or clue.flatten()

    def retrieve_paths(
        self,
        question: str,
        k_paths: Optional[int] = None,
        nprobe: Optional[int] = None,
        precision: PrecisionLike = None,
    ) -> List[DocumentPath]:
        """Top-k document paths for ``question`` (Eq. 8 scoring).

        Hop 2 is batched: clue texts for the whole hop-1 beam are encoded
        in one encoder pass and all hop-2 queries run as a single
        :meth:`SingleRetriever.retrieve_batch` matmul instead of
        ``k_hop1`` sequential retrievals. A single question is just a
        batch of one — see :meth:`retrieve_paths_batch`.
        """
        return self.retrieve_paths_batch(
            [question], k_paths=k_paths, nprobe=nprobe, precision=precision
        )[0]

    def retrieve_paths_batch(
        self,
        questions: Sequence[str],
        k_paths: Optional[int] = None,
        nprobe: Optional[int] = None,
        precision: PrecisionLike = None,
    ) -> List[List[DocumentPath]]:
        """Path retrieval for many questions with batch-amortized stages.

        The serving layer's substrate: all questions encode in one pass,
        hop 1 runs as one :meth:`SingleRetriever.retrieve_batch` matmul,
        every clue text across every question encodes as one batch, and
        the hop-2 queries of *all* questions run as one further
        ``retrieve_batch`` call. Per-question results are identical to
        :meth:`retrieve_paths` up to encoder batch-padding float jitter
        (~1e-16); with a batch-invariant encoder they are exact.

        ``nprobe`` and ``precision`` are forwarded to both hops'
        ``retrieve_batch`` calls, so a quantized policy prunes *both*
        hops' matmuls.
        """
        cfg = self.config
        if k_paths is None:
            k_paths = cfg.k_paths
        questions = list(questions)
        if not questions:
            return []
        if k_paths <= 0:
            return [[] for _ in questions]
        question_matrix = self.retriever.encode_questions(questions)
        hop1_lists = self.retriever.retrieve_batch(
            question_matrix, k=cfg.k_hop1, nprobe=nprobe, precision=precision
        )
        # select every (question, hop-1 candidate) clue first so all clue
        # texts across the whole batch encode as one encoder pass
        clues_per_q: List[List[Optional[Triple]]] = []
        updated_per_q: List[List[str]] = []
        clue_texts: List[str] = []
        clue_rows: List[int] = []  # global hop-2 row indices
        clue_sources: List[int] = []  # question index per clue row
        blocks: List[np.ndarray] = []
        cursor = 0
        for qi, (question, hop1_results) in enumerate(
            zip(questions, hop1_lists)
        ):
            blocks.append(
                np.tile(question_matrix[qi], (len(hop1_results), 1))
            )
            clues: List[Optional[Triple]] = []
            updated_questions: List[str] = []
            for row, hop1 in enumerate(hop1_results):
                triples = self.retriever.store.triples(hop1.doc_id)
                selected = self.updater.select_clue(question, triples)
                clue = selected[1] if selected else None
                clues.append(clue)
                if clue is None:
                    updated_questions.append(question)
                else:
                    updated_questions.append(
                        compose_updated_question(question, clue)
                    )
                    clue_texts.append(self._clue_text(question, clue))
                    clue_rows.append(cursor + row)
                    clue_sources.append(qi)
            clues_per_q.append(clues)
            updated_per_q.append(updated_questions)
            cursor += len(hop1_results)
        hop2_matrix = (
            np.concatenate(blocks)
            if cursor
            else np.zeros((0, question_matrix.shape[1]))
        )
        if clue_texts:
            clue_matrix = self.retriever.encode_questions(clue_texts)
            questions_normed = l2_normalize_rows(question_matrix)
            hop2_matrix[clue_rows] = (
                questions_normed[clue_sources]
                + cfg.clue_weight * l2_normalize_rows(clue_matrix)
            )
        # one Q×T matmul covers every question's every second hop
        hop2_lists = (
            self.retriever.retrieve_batch(
                hop2_matrix,
                k=cfg.k_hop2 + 1,
                nprobe=nprobe,
                precision=precision,
            )
            if cursor
            else []
        )
        out: List[List[DocumentPath]] = []
        start = 0
        for hop1_results, clues, updated_questions in zip(
            hop1_lists, clues_per_q, updated_per_q
        ):
            stop = start + len(hop1_results)
            out.append(
                self._assemble_paths(
                    hop1_results,
                    clues,
                    updated_questions,
                    hop2_lists[start:stop],
                    k_paths,
                )
            )
            start = stop
        return out

    def _assemble_paths(
        self,
        hop1_results: Sequence[RetrievedDocument],
        clues: Sequence[Optional[Triple]],
        updated_questions: Sequence[str],
        hop2_lists: Sequence[List[RetrievedDocument]],
        k_paths: int,
    ) -> List[DocumentPath]:
        """Combine one question's hop results into ranked paths (Eq. 8)."""
        cfg = self.config
        paths: List[DocumentPath] = []
        seen = set()
        for hop1, clue, updated, hop2_results in zip(
            hop1_results, clues, updated_questions, hop2_lists
        ):
            survivors = 0
            for hop2 in hop2_results:
                # the +1 overfetch exists only to absorb the hop-1 doc
                # itself; cap the survivors so the per-candidate beam stays
                # exactly k_hop2 even when the hop-1 doc is absent
                if survivors >= cfg.k_hop2:
                    break
                if hop2.doc_id == hop1.doc_id:
                    continue
                key = (hop1.doc_id, hop2.doc_id)
                if key in seen:
                    continue
                seen.add(key)
                survivors += 1
                paths.append(
                    DocumentPath(
                        doc_ids=(hop1.doc_id, hop2.doc_id),
                        titles=(hop1.title, hop2.title),
                        score=hop1.score + hop2.score,
                        hop_scores=(hop1.score, hop2.score),
                        clue=clue,
                        matched_triples=(
                            hop1.matched_triple,
                            hop2.matched_triple,
                        ),
                        updated_question=updated,
                    )
                )
        paths.sort(key=lambda p: (-p.score, p.doc_ids))
        return paths[:k_paths]
