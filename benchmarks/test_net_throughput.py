"""Micro-benchmark: networked worker fleet vs single-process service.

Stands up the same serving bundle twice — once as one in-process
:class:`repro.serve.RetrievalService` (the thread-based service, GIL
bound) and once as a 4-worker ``repro.net`` fleet behind the asyncio
front door — and replays the same query stream against both. The
encoder is a real (untrained) MiniBERT so each request pays genuine
encode cost: that is precisely the work the process fleet can spread
across cores and the threaded service cannot.

A third phase replays the stream *across a hot store-generation
rollout* and gates the p99 latency seen during the swap against the
steady-state p99 — hot reload must be invisible at the tail, not just
eventually consistent.

Writes ``BENCH_net.json`` next to this file. Regression gates:

* networked >= 2x single-process throughput at 4 workers — enforced
  only on hosts with >= 4 CPUs (on smaller hosts the fleet cannot win
  by construction; the ratio is still recorded with ``cpu_limited``);
* p99 across the hot reload <= 3x steady-state p99 (with a small
  floor so microsecond-scale noise cannot flake the gate);
* zero errored or dropped requests in every phase.

Marked ``perf`` + ``net``; tier-1 (``testpaths = tests``) never
collects it.
"""

import os
import random
import threading
import time
from pathlib import Path

import pytest

from repro.net import (
    Fleet,
    WorkerSpec,
    publish_store,
    synthetic_bundle,
)
from repro.serve import RetrievalService, ServiceConfig
from repro.storage.atomic import atomic_write_json

pytestmark = [pytest.mark.perf, pytest.mark.net]

BUNDLE_KWARGS = dict(
    seed=31,
    n_docs=96,
    triples_per_doc=4,
    dim=32,
    encoder="minibert",
    n_questions=48,
)
N_THREADS = 6
N_WORKERS = 4
K = 5
PASSES = 2  # each client thread replays the query set this many times
#: reload-gate floor: below this steady p99, 3x comparisons measure
#: scheduler noise, not the rollout
P99_FLOOR_S = 0.02
OUT_PATH = Path(__file__).parent / "BENCH_net.json"


def _p99(samples):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def _replay_in_process(service, questions):
    """(elapsed_s, latencies_s, errors) for the threaded baseline."""
    errors = []
    latencies = []
    lock = threading.Lock()

    def client(seed):
        order = list(questions) * PASSES
        random.Random(seed).shuffle(order)
        for question in order:
            begin = time.perf_counter()
            try:
                service.retrieve(question, k=K, timeout=300)
            except Exception as error:  # recorded; gated below
                with lock:
                    errors.append(repr(error))
                continue
            with lock:
                latencies.append(time.perf_counter() - begin)

    threads = [
        threading.Thread(target=client, args=(seed,))
        for seed in range(N_THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, latencies, errors


def _replay_fleet(fleet, questions, stop_after=None):
    """(elapsed_s, latencies_s, errors) over TCP, one client per thread."""
    errors = []
    latencies = []
    lock = threading.Lock()

    def client(seed):
        order = list(questions) * PASSES
        random.Random(seed).shuffle(order)
        with fleet.client() as net:
            for question in order:
                begin = time.perf_counter()
                try:
                    net.retrieve(question, k=K)
                except Exception as error:  # recorded; gated below
                    with lock:
                        errors.append(repr(error))
                    continue
                with lock:
                    latencies.append(time.perf_counter() - begin)

    threads = [
        threading.Thread(target=client, args=(seed,))
        for seed in range(N_THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    if stop_after is not None:
        stop_after()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, latencies, errors


def test_networked_fleet_throughput(tmp_path_factory):
    cpus = os.cpu_count() or 1
    cpu_limited = cpus < 4

    bundle = synthetic_bundle(**BUNDLE_KWARGS)
    store_dir = tmp_path_factory.mktemp("net_bench") / "store"
    publish_store(bundle, store_dir)
    questions = bundle.questions
    total = N_THREADS * len(questions) * PASSES

    # -- phase 1: single-process threaded service ------------------------
    retriever = bundle.make_retriever()
    retriever.refresh_embeddings()
    config = ServiceConfig(
        max_batch_size=N_THREADS,
        max_wait_ms=2.0,
        max_pending=total,
        cache_size=0,
        default_k=K,
    )
    with RetrievalService(retriever, config=config) as service:
        single_s, single_lat, single_errors = _replay_in_process(
            service, questions
        )
    assert single_errors == []
    assert len(single_lat) == total

    # -- phase 2: 4-worker fleet over TCP --------------------------------
    spec = WorkerSpec(
        target="repro.net.bootstrap:synthetic_bundle",
        kwargs=dict(BUNDLE_KWARGS),
        store_dir=str(store_dir),
        service={
            "max_batch_size": N_THREADS,
            "max_wait_ms": 2.0,
            "max_pending": total,
            "cache_size": 0,
            "default_k": K,
        },
    )
    with Fleet(spec, workers=N_WORKERS) as fleet:
        net_s, net_lat, net_errors = _replay_fleet(fleet, questions)
        assert net_errors == []
        assert len(net_lat) == total
        steady_p99 = _p99(net_lat)

        # -- phase 3: the same stream across a hot rollout ---------------
        def trigger_rollout():
            publish_store(bundle, store_dir)  # generation 2
            with fleet.client() as net:
                generations = net.reload()["generations"]
            assert generations == [2] * N_WORKERS

        _, reload_lat, reload_errors = _replay_fleet(
            fleet, questions, stop_after=trigger_rollout
        )
        assert reload_errors == []
        assert len(reload_lat) == total
        reload_p99 = _p99(reload_lat)
        with fleet.client() as net:
            stats = net.stats()

    single_qps = total / single_s
    net_qps = total / net_s
    speedup = net_qps / single_qps
    p99_bound = 3.0 * max(steady_p99, P99_FLOOR_S)

    payload = {
        "cpus": cpus,
        "cpu_limited": cpu_limited,
        "workers": N_WORKERS,
        "client_threads": N_THREADS,
        "n_docs": BUNDLE_KWARGS["n_docs"],
        "n_queries": len(questions),
        "passes": PASSES,
        "requests_per_phase": total,
        "k": K,
        "single_process_seconds": single_s,
        "single_process_qps": single_qps,
        "single_process_p99_ms": _p99(single_lat) * 1e3,
        "networked_seconds": net_s,
        "networked_qps": net_qps,
        "speedup": speedup,
        "steady_p99_ms": steady_p99 * 1e3,
        "reload_p99_ms": reload_p99 * 1e3,
        "reload_p99_bound_ms": p99_bound * 1e3,
        "errors": 0,
        "frontdoor": stats["frontdoor"],
        "aggregate": stats["aggregate"],
        "worker_generations": [w["generation"] for w in stats["workers"]],
    }
    atomic_write_json(OUT_PATH, payload, indent=2)
    print(
        f"\nnet throughput: single-process {single_qps:.0f} qps, "
        f"{N_WORKERS}-worker fleet {net_qps:.0f} qps ({speedup:.2f}x, "
        f"{cpus} cpus), steady p99 {steady_p99 * 1e3:.1f} ms, "
        f"reload p99 {reload_p99 * 1e3:.1f} ms"
    )
    # the swap must be invisible at the tail on any host
    assert reload_p99 <= p99_bound, payload
    if cpu_limited:
        pytest.skip(
            f"only {cpus} CPU(s): the 2x fleet-throughput gate needs >= 4 "
            "(ratio recorded in BENCH_net.json)"
        )
    # the acceptance bar from the networking issue
    assert speedup >= 2.0, payload
