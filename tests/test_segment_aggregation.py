"""Property tests for reduceat-based segment aggregation.

`aggregate_segments` must equal the scalar `ScoreStrategy.aggregate` /
`matched_index` applied segment-by-segment, for arbitrary segment layouts
— including empty segments (documents without triples) anywhere in the
corpus, score ties, and single-segment corpora.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retriever.strategies import (
    EMPTY_SCORE,
    MEAN,
    ONE_FACT,
    TOP_K,
    ScoreStrategy,
    aggregate_segments,
    segment_lengths,
)

# scores drawn from a small grid to exercise exact ties; segment lengths
# include 0 so empty documents land between, before and after real ones
score_values = st.sampled_from([-1.0, -0.25, 0.0, 0.25, 0.3, 0.9, 1.0])
segment_shapes = st.lists(st.integers(0, 6), min_size=0, max_size=12)
strategy_objects = st.one_of(
    st.just(ScoreStrategy(ONE_FACT)),
    st.just(ScoreStrategy(MEAN)),
    st.integers(1, 5).map(lambda k: ScoreStrategy(TOP_K, k=k)),
)


def _naive(scores, offsets, strategy):
    """The reference: scalar aggregation per segment slice."""
    total = scores.shape[0]
    bounds = list(offsets) + [total]
    aggregated, matched = [], []
    for start, stop in zip(bounds, bounds[1:]):
        segment = scores[start:stop]
        aggregated.append(strategy.aggregate(segment))
        matched.append(strategy.matched_index(segment))
    return np.asarray(aggregated), np.asarray(matched)


@given(shapes=segment_shapes, strategy=strategy_objects, data=st.data())
@settings(max_examples=200, deadline=None)
def test_matches_scalar_aggregation(shapes, strategy, data):
    total = sum(shapes)
    scores = np.asarray(
        data.draw(
            st.lists(score_values, min_size=total, max_size=total)
        ),
        dtype=np.float64,
    )
    offsets = np.concatenate([[0], np.cumsum(shapes)])[:-1].astype(np.int64)
    aggregated, matched = aggregate_segments(scores, offsets, strategy)
    expected_agg, expected_matched = _naive(scores, offsets, strategy)
    np.testing.assert_allclose(aggregated, expected_agg, atol=1e-12)
    np.testing.assert_array_equal(matched, expected_matched)


@given(shapes=segment_shapes)
@settings(max_examples=100, deadline=None)
def test_segment_lengths_roundtrip(shapes):
    offsets = np.concatenate([[0], np.cumsum(shapes)])[:-1].astype(np.int64)
    np.testing.assert_array_equal(
        segment_lengths(offsets, sum(shapes)), shapes
    )


def test_no_segments():
    aggregated, matched = aggregate_segments(
        np.zeros(0), np.zeros(0, dtype=np.int64), ScoreStrategy(ONE_FACT)
    )
    assert aggregated.shape == (0,) and matched.shape == (0,)


def test_all_segments_empty():
    aggregated, matched = aggregate_segments(
        np.zeros(0), np.zeros(4, dtype=np.int64), ScoreStrategy(MEAN)
    )
    np.testing.assert_array_equal(aggregated, [EMPTY_SCORE] * 4)
    np.testing.assert_array_equal(matched, [-1] * 4)


def test_argmax_is_first_occurrence_on_ties():
    scores = np.array([0.5, 0.9, 0.9, 0.9, 0.1, 0.9])
    offsets = np.array([0, 4], dtype=np.int64)
    _, matched = aggregate_segments(scores, offsets, ScoreStrategy(ONE_FACT))
    np.testing.assert_array_equal(matched, [1, 1])


def test_unknown_strategy_raises():
    with pytest.raises(ValueError, match="unknown strategy"):
        aggregate_segments(
            np.array([1.0]), np.array([0]), ScoreStrategy("bogus")
        )
