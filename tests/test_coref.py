"""Unit tests for the rule-based coreference resolver."""

from repro.text.coref import resolve_coreferences


class TestCoref:
    def test_subject_pronoun_resolved(self):
        text = "Walter Davis was a footballer. He played for Millwall."
        out = resolve_coreferences(text, title="Walter Davis")
        assert "Walter Davis played for Millwall." in out.text

    def test_possessive_resolved(self):
        text = "Walter Davis was a footballer. His career began in 1905."
        out = resolve_coreferences(text, title="Walter Davis")
        assert "Walter Davis 's career" in out.text

    def test_first_sentence_untouched(self):
        text = "It is a club. It was founded in 1885."
        out = resolve_coreferences(text, title="Millwall")
        assert out.sentences[0] == "It is a club."

    def test_nominal_resolution_with_kind(self):
        text = "Millwall is a football club. The club was founded in 1885."
        out = resolve_coreferences(text, title="Millwall", entity_kind="club")
        assert "Millwall was founded in 1885." in out.text

    def test_nominal_not_resolved_for_wrong_kind(self):
        text = "Millwall is a football club. The band was famous."
        out = resolve_coreferences(text, title="Millwall", entity_kind="club")
        assert "The band was famous." in out.text

    def test_title_guessed_from_first_sentence(self):
        text = "Edgar Morgan was a composer. He wrote music."
        out = resolve_coreferences(text)
        assert "Edgar Morgan wrote music." in out.text

    def test_mentions_recorded(self):
        text = "Walter Davis was a footballer. He played. He scored."
        out = resolve_coreferences(text, title="Walter Davis")
        assert len(out.mentions) == 2
        assert all(m.entity == "Walter Davis" for m in out.mentions)

    def test_empty_text(self):
        out = resolve_coreferences("")
        assert out.text == "" and out.sentences == []

    def test_midsentence_it_not_rewritten(self):
        text = "Millwall is a club. People liked it very much."
        out = resolve_coreferences(text, title="Millwall")
        assert "liked it very much" in out.text
