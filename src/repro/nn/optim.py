"""Optimizers: SGD with momentum, and Adam (the PLM fine-tuning default)."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, parameters: Sequence[Tensor], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm; returns the pre-clip norm."""
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float((parameter.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad = parameter.grad * scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Sequence[Tensor], lr: float = 0.01,
                 momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            update = parameter.grad
            if self.momentum > 0:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(parameter.data)
                self._velocity[i] = self.momentum * self._velocity[i] + update
                update = self._velocity[i]
            parameter.data = parameter.data - self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction and optional weight decay."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for i, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * parameter.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(parameter.data)
                self._v[i] = np.zeros_like(parameter.data)
            self._m[i] = b1 * self._m[i] + (1 - b1) * grad
            self._v[i] = b2 * self._v[i] + (1 - b2) * grad * grad
            m_hat = self._m[i] / (1 - b1**self._t)
            v_hat = self._v[i] / (1 - b2**self._t)
            parameter.data = parameter.data - self.lr * m_hat / (
                np.sqrt(v_hat) + self.eps
            )
