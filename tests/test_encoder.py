"""Unit tests for MiniBERT and MLM pre-training."""

import numpy as np
import pytest

from repro.encoder.minibert import EncoderConfig, MiniBertEncoder
from repro.encoder.pretrain import MLMPretrainer, PretrainConfig
from repro.text.vocab import Vocab

SENTENCES = [
    "the club was founded in 1885",
    "the band was formed in 1991",
    "the city lies on the river",
    "the striker played for the club",
]


@pytest.fixture()
def tiny_encoder():
    vocab = Vocab.from_tokens(" ".join(SENTENCES).split())
    return MiniBertEncoder(
        vocab, EncoderConfig(dim=16, n_layers=1, n_heads=2, max_len=16)
    )


class TestTokenization:
    def test_cls_sep_added(self, tiny_encoder):
        ids = tiny_encoder.text_to_ids("the club")
        assert ids[0] == tiny_encoder.vocab.cls_id
        assert ids[-1] == tiny_encoder.vocab.sep_id

    def test_truncation(self, tiny_encoder):
        long_text = "club " * 100
        ids = tiny_encoder.text_to_ids(long_text)
        assert len(ids) <= tiny_encoder.config.max_len

    def test_batch_padding(self, tiny_encoder):
        ids, mask = tiny_encoder.batch_ids(["the club", "the"])
        assert ids.shape == mask.shape
        assert mask[1].sum() < mask[0].sum()
        assert ids[1, -1] == tiny_encoder.vocab.pad_id


class TestEncoding:
    def test_embedding_shape(self, tiny_encoder):
        out = tiny_encoder.encode(["the club", "the band"])
        assert out.shape == (2, 16)

    def test_encode_numpy_matches_encode_float64(self):
        # the exact-parity mode computes fused float64: graph-close to 1e-10
        vocab = Vocab.from_tokens(" ".join(SENTENCES).split())
        encoder = MiniBertEncoder(
            vocab,
            EncoderConfig(dim=16, n_layers=1, n_heads=2, max_len=16),
            precision="float64",
        )
        texts = ["the club was founded", "the band"]
        with_grad = encoder.encode(texts).numpy()
        without = encoder.encode_numpy(texts)
        np.testing.assert_allclose(with_grad, without, atol=1e-10)

    def test_encode_numpy_matches_encode_float32(self, tiny_encoder):
        # default mode computes in float32: parity up to float32 rounding
        texts = ["the club was founded", "the band"]
        with_grad = tiny_encoder.encode(texts).numpy()
        without = tiny_encoder.encode_numpy(texts)
        assert without.dtype == np.float32
        np.testing.assert_allclose(with_grad, without, rtol=1e-4, atol=1e-5)

    def test_encode_numpy_batching_consistent(self, tiny_encoder):
        texts = SENTENCES * 3
        small = tiny_encoder.encode_numpy(texts, batch_size=2)
        large = tiny_encoder.encode_numpy(texts, batch_size=64)
        np.testing.assert_allclose(small, large, atol=1e-10)

    def test_empty_rejected(self, tiny_encoder):
        with pytest.raises(ValueError):
            tiny_encoder.encode([])

    def test_shared_tokens_raise_similarity(self, tiny_encoder):
        tiny_encoder.fit_idf(SENTENCES)
        out = tiny_encoder.encode_numpy(
            ["the club was founded", "the club was founded in 1885",
             "the city lies on the river"]
        )

        def cos(a, b):
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b))

        assert cos(out[0], out[1]) > cos(out[0], out[2])

    def test_cls_pooling_mode(self):
        vocab = Vocab.from_tokens("a b c".split())
        enc = MiniBertEncoder(
            vocab,
            EncoderConfig(dim=16, n_layers=1, n_heads=2, max_len=8, pooling="cls"),
        )
        assert enc.encode(["a b"]).shape == (1, 16)


class TestIdfPooling:
    def test_fit_idf_zeroes_specials(self, tiny_encoder):
        tiny_encoder.fit_idf(SENTENCES)
        vocab = tiny_encoder.vocab
        assert tiny_encoder._token_weights[vocab.cls_id] == 0.0
        assert tiny_encoder._token_weights[vocab.pad_id] == 0.0

    def test_rare_tokens_weighted_higher(self, tiny_encoder):
        tiny_encoder.fit_idf(SENTENCES)
        vocab = tiny_encoder.vocab
        rare = tiny_encoder._token_weights[vocab.id_of("1885")]
        common = tiny_encoder._token_weights[vocab.id_of("the")]
        assert rare > common


class TestPersistence:
    def test_save_load_roundtrip(self, tiny_encoder, tmp_path):
        tiny_encoder.fit_idf(SENTENCES)
        tiny_encoder.save(tmp_path / "model")
        loaded = MiniBertEncoder.load(
            tmp_path / "model", config=tiny_encoder.config
        )
        texts = ["the club was founded"]
        np.testing.assert_allclose(
            tiny_encoder.encode_numpy(texts), loaded.encode_numpy(texts)
        )


class TestMLMPretraining:
    def test_loss_decreases(self, tiny_encoder):
        pretrainer = MLMPretrainer(
            tiny_encoder, PretrainConfig(epochs=4, batch_size=2, lr=3e-3)
        )
        losses = pretrainer.train(SENTENCES * 4)
        assert losses[-1] < losses[0]

    def test_empty_corpus(self, tiny_encoder):
        assert MLMPretrainer(tiny_encoder).train([]) == []

    def test_masking_respects_specials(self, tiny_encoder):
        pretrainer = MLMPretrainer(tiny_encoder)
        ids, mask = tiny_encoder.batch_ids(SENTENCES)
        corrupted, targets = pretrainer._mask_batch(ids, mask)
        vocab = tiny_encoder.vocab
        # CLS/SEP/PAD positions are never masked
        for special in (vocab.cls_id, vocab.sep_id):
            positions = ids == special
            np.testing.assert_array_equal(corrupted[positions], ids[positions])
        assert (targets[ids == vocab.pad_id] == vocab.pad_id).all()
