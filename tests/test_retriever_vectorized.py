"""Parity and regression tests for the vectorized retrieval path.

The single-matmul scorer (`retrieve_by_vector` / `retrieve_batch`) must be
indistinguishable — ranking, scores, explaining triples — from the
document-by-document reference loop kept as
:meth:`SingleRetriever.retrieve_by_vector_legacy`.
"""

import numpy as np
import pytest

from repro.perf import COUNTERS
from repro.retriever.strategies import MEAN, ONE_FACT, TOP_K, ScoreStrategy

STRATEGIES = [
    pytest.param(ScoreStrategy(ONE_FACT), id="one_fact"),
    pytest.param(ScoreStrategy(TOP_K, k=2), id="top2"),
    pytest.param(ScoreStrategy(TOP_K, k=5), id="top5"),
    pytest.param(ScoreStrategy(MEAN), id="mean"),
]

QUESTIONS = [
    "when was the club founded",
    "which band recorded the film soundtrack",
    "who played for the team that won the award",
]


def _assert_same_results(fast, slow):
    assert [r.doc_id for r in fast] == [r.doc_id for r in slow]
    assert [r.title for r in fast] == [r.title for r in slow]
    np.testing.assert_allclose(
        [r.score for r in fast], [r.score for r in slow], atol=1e-6
    )
    for a, b in zip(fast, slow):
        assert (a.matched_triple is None) == (b.matched_triple is None)
        if a.matched_triple is not None:
            assert a.matched_triple == b.matched_triple


class TestVectorizedParity:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("question", QUESTIONS)
    def test_full_corpus_parity(self, retriever, strategy, question):
        vec = retriever.encode_question(question)
        fast = retriever.retrieve_by_vector(vec, k=10, strategy=strategy)
        slow = retriever.retrieve_by_vector_legacy(
            vec, k=10, strategy=strategy
        )
        _assert_same_results(fast, slow)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_triple_scores_parity(self, retriever, strategy):
        vec = retriever.encode_question(QUESTIONS[0])
        fast = retriever.retrieve_by_vector(
            vec, k=5, strategy=strategy, keep_triple_scores=True
        )
        slow = retriever.retrieve_by_vector_legacy(
            vec, k=5, strategy=strategy, keep_triple_scores=True
        )
        for a, b in zip(fast, slow):
            np.testing.assert_allclose(
                a.triple_scores, b.triple_scores, atol=1e-6
            )

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_candidate_subset_parity(self, retriever, strategy):
        vec = retriever.encode_question(QUESTIONS[1])
        candidates = [7, 3, 11, 0, 5]
        fast = retriever.retrieve_by_vector(
            vec, k=4, strategy=strategy, candidate_ids=candidates
        )
        slow = retriever.retrieve_by_vector_legacy(
            vec, k=4, strategy=strategy, candidate_ids=candidates
        )
        _assert_same_results(fast, slow)

    def test_retrieve_uses_vectorized_path(self, retriever):
        """`retrieve` and the legacy loop agree end to end."""
        results = retriever.retrieve(QUESTIONS[0], k=6)
        legacy = retriever.retrieve_by_vector_legacy(
            retriever.encode_question(QUESTIONS[0]), k=6
        )
        _assert_same_results(results, legacy)


class TestRetrieveBatch:
    def test_batch_matches_single_queries(self, retriever):
        vecs = np.stack(
            [retriever.encode_question(q) for q in QUESTIONS]
        )
        batched = retriever.retrieve_batch(vecs, k=5)
        assert len(batched) == len(QUESTIONS)
        for row, vec in zip(batched, vecs):
            _assert_same_results(row, retriever.retrieve_by_vector(vec, k=5))

    def test_batch_is_one_matmul(self, retriever):
        vecs = np.stack(
            [retriever.encode_question(q) for q in QUESTIONS]
        )
        before = COUNTERS.matmul_calls
        retriever.retrieve_batch(vecs, k=5)
        assert COUNTERS.matmul_calls == before + 1

    def test_empty_batch(self, retriever):
        out = retriever.retrieve_batch(
            np.zeros((0, retriever.encoder.config.dim)), k=5
        )
        assert out == []

    def test_k_zero_returns_empty(self, retriever):
        vec = retriever.encode_question(QUESTIONS[0])
        assert retriever.retrieve_by_vector(vec, k=0) == []
        assert retriever.retrieve_by_vector_legacy(vec, k=0) == []


class TestCandidateIds:
    """Regression: duplicate and unknown candidate ids (ISSUE 1)."""

    def test_duplicates_deduped_order_preserved(self, retriever):
        vec = retriever.encode_question(QUESTIONS[0])
        deduped = retriever.retrieve_by_vector(
            vec, k=10, candidate_ids=[4, 2, 4, 9, 2, 4]
        )
        clean = retriever.retrieve_by_vector(
            vec, k=10, candidate_ids=[4, 2, 9]
        )
        assert [r.doc_id for r in deduped] == [r.doc_id for r in clean]
        assert len({r.doc_id for r in deduped}) == len(deduped) == 3

    def test_unknown_id_raises_key_error(self, retriever):
        vec = retriever.encode_question(QUESTIONS[0])
        with pytest.raises(KeyError, match="not in corpus"):
            retriever.retrieve_by_vector(vec, k=3, candidate_ids=[0, 10_000])
        with pytest.raises(KeyError, match="not in corpus"):
            retriever.retrieve_by_vector_legacy(
                vec, k=3, candidate_ids=[0, 10_000]
            )

    def test_negative_id_raises_key_error(self, retriever):
        vec = retriever.encode_question(QUESTIONS[0])
        with pytest.raises(KeyError, match="not in corpus"):
            retriever.retrieve_by_vector(vec, k=3, candidate_ids=[-1])

    def test_candidate_without_triples_scores_empty(self, retriever, corpus):
        """A corpus doc with no triples is a valid candidate: it gets the
        empty-document sentinel score and no explanation (legacy semantics),
        not a crash."""
        # fabricate a triple-less candidate by picking an id the store
        # doesn't know: none exist in the fixture, so simulate via a store
        # whose last doc is removed
        doc_id = retriever.store.doc_ids()[0]
        removed = retriever.store._triples.pop(doc_id)
        try:
            retriever.refresh_embeddings()
            vec = retriever.encode_question(QUESTIONS[0])
            results = retriever.retrieve_by_vector(
                vec, k=3, candidate_ids=[doc_id]
            )
            assert len(results) == 1
            assert results[0].score == -1.0
            assert results[0].matched_triple is None
            legacy = retriever.retrieve_by_vector_legacy(
                vec, k=3, candidate_ids=[doc_id]
            )
            assert legacy[0].score == -1.0
        finally:
            retriever.store._triples[doc_id] = removed
            retriever.refresh_embeddings()

    def test_empty_candidate_list(self, retriever):
        vec = retriever.encode_question(QUESTIONS[0])
        assert retriever.retrieve_by_vector(vec, k=3, candidate_ids=[]) == []


class TestTripleScores:
    def test_triple_scores_match_doc_embeddings(self, retriever):
        """`triple_scores` (fast path) equals cosine against the cached
        per-document matrix."""
        from repro.retriever.strategies import cosine_matrix

        vec = retriever.encode_question(QUESTIONS[2])
        for doc_id in retriever.store.doc_ids()[:5]:
            fast = retriever.triple_scores(vec, doc_id)
            slow = cosine_matrix(vec, retriever.doc_embeddings(doc_id))
            np.testing.assert_allclose(fast, slow, atol=1e-6)

    def test_unknown_doc_gives_empty(self, retriever):
        vec = retriever.encode_question(QUESTIONS[0])
        assert retriever.triple_scores(vec, 10_000).shape == (0,)
