"""Ablation A — threshold size l of Algorithm 1 (paper Sec. IV-B).

The paper picked l=40 from an ablation over the trade-off between triple
set size and retrieval quality. Shape: retrieval quality is monotone
non-decreasing in l (more facts kept) while the set size grows, and the
marginal gain flattens well before the paper's l=40.
"""

from repro.eval.experiments import run_ablation_threshold
from repro.eval.tables import format_table


def test_ablation_threshold_l(ctx, benchmark):
    sweep = benchmark.pedantic(
        lambda: run_ablation_threshold(ctx, l_values=(3, 5, 10, 20, 40)),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["l", "mean |T_d|", "PR@10"],
            [[l, f"{size:.1f}", pr] for l, size, pr in sweep],
            title="Ablation — Algorithm 1 threshold size l",
        )
    )
    sizes = [size for _, size, _ in sweep]
    prs = [pr for _, _, pr in sweep]
    # set size grows (weakly) with l
    assert all(a <= b + 1e-9 for a, b in zip(sizes, sizes[1:]))
    # quality at the largest budget >= tightest budget
    assert prs[-1] >= prs[0] - 0.02
    # the flattening: last step adds little over the mid-range
    assert prs[-1] - prs[2] <= 0.15
