"""The explainable single retriever (paper Sec. III-B, Fig. 4).

Encodes every flattened triple fact of every document once, then answers
one-hop retrieval queries: encode the question, compute cosine scores
against all triple facts, aggregate per document with a score strategy,
return the top-k documents *with the matching triple* — the concrete,
explainable evidence the paper emphasizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.encoder.minibert import MiniBertEncoder
from repro.oie.triple import Triple
from repro.retriever.store import TripleStore
from repro.retriever.strategies import ONE_FACT, ScoreStrategy, cosine_matrix


@dataclass
class RetrievedDocument:
    """One retrieval result with its explanation."""

    doc_id: int
    title: str
    score: float
    matched_triple: Optional[Triple]  # the explaining triple (argmax)
    triple_scores: Optional[np.ndarray] = None

    def explain(self) -> str:
        """Human-readable justification of why this document matched."""
        if self.matched_triple is None:
            return f"{self.title}: no triple facts (score {self.score:.3f})"
        return (
            f"{self.title}: matched triple {self.matched_triple} "
            f"(score {self.score:.3f})"
        )


class SingleRetriever:
    """Dense triple-fact retrieval over a :class:`TripleStore`."""

    def __init__(
        self,
        encoder: MiniBertEncoder,
        store: TripleStore,
        strategy: Optional[ScoreStrategy] = None,
    ):
        self.encoder = encoder
        self.store = store
        self.strategy = strategy or ScoreStrategy(ONE_FACT)
        self._embeddings: Dict[int, np.ndarray] = {}
        self._stacked: Optional[np.ndarray] = None
        self._doc_order: List[int] = []
        self._offsets: List[int] = []

    # -- embedding maintenance ------------------------------------------------
    def refresh_embeddings(self, batch_size: int = 128) -> None:
        """(Re-)encode the flattened triples of every document.

        Call after training the encoder; retrieval uses these cached
        embeddings.
        """
        self._embeddings.clear()
        texts: List[str] = []
        spans: List[tuple] = []
        for doc_id in self.store.doc_ids():
            flattened = self.store.flattened(doc_id)
            spans.append((doc_id, len(texts), len(texts) + len(flattened)))
            texts.extend(flattened)
        matrix = (
            self.encoder.encode_numpy(texts, batch_size=batch_size)
            if texts
            else np.zeros((0, self.encoder.config.dim))
        )
        self._doc_order = []
        self._offsets = []
        for doc_id, start, stop in spans:
            self._embeddings[doc_id] = matrix[start:stop]
            self._doc_order.append(doc_id)
            self._offsets.append(start)
        self._stacked = matrix

    def _ensure_fresh(self) -> None:
        if self._stacked is None:
            self.refresh_embeddings()

    def doc_embeddings(self, doc_id: int) -> np.ndarray:
        """The cached triple embedding matrix of one document."""
        self._ensure_fresh()
        return self._embeddings.get(
            doc_id, np.zeros((0, self.encoder.config.dim))
        )

    # -- retrieval ----------------------------------------------------------
    def encode_question(self, question: str) -> np.ndarray:
        """The question's [CLS] embedding as a numpy vector."""
        return self.encoder.encode_numpy([question])[0]

    def retrieve(
        self,
        question: str,
        k: int = 10,
        strategy: Optional[ScoreStrategy] = None,
        candidate_ids: Optional[Sequence[int]] = None,
        keep_triple_scores: bool = False,
    ) -> List[RetrievedDocument]:
        """Top-k documents for ``question`` with matched-triple explanations.

        ``candidate_ids`` restricts scoring to a subset (used by rerankers
        and by the multi-hop pipeline's second hop).
        """
        self._ensure_fresh()
        strategy = strategy or self.strategy
        query_vec = self.encode_question(question)
        return self.retrieve_by_vector(
            query_vec,
            k=k,
            strategy=strategy,
            candidate_ids=candidate_ids,
            keep_triple_scores=keep_triple_scores,
        )

    def retrieve_by_vector(
        self,
        query_vec: np.ndarray,
        k: int = 10,
        strategy: Optional[ScoreStrategy] = None,
        candidate_ids: Optional[Sequence[int]] = None,
        keep_triple_scores: bool = False,
    ) -> List[RetrievedDocument]:
        """Same as :meth:`retrieve` for an already-encoded question."""
        self._ensure_fresh()
        strategy = strategy or self.strategy
        doc_ids = (
            list(candidate_ids) if candidate_ids is not None else self._doc_order
        )
        results: List[RetrievedDocument] = []
        for doc_id in doc_ids:
            matrix = self.doc_embeddings(doc_id)
            scores = cosine_matrix(query_vec, matrix)
            aggregated = strategy.aggregate(scores)
            matched_index = strategy.matched_index(scores)
            triples = self.store.triples(doc_id)
            matched = (
                triples[matched_index]
                if 0 <= matched_index < len(triples)
                else None
            )
            results.append(
                RetrievedDocument(
                    doc_id=doc_id,
                    title=self.store.corpus[doc_id].title,
                    score=aggregated,
                    matched_triple=matched,
                    triple_scores=scores if keep_triple_scores else None,
                )
            )
        results.sort(key=lambda r: (-r.score, r.doc_id))
        return results[:k]
