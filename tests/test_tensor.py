"""Gradient checks for the autograd engine.

Every op is validated against central finite differences.
"""

import numpy as np
import pytest

from repro.nn.tensor import Tensor


def numeric_gradient(fn, tensors, eps=1e-6):
    """Central finite differences of sum(fn(*tensors)) w.r.t. each tensor."""
    grads = []
    for x in tensors:
        grad = np.zeros_like(x.data)
        it = np.nditer(x.data, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = x.data[idx]

            def value():
                out = fn(*tensors)
                return out.sum().item() if out.data.ndim else out.item()

            x.data[idx] = orig + eps
            plus = value()
            x.data[idx] = orig - eps
            minus = value()
            x.data[idx] = orig
            grad[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        grads.append(grad)
    return grads


def check(fn, shapes, seed=0, tol=1e-4):
    rng = np.random.RandomState(seed)
    tensors = [Tensor(rng.randn(*s), requires_grad=True) for s in shapes]
    out = fn(*tensors)
    loss = out.sum() if out.data.ndim else out
    loss.backward()
    numeric = numeric_gradient(fn, tensors)
    for tensor, expected in zip(tensors, numeric):
        assert tensor.grad is not None
        np.testing.assert_allclose(tensor.grad, expected, atol=tol, rtol=tol)


class TestArithmeticGradients:
    def test_add_broadcast(self):
        check(lambda a, b: a + b, [(3, 4), (4,)])

    def test_mul_broadcast(self):
        check(lambda a, b: a * b, [(2, 3), (1, 3)])

    def test_sub(self):
        check(lambda a, b: a - b, [(3,), (3,)])

    def test_div(self):
        check(lambda a, b: a / (b * b + 1.0), [(3,), (3,)])

    def test_pow(self):
        check(lambda a: (a * a + 1.0).pow(0.5), [(4,)])

    def test_scalar_mix(self):
        check(lambda a: 2.0 * a + 1.0 - a / 2.0, [(5,)])


class TestMatmulGradients:
    def test_2d(self):
        check(lambda a, b: a @ b, [(3, 4), (4, 5)])

    def test_batched(self):
        check(lambda a, b: a @ b, [(2, 3, 4), (2, 4, 5)])

    def test_vector_matrix(self):
        check(lambda a, b: a @ b, [(4,), (4, 3)])

    def test_matrix_vector(self):
        check(lambda a, b: a @ b, [(3, 4), (4,)])

    def test_vector_vector(self):
        check(lambda a, b: a @ b, [(4,), (4,)])


class TestUnaryGradients:
    def test_exp_log(self):
        check(lambda a: ((a * a) + 1.0).log().exp(), [(3,)])

    def test_tanh(self):
        check(lambda a: a.tanh(), [(4,)])

    def test_relu(self):
        check(lambda a: a.relu(), [(10,)], seed=3)

    def test_gelu(self):
        check(lambda a: a.gelu(), [(6,)])

    def test_sigmoid(self):
        check(lambda a: a.sigmoid(), [(5,)])


class TestReductionGradients:
    def test_sum_all(self):
        check(lambda a: a.sum(), [(3, 4)])

    def test_sum_axis_keepdims(self):
        check(lambda a: a.sum(axis=1, keepdims=True), [(3, 4)])

    def test_mean(self):
        check(lambda a: a.mean(axis=-1), [(2, 5)])

    def test_max(self):
        check(lambda a: a.max(axis=-1), [(3, 5)])

    def test_softmax(self):
        check(lambda a: a.softmax(axis=-1), [(2, 4)])

    def test_softmax_log(self):
        check(lambda a: a.softmax(axis=-1).log(), [(3, 4)])


class TestShapeGradients:
    def test_reshape(self):
        check(lambda a: a.reshape(6), [(2, 3)])

    def test_transpose(self):
        check(lambda a: a.transpose(1, 0), [(2, 3)])

    def test_swapaxes(self):
        check(lambda a: a.swapaxes(0, 2), [(2, 3, 4)])

    def test_getitem(self):
        check(lambda a: a[1:3], [(5, 2)])

    def test_concat(self):
        check(lambda a, b: Tensor.concat([a, b], axis=0), [(2, 3), (4, 3)])

    def test_stack(self):
        check(lambda a, b: Tensor.stack([a, b]), [(3,), (3,)])


class TestBackwardMechanics:
    def test_grad_accumulates_on_reuse(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = (a * 2.0 + a * 3.0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, np.full(3, 5.0))

    def test_no_grad_without_flag(self):
        a = Tensor(np.ones(3))
        out = (a * 2.0).sum()
        out.backward()
        assert a.grad is None

    def test_zero_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(np.ones(2), requires_grad=True)
        out = a
        for _ in range(500):
            out = out * 1.001
        out.sum().backward()
        assert a.grad is not None

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([1.0, 1.0, 0.0]), requires_grad=True)
        a.max(axis=-1).backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5, 0.0])
