"""Importable serving-bundle factories for worker processes.

A worker process cannot be handed live encoder/retriever objects — it is
spawned fresh and must *rebuild* them. What travels over the process
boundary is a :class:`WorkerSpec`-style target string
(``"module:function"``) plus JSON-safe kwargs; the named factory runs in
the worker and returns a :class:`ServingBundle` (encoder + triple store
+ updater + configs). Determinism does the rest: every repo encoder is
seed-constructed, so two processes running the same factory hold
bit-identical weights, their :func:`~repro.ingest.fingerprint.
encoder_fingerprint` matches the published store manifest, and
memmap-attaching the store re-encodes **nothing**.

:class:`DyadicEncoder` lives here (promoted from the serve test suite)
because cross-process byte-identity proofs need an encoder whose scores
are exact dyadic rationals — bitwise invariant to batch shape — and the
worker must be able to import it by name.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from importlib import import_module
from pathlib import Path
from types import SimpleNamespace
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.data.corpus import Corpus, Document
from repro.data.documents import build_corpus
from repro.data.hotpot import build_hotpot_dataset
from repro.data.world import Entity, World, WorldConfig
from repro.encoder.minibert import EncoderConfig, MiniBertEncoder
from repro.oie.triple import Triple
from repro.pipeline.multihop import MultiHopConfig, MultiHopRetriever
from repro.precision import PrecisionLike
from repro.retriever.single import SingleRetriever
from repro.retriever.store import TripleStore
from repro.text.tokenize import tokenize
from repro.text.vocab import Vocab
from repro.updater.updater import QuestionUpdater, UpdaterConfig


def resolve_target(target: str) -> Callable[..., "ServingBundle"]:
    """Import a ``"module:function"`` bundle factory by name."""
    module_name, _, attr = target.partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"target {target!r} is not of the form 'module:function'"
        )
    factory = getattr(import_module(module_name), attr, None)
    if not callable(factory):
        raise ValueError(f"target {target!r} does not name a callable")
    return factory


class _UnitVocab:
    """One-token vocab with uniform IDF: every token maps to weight 1.0.

    Enough surface for :class:`~repro.updater.updater.QuestionUpdater`'s
    novelty scalars (``id_of`` + weight lookup) and for
    :func:`~repro.ingest.fingerprint.encoder_fingerprint` (``token_of``
    enumeration). Uniform integer-valued weights keep every derived
    statistic an exact float — batch- and process-invariant.
    """

    def __len__(self) -> int:
        return 1

    def id_of(self, token: str) -> int:
        return 0

    def token_of(self, index: int) -> str:
        return "<any>"


class DyadicEncoder:
    """Deterministic encoder whose cosines are exact dyadic rationals.

    Embedding entries are 0/±1 with exactly ``nonzeros`` nonzero slots,
    seeded per-text by crc32 — so normalized entries and cosines are
    dyadic rationals, float addition over them is exact hence
    associative, and the scoring matmul is bitwise identical for any
    batch shape *and any process*. The cross-process parity tests lean
    on exactly this.
    """

    def __init__(self, dim: int = 32, nonzeros: int = 16):
        self.config = SimpleNamespace(dim=dim, nonzeros=nonzeros)
        self.nonzeros = nonzeros
        self.vocab = _UnitVocab()
        self._token_weights = np.ones(1)

    def encode_numpy(self, texts, batch_size: int = 64) -> np.ndarray:
        if not texts:
            return np.zeros((0, self.config.dim))
        rows = []
        for text in texts:
            rng = np.random.RandomState(
                zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF
            )
            vec = np.zeros(self.config.dim)
            index = rng.choice(
                self.config.dim, size=self.nonzeros, replace=False
            )
            vec[index] = rng.choice([-1.0, 1.0], size=self.nonzeros)
            rows.append(vec)
        return np.stack(rows)


@dataclass
class ServingBundle:
    """Everything a worker needs to stand up (and hot-swap) retrievers.

    ``make_retriever`` builds a *fresh* :class:`SingleRetriever` each
    call — hot reload must never mutate the retriever the in-flight
    service is still scoring with, so each store generation gets its own
    retriever/multihop pair and the old one drains untouched.
    """

    encoder: Any
    store: TripleStore
    updater: Optional[QuestionUpdater] = None
    multihop_config: Optional[MultiHopConfig] = None
    precision: PrecisionLike = None
    #: deterministic replay questions (benches / tests), may be empty
    questions: List[str] = field(default_factory=list)

    @property
    def corpus(self) -> Corpus:
        return self.store.corpus

    def make_retriever(
        self, store: Optional[TripleStore] = None
    ) -> SingleRetriever:
        return SingleRetriever(
            self.encoder, store or self.store, precision=self.precision
        )

    def make_multihop(
        self, retriever: SingleRetriever
    ) -> Optional[MultiHopRetriever]:
        if self.updater is None:
            return None
        return MultiHopRetriever(
            retriever, self.updater, self.multihop_config
        )


def synthetic_bundle(
    seed: int = 29,
    n_docs: int = 48,
    triples_per_doc: int = 4,
    dim: int = 32,
    encoder: str = "dyadic",
    multihop: bool = True,
    n_questions: int = 32,
) -> ServingBundle:
    """A fully deterministic synthetic corpus + encoder bundle.

    ``encoder="dyadic"`` gives exact cross-process byte-identity (parity
    tests); ``encoder="minibert"`` pays real encode cost (benchmarks).
    Identical arguments produce bit-identical bundles in any process.
    """
    rng = np.random.RandomState(seed)
    documents = []
    rows: Dict[int, List[Triple]] = {}
    for doc_id in range(n_docs):
        title = f"Doc {doc_id}"
        triples = [
            Triple(
                subject=title,
                predicate=f"pred{rng.randint(50)}",
                object=f"obj{rng.randint(50)} tail{rng.randint(50)}",
            )
            for _ in range(triples_per_doc)
        ]
        documents.append(
            Document(
                doc_id=doc_id,
                title=title,
                text=" ".join(t.flatten() for t in triples),
                entity=Entity(uid=doc_id, name=title, kind="synthetic"),
            )
        )
        rows[doc_id] = triples
    store = TripleStore(Corpus(documents))
    for doc_id, triples in rows.items():
        store.put(doc_id, triples)
    questions = [
        f"which document mentions obj{rng.randint(50)} "
        f"tail{rng.randint(50)} ?"
        for _ in range(n_questions)
    ]
    if encoder == "dyadic":
        enc: Any = DyadicEncoder(dim=dim)
    elif encoder == "minibert":
        vocab = Vocab.from_texts(
            [d.text for d in documents] + questions, tokenize
        )
        enc = MiniBertEncoder(
            vocab, EncoderConfig(dim=dim, n_layers=1, n_heads=2, max_len=32)
        )
        enc.fit_idf([store.field_text(d.doc_id) for d in documents])
    else:
        raise ValueError(f"unknown encoder kind {encoder!r}")
    updater = (
        QuestionUpdater(enc, UpdaterConfig()) if multihop else None
    )
    return ServingBundle(
        encoder=enc,
        store=store,
        updater=updater,
        multihop_config=MultiHopConfig() if multihop else None,
        questions=questions,
    )


def model_dir_bundle(model_dir: str) -> ServingBundle:
    """Bundle a trained ``repro build`` model directory for serving.

    Mirrors the CLI's rebuild path: the world/corpus regenerate from the
    persisted seed, then the trained system loads on top — so every
    worker process converges on the same encoder weights and triple
    store as the process that saved the model.
    """
    from repro.pipeline.framework import FrameworkConfig, TripleFactRetrieval

    directory = Path(model_dir)
    meta = json.loads((directory / "meta.json").read_text())
    world = World(WorldConfig(**meta["world"]))
    corpus = build_corpus(world)
    dataset = build_hotpot_dataset(world, corpus, **meta["dataset"])
    config = FrameworkConfig(encoder=EncoderConfig(**meta["encoder"]))
    system = TripleFactRetrieval.load(directory, corpus, config=config)
    return ServingBundle(
        encoder=system.retriever.encoder,
        store=system.retriever.store,
        updater=system.multihop.updater if system.multihop else None,
        multihop_config=(
            system.multihop.config if system.multihop else None
        ),
        questions=[q.text for q in dataset.test],
    )


def publish_store(
    bundle: ServingBundle,
    out_dir: str,
    store: Optional[TripleStore] = None,
) -> int:
    """Publish a store generation the way ``repro ingest`` lays it out.

    Writes ``store.json`` (the triple sets) and ``embeddings/`` (the
    versioned matrix manifest) under ``out_dir`` and returns the new
    generation number. Saving into a directory that already holds a
    generation bumps the counter — this is the hot-reload publish event
    the supervisor watches for.
    """
    from repro.ingest.pipeline import EMBEDDINGS_DIR, STORE_NAME

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    active = store or bundle.store
    retriever = bundle.make_retriever(active)
    retriever.refresh_embeddings()
    embeddings = retriever.export_embeddings()
    embeddings.save(out / EMBEDDINGS_DIR)
    active.save(out / STORE_NAME)
    return embeddings.generation
