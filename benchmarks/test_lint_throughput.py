"""Micro-benchmark: the static analyzer must stay fast enough to gate.

``tests/test_lint_clean.py`` runs the full rule catalog (both phases) on
every tier-1 invocation, so analyzer throughput is part of the suite's
latency budget. This benchmark lints the full configured tree three
ways — cold (empty cache), warm (second run over the same cache), and
parallel cold (``jobs=4``, no cache) — asserts that all three produce
identical findings, enforces a warm >= 3x cold speedup gate plus an
absolute wall-clock ceiling, and writes ``BENCH_lint.json`` next to this
file.

The full configured path set (not just ``src/``) is used so phase 2 sees
a *complete* project run — the ``dead-symbol`` pass only arms itself
when every configured path is covered.

Marked ``perf``; tier-1 (`testpaths = tests`) never collects it.
"""

import json
import shutil
import time
from pathlib import Path

import pytest

from repro.analysis import all_rule_ids, load_config, render_json, run_lint
from repro.storage.atomic import atomic_write_json

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[1]
OUT_PATH = Path(__file__).parent / "BENCH_lint.json"

# a cold two-phase run over ~180 files takes ~2 s on the CI box; the
# ceiling is generous so only a real complexity regression (e.g. a rule
# going quadratic in file size) trips it
COLD_BUDGET_SECONDS = 15.0

# the cache exists to make the gate incremental: a warm run that is not
# at least 3x faster than cold means the cache stopped carrying its
# weight (key churn, serialization blow-up, or a rule bypassing it)
MIN_WARM_SPEEDUP = 3.0


def _findings_signature(report) -> str:
    payload = json.loads(render_json(report))
    del payload["files_cached"]  # telemetry, not part of the result
    return json.dumps(payload, sort_keys=True)


def _time(fn, repeats: int = 3):
    best_seconds, best_result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best_seconds:
            best_seconds, best_result = elapsed, result
    return best_seconds, best_result


def test_lint_cold_warm_parallel(tmp_path):
    config = load_config(REPO_ROOT)
    targets = [REPO_ROOT / p for p in config.paths if (REPO_ROOT / p).exists()]
    assert targets, f"configured lint paths missing: {config.paths}"
    cache_dir = tmp_path / "lint-cache"

    def cold():
        shutil.rmtree(cache_dir, ignore_errors=True)
        return run_lint(targets, config=config, cache_dir=cache_dir)

    cold_seconds, cold_report = _time(cold)
    assert cold_report.files_scanned > 100
    assert cold_report.files_cached == 0

    # rebuild the cache once so every timed warm run starts fully warm
    cold()
    warm_seconds, warm_report = _time(
        lambda: run_lint(targets, config=config, cache_dir=cache_dir)
    )
    assert warm_report.files_cached == warm_report.files_scanned

    parallel_seconds, parallel_report = _time(
        lambda: run_lint(targets, config=config, jobs=4), repeats=1
    )

    # determinism gate: all three modes are byte-identical
    signature = _findings_signature(cold_report)
    assert _findings_signature(warm_report) == signature
    assert _findings_signature(parallel_report) == signature

    speedup = cold_seconds / warm_seconds
    payload = {
        "files_scanned": cold_report.files_scanned,
        "findings": len(cold_report.findings),
        "n_rules": len(all_rule_ids()),
        "cold_seconds_best_of_3": cold_seconds,
        "warm_seconds_best_of_3": warm_seconds,
        "parallel_jobs4_seconds": parallel_seconds,
        "warm_speedup": speedup,
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "cold_files_per_second": cold_report.files_scanned / cold_seconds,
        "warm_files_per_second": warm_report.files_scanned / warm_seconds,
        "cold_budget_seconds": COLD_BUDGET_SECONDS,
    }
    atomic_write_json(OUT_PATH, payload, indent=2)
    print(
        f"\nlint throughput: {cold_report.files_scanned} files | "
        f"cold {cold_seconds * 1e3:.0f} ms, warm {warm_seconds * 1e3:.0f} ms "
        f"({speedup:.1f}x), jobs=4 {parallel_seconds * 1e3:.0f} ms"
    )
    assert cold_seconds <= COLD_BUDGET_SECONDS, payload
    assert speedup >= MIN_WARM_SPEEDUP, payload
    assert not cold_report.findings, (
        "tree must lint clean (see tests/test_lint_clean.py)"
    )
