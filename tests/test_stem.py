"""Unit tests for the Porter-style stemmer."""

import pytest

from repro.text.stem import stem, stem_tokens


class TestStem:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("played", "play"),
            ("playing", "play"),
            ("plays", "play"),
            ("cities", "citi"),
            ("caresses", "caress"),
            ("running", "run"),
            ("hopping", "hop"),
            ("agreed", "agree"),
        ],
    )
    def test_inflections(self, word, expected):
        assert stem(word) == expected

    def test_same_stem_for_variants(self):
        assert stem("founded") == stem("founding")
        assert stem("establish") == stem("established")

    def test_short_words_untouched(self):
        assert stem("is") == "is"
        assert stem("an") == "an"

    def test_non_alpha_untouched(self):
        assert stem("1885") == "1885"
        assert stem("f.c.") == "f.c."

    def test_terminal_y(self):
        assert stem("happy") == "happi"

    def test_idempotent_enough(self):
        # stemming a stem should not oscillate wildly
        first = stem("nationalization")
        assert stem(first) in (first, stem(first))

    def test_stem_tokens(self):
        assert stem_tokens(["played", "games"]) == ["play", "game"]
