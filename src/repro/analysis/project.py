"""Phase 1 of the two-phase analyzer: the per-file project model.

The file-local rules see one AST at a time; the project rules
(:mod:`repro.analysis.project_rules`) need facts that only exist *across*
files — who imports whom, which class owns which lock, which module-level
symbol is ever referenced. This module extracts exactly those facts from
one parsed file into a :class:`ModuleSummary`, and assembles the
summaries of a whole run into a :class:`ProjectModel`.

Summaries are deliberately plain data (nested dataclasses of strings and
ints) for two reasons: they cross process boundaries when ``--jobs N``
fans phase 1 over a pool, and they persist as JSON in the per-file result
cache (:mod:`repro.analysis.cache`) so a warm run never re-parses an
unchanged file. ``to_dict``/``from_dict`` are the stable wire format.

What gets extracted:

* **module identity** — the dotted module name derived from the path
  (``src/repro/serve/cache.py`` → ``repro.serve.cache``).
* **imports** — every ``import``/``from`` target, resolved to absolute
  dotted names (relative imports are expanded against the module
  package), with the line of first occurrence and whether the import is
  module-level or deferred into a function body. Deferred imports are
  the sanctioned cycle-breaking idiom, so the cycle check ignores them
  while the layering check does not.
* **references** — the set of identifiers the file uses anywhere (names,
  attribute accessors, keyword names, ``__all__`` strings), feeding
  ``dead-symbol``.
* **top-level definitions** — module-level ``def``/``class`` with their
  decoration status.
* **class concurrency facts** — lock-attribute inventory
  (``self._x = threading.Lock()/RLock()/Condition()``), the attributes
  ``__init__`` establishes, which of them are mutated outside init, the
  attribute → class map for receivers (``self._queue = BatchQueue(...)``)
  and, per method, every lock acquisition, every access to an
  init-established attribute (with the locks held at that point) and
  every resolvable call made while holding a lock. ``unlocked-shared-
  state`` and ``lock-order-cycle`` run entirely off these facts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import FileContext

#: Constructor names that create a lock-like object worth tracking.
LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Condition"})

#: Methods that mutate a container in place; calling one on an
#: init-established attribute marks that attribute as shared mutable
#: state even though the attribute itself is never rebound.
MUTATING_METHODS = frozenset(
    {
        "append", "appendleft", "extend", "insert", "add", "update",
        "setdefault", "pop", "popleft", "popitem", "remove", "discard",
        "clear", "move_to_end", "sort", "reverse",
    }
)

#: Methods treated as establishing state like ``__init__`` does
#: (dataclasses assign their lock in ``__post_init__``).
INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass
class AttrAccess:
    """One touch of an init-established attribute inside a method."""

    attr: str
    line: int
    col: int
    is_write: bool  # rebind, subscript/member store, or mutating call
    held: Tuple[str, ...]  # lock attrs held at this point (lexical)

    def to_dict(self) -> dict:
        return {
            "attr": self.attr, "line": self.line, "col": self.col,
            "is_write": self.is_write, "held": list(self.held),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttrAccess":
        return cls(
            attr=data["attr"], line=data["line"], col=data["col"],
            is_write=data["is_write"], held=tuple(data["held"]),
        )


@dataclass
class LockAcquire:
    """One ``with self.<lock>:`` acquisition site inside a method."""

    attr: str
    line: int
    col: int
    held: Tuple[str, ...]  # locks already held when this one is taken

    def to_dict(self) -> dict:
        return {
            "attr": self.attr, "line": self.line, "col": self.col,
            "held": list(self.held),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LockAcquire":
        return cls(
            attr=data["attr"], line=data["line"], col=data["col"],
            held=tuple(data["held"]),
        )


@dataclass
class MethodCall:
    """A call with a resolvable receiver, recorded with held locks.

    ``receiver`` is ``""`` for ``self.method()`` (same class) or the
    attribute name for ``self.<attr>.method()`` (the attribute → class
    map resolves the target class in phase 2). Calls on locals, globals
    or deeper chains are not recorded: an unresolvable receiver would
    force name-only matching, and name-only matching invents deadlock
    edges that do not exist.
    """

    receiver: str  # "" = self, else the attribute name
    method: str
    line: int
    col: int
    held: Tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "receiver": self.receiver, "method": self.method,
            "line": self.line, "col": self.col, "held": list(self.held),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MethodCall":
        return cls(
            receiver=data["receiver"], method=data["method"],
            line=data["line"], col=data["col"], held=tuple(data["held"]),
        )


@dataclass
class MethodSummary:
    """Concurrency-relevant facts about one method."""

    name: str
    line: int
    is_public: bool
    is_init: bool
    accesses: List[AttrAccess] = field(default_factory=list)
    acquires: List[LockAcquire] = field(default_factory=list)
    calls: List[MethodCall] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name, "line": self.line,
            "is_public": self.is_public, "is_init": self.is_init,
            "accesses": [a.to_dict() for a in self.accesses],
            "acquires": [a.to_dict() for a in self.acquires],
            "calls": [c.to_dict() for c in self.calls],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MethodSummary":
        return cls(
            name=data["name"], line=data["line"],
            is_public=data["is_public"], is_init=data["is_init"],
            accesses=[AttrAccess.from_dict(a) for a in data["accesses"]],
            acquires=[LockAcquire.from_dict(a) for a in data["acquires"]],
            calls=[MethodCall.from_dict(c) for c in data["calls"]],
        )


@dataclass
class ClassSummary:
    """One class: its lock inventory, shared attributes, and methods."""

    name: str
    line: int
    lock_attrs: List[str] = field(default_factory=list)
    init_attrs: Dict[str, int] = field(default_factory=dict)  # attr -> line
    mutated_attrs: List[str] = field(default_factory=list)
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> class
    methods: List[MethodSummary] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name, "line": self.line,
            "lock_attrs": list(self.lock_attrs),
            "init_attrs": dict(self.init_attrs),
            "mutated_attrs": list(self.mutated_attrs),
            "attr_types": dict(self.attr_types),
            "methods": [m.to_dict() for m in self.methods],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClassSummary":
        return cls(
            name=data["name"], line=data["line"],
            lock_attrs=list(data["lock_attrs"]),
            init_attrs={k: int(v) for k, v in data["init_attrs"].items()},
            mutated_attrs=list(data["mutated_attrs"]),
            attr_types=dict(data["attr_types"]),
            methods=[MethodSummary.from_dict(m) for m in data["methods"]],
        )


@dataclass
class ImportEdge:
    """One imported module: absolute dotted name + where and how."""

    target: str
    line: int
    col: int
    deferred: bool  # inside a function body (lazy import)

    def to_dict(self) -> dict:
        return {
            "target": self.target, "line": self.line, "col": self.col,
            "deferred": self.deferred,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ImportEdge":
        return cls(
            target=data["target"], line=data["line"], col=data["col"],
            deferred=data["deferred"],
        )


@dataclass
class SymbolDef:
    """One module-level ``def``/``class``."""

    name: str
    line: int
    col: int
    kind: str  # "def" | "class"
    decorated: bool

    def to_dict(self) -> dict:
        return {
            "name": self.name, "line": self.line, "col": self.col,
            "kind": self.kind, "decorated": self.decorated,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SymbolDef":
        return cls(
            name=data["name"], line=data["line"], col=data["col"],
            kind=data["kind"], decorated=data["decorated"],
        )


@dataclass
class ModuleSummary:
    """Everything the project rules need to know about one file."""

    module: str
    rel_path: str
    is_test: bool
    imports: List[ImportEdge] = field(default_factory=list)
    defs: List[SymbolDef] = field(default_factory=list)
    references: List[str] = field(default_factory=list)  # sorted, unique
    classes: List[ClassSummary] = field(default_factory=list)

    @property
    def dir_parts(self) -> Set[str]:
        return set(Path(self.rel_path).parts[:-1])

    def to_dict(self) -> dict:
        return {
            "module": self.module, "rel_path": self.rel_path,
            "is_test": self.is_test,
            "imports": [i.to_dict() for i in self.imports],
            "defs": [d.to_dict() for d in self.defs],
            "references": list(self.references),
            "classes": [c.to_dict() for c in self.classes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        return cls(
            module=data["module"], rel_path=data["rel_path"],
            is_test=data["is_test"],
            imports=[ImportEdge.from_dict(i) for i in data["imports"]],
            defs=[SymbolDef.from_dict(d) for d in data["defs"]],
            references=list(data["references"]),
            classes=[ClassSummary.from_dict(c) for c in data["classes"]],
        )


def module_name_of(rel_path: str) -> str:
    """Dotted module name of a repo-relative posix path.

    The ``src/`` layout prefix is dropped so names match import
    statements (``src/repro/cli.py`` → ``repro.cli``); ``__init__.py``
    maps to its package.
    """
    parts = list(Path(rel_path).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [leaf]
    return ".".join(parts)


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """Absolute dotted name of a ``from ...x import y`` target."""
    base = module.split(".")
    # level 1 = the current package; the module's own leaf never counts
    if len(base) >= level:
        base = base[: len(base) - level]
    else:
        base = []
    if target:
        base = base + target.split(".")
    return ".".join(base)


class _ModuleVisitor(ast.NodeVisitor):
    """Single pass collecting imports, defs, references and classes."""

    def __init__(self, module: str):
        self.module = module
        self.imports: Dict[Tuple[str, bool], ImportEdge] = {}
        self.defs: List[SymbolDef] = []
        self.references: Set[str] = set()
        self.classes: List[ClassSummary] = []
        self._depth = 0  # function nesting depth (imports inside = deferred)

    # -- imports ---------------------------------------------------------
    def _add_import(self, target: str, node: ast.AST) -> None:
        if not target:
            return
        deferred = self._depth > 0
        key = (target, deferred)
        if key not in self.imports:
            self.imports[key] = ImportEdge(
                target=target,
                line=node.lineno,
                col=node.col_offset,
                deferred=deferred,
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._add_import(alias.name, node)
            self.references.add((alias.asname or alias.name).split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = (
            _resolve_relative(self.module, node.level, node.module)
            if node.level
            else (node.module or "")
        )
        for alias in node.names:
            # ``from pkg import sub`` may name a submodule: record the
            # dotted child, not the bare package — resolution walks up
            # the dotted prefix anyway, and an unconditional edge to the
            # package __init__ would invent cycles that ``from pkg
            # import submodule`` does not create at runtime
            self._add_import(
                f"{base}.{alias.name}" if base else alias.name, node
            )
            self.references.add(alias.asname or alias.name)

    # -- references ------------------------------------------------------
    def visit_Name(self, node: ast.Name) -> None:
        self.references.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.references.add(node.attr)
        self.generic_visit(node)

    def visit_keyword(self, node: ast.keyword) -> None:
        if node.arg:
            self.references.add(node.arg)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # names listed in __all__ are deliberate exports: count the
        # strings as references so re-exported symbols are never "dead"
        targets = [
            t for t in node.targets
            if isinstance(t, ast.Name) and t.id == "__all__"
        ]
        if targets:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Constant) and isinstance(
                    sub.value, str
                ):
                    self.references.add(sub.value)
        self.generic_visit(node)

    # -- definitions and classes -----------------------------------------
    def _visit_def(self, node, kind: str) -> None:
        if self._depth == 0:
            self.defs.append(
                SymbolDef(
                    name=node.name,
                    line=node.lineno,
                    col=node.col_offset,
                    kind=kind,
                    decorated=bool(node.decorator_list),
                )
            )
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node, "def")

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node, "def")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._depth == 0:
            self.defs.append(
                SymbolDef(
                    name=node.name,
                    line=node.lineno,
                    col=node.col_offset,
                    kind="class",
                    decorated=bool(node.decorator_list),
                )
            )
            self.classes.append(_summarize_class(node))
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _lock_constructor(value: ast.expr) -> bool:
    """Whether ``value`` is a ``Lock()``/``RLock()``/``Condition()`` call."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = (
        func.attr
        if isinstance(func, ast.Attribute)
        else func.id
        if isinstance(func, ast.Name)
        else ""
    )
    return name in LOCK_CONSTRUCTORS


def _constructed_class(value: ast.expr) -> Optional[str]:
    """Class name when ``value`` is ``ClassName(...)`` (capitalized)."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr
        if isinstance(func, ast.Attribute)
        else ""
    )
    return name if name[:1].isupper() else None


def _annotated_class(annotation: Optional[ast.expr]) -> Optional[str]:
    """Class name from a ``self.x: ClassName`` / ``"ClassName"`` annotation."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name):
        name = annotation.id
    elif isinstance(annotation, ast.Attribute):
        name = annotation.attr
    elif isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        name = annotation.value.rsplit(".", 1)[-1]
    else:
        return None
    return name if name[:1].isupper() else None


class _MethodWalker:
    """Walk one method body tracking the lexically held lock set."""

    def __init__(self, lock_attrs: Set[str], tracked: Set[str]):
        self.lock_attrs = lock_attrs
        self.tracked = tracked  # init-established attrs worth recording
        self.accesses: List[AttrAccess] = []
        self.acquires: List[LockAcquire] = []
        self.calls: List[MethodCall] = []
        self._held: List[str] = []

    def held(self) -> Tuple[str, ...]:
        return tuple(self._held)

    def _record_access(self, attr: str, node: ast.AST, write: bool) -> None:
        if attr in self.tracked and attr not in self.lock_attrs:
            self.accesses.append(
                AttrAccess(
                    attr=attr,
                    line=node.lineno,
                    col=node.col_offset,
                    is_write=write,
                    held=self.held(),
                )
            )

    def walk(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self._walk_stmt(statement)

    def _walk_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[str] = []
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in self.lock_attrs:
                    self.acquires.append(
                        LockAcquire(
                            attr=attr,
                            line=item.context_expr.lineno,
                            col=item.context_expr.col_offset,
                            held=self.held(),
                        )
                    )
                    self._held.append(attr)
                    acquired.append(attr)
                else:
                    self._walk_expr(item.context_expr)
            self.walk(node.body)
            for _ in acquired:
                self._held.pop()
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes: lock context does not carry lexically
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                self._walk_target(target)
            if isinstance(node, ast.AugAssign):
                # augmented writes also read the previous value
                attr = _self_attr(node.target)
                if attr is not None:
                    pass  # already recorded as a write by _walk_target
            if node.value is not None:
                self._walk_expr(node.value)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._walk_target(target)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._walk_stmt(child)
            elif isinstance(child, ast.expr):
                self._walk_expr(child)

    def _walk_target(self, target: ast.expr) -> None:
        """A store/delete target: classify which attribute it mutates."""
        attr = _self_attr(target)
        if attr is not None:
            self._record_access(attr, target, write=True)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute, ast.Starred)):
            # self.attr[k] = v / self.attr.field = v / del self.attr[k]
            inner = _self_attr(target.value)
            if inner is not None:
                self._record_access(inner, target, write=True)
                return
            self._walk_expr(target.value)
            if isinstance(target, ast.Subscript):
                self._walk_expr(target.slice)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._walk_target(element)
            return
        self._walk_expr(target)

    def _walk_expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Call):
            func = node.func
            recorded = False
            if isinstance(func, ast.Attribute):
                receiver = func.value
                attr = _self_attr(receiver)
                if attr is not None:
                    # self.<attr>.method(...)
                    if func.attr in MUTATING_METHODS:
                        self._record_access(attr, func, write=True)
                    else:
                        self._record_access(attr, func, write=False)
                    self.calls.append(
                        MethodCall(
                            receiver=attr,
                            method=func.attr,
                            line=node.lineno,
                            col=node.col_offset,
                            held=self.held(),
                        )
                    )
                    recorded = True
                elif (
                    isinstance(receiver, ast.Name) and receiver.id == "self"
                ):
                    # self.method(...)
                    self.calls.append(
                        MethodCall(
                            receiver="",
                            method=func.attr,
                            line=node.lineno,
                            col=node.col_offset,
                            held=self.held(),
                        )
                    )
                    recorded = True
            if not recorded:
                self._walk_expr_children(func)
            for arg in node.args:
                self._walk_expr(arg)
            for keyword in node.keywords:
                self._walk_expr(keyword.value)
            return
        attr = _self_attr(node)
        if attr is not None:
            self._record_access(attr, node, write=False)
            return
        if isinstance(node, (ast.Lambda,)):
            return  # separate scope
        self._walk_expr_children(node)

    def _walk_expr_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._walk_expr(child)
            elif isinstance(child, ast.stmt):  # pragma: no cover - defensive
                self._walk_stmt(child)


def _summarize_class(node: ast.ClassDef) -> ClassSummary:
    """Concurrency facts of one class definition."""
    summary = ClassSummary(name=node.name, line=node.lineno)
    methods = [
        child
        for child in node.body
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    # pass 1: the attribute inventory from the init-style methods, plus
    # dataclass-style class-body annotations
    for child in node.body:
        if isinstance(child, ast.AnnAssign) and isinstance(
            child.target, ast.Name
        ):
            summary.init_attrs.setdefault(child.target.id, child.lineno)
    for method in methods:
        if method.name not in INIT_METHODS:
            continue
        for sub in ast.walk(method):
            if isinstance(sub, ast.Assign):
                value = sub.value
                for target in sub.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    summary.init_attrs.setdefault(attr, target.lineno)
                    if _lock_constructor(value):
                        if attr not in summary.lock_attrs:
                            summary.lock_attrs.append(attr)
                    constructed = _constructed_class(value)
                    if constructed and constructed not in LOCK_CONSTRUCTORS:
                        summary.attr_types.setdefault(attr, constructed)
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                attr = _self_attr(sub.target)
                if attr is not None:
                    summary.init_attrs.setdefault(attr, sub.target.lineno)
                    if _lock_constructor(sub.value):
                        if attr not in summary.lock_attrs:
                            summary.lock_attrs.append(attr)
                    declared = _annotated_class(sub.annotation) or (
                        _constructed_class(sub.value)
                    )
                    if declared and declared not in LOCK_CONSTRUCTORS:
                        summary.attr_types.setdefault(attr, declared)
    lock_attrs = set(summary.lock_attrs)
    tracked = set(summary.init_attrs)
    # pass 2: per-method facts
    mutated: Set[str] = set()
    for method in methods:
        walker = _MethodWalker(lock_attrs, tracked)
        walker.walk(method.body)
        name = method.name
        is_init = name in INIT_METHODS
        is_public = not name.startswith("_") or (
            name.startswith("__") and name.endswith("__") and not is_init
        )
        summary.methods.append(
            MethodSummary(
                name=name,
                line=method.lineno,
                is_public=is_public,
                is_init=is_init,
                accesses=walker.accesses,
                acquires=walker.acquires,
                calls=walker.calls,
            )
        )
        if not is_init:
            mutated.update(
                access.attr for access in walker.accesses if access.is_write
            )
    summary.mutated_attrs = sorted(mutated)
    return summary


def summarize_module(ctx: FileContext) -> ModuleSummary:
    """Phase-1 extraction: one :class:`ModuleSummary` per parsed file."""
    module = module_name_of(ctx.rel_path)
    visitor = _ModuleVisitor(module)
    visitor.visit(ctx.tree)
    return ModuleSummary(
        module=module,
        rel_path=ctx.rel_path,
        is_test=ctx.is_test_file,
        imports=sorted(
            visitor.imports.values(),
            key=lambda e: (e.target, e.deferred, e.line),
        ),
        defs=visitor.defs,
        references=sorted(visitor.references),
        classes=visitor.classes,
    )


@dataclass
class ProjectModel:
    """Phase 2's input: every module summary plus derived indexes."""

    modules: Dict[str, ModuleSummary] = field(default_factory=dict)
    #: class name -> [(module name, summary)]; names can collide across
    #: modules, so consumers must handle multiple candidates explicitly
    class_index: Dict[str, List[Tuple[str, ClassSummary]]] = field(
        default_factory=dict
    )
    #: whether the run covered every configured lint path (rules that
    #: reason about "the whole project", e.g. dead-symbol, stay silent
    #: on partial runs — a reference could live in an unscanned file)
    full_project: bool = True

    def resolve_import(self, target: str) -> Optional[str]:
        """The most specific project module matching an import target."""
        name = target
        while name:
            if name in self.modules:
                return name
            if "." not in name:
                return None
            name = name.rsplit(".", 1)[0]
        return None


def build_project_model(
    summaries: Sequence[ModuleSummary], full_project: bool = True
) -> ProjectModel:
    """Assemble phase-1 summaries into the phase-2 model."""
    model = ProjectModel(full_project=full_project)
    for summary in summaries:
        model.modules[summary.module] = summary
        for cls in summary.classes:
            model.class_index.setdefault(cls.name, []).append(
                (summary.module, cls)
            )
    return model
