"""Neural-network modules over the autograd tensor."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.precision import TRAINING_DTYPE

from repro.nn.tensor import Tensor


class Module:
    """Base class: parameter registry, train/eval mode, named traversal."""

    def __init__(self):
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        tensor.requires_grad = True
        self._parameters[name] = tensor
        return tensor

    def register_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def __setattr__(self, name, value):
        if isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        super().__setattr__(name, value)

    def parameters(self) -> List[Tensor]:
        """All parameters of this module and its children."""
        return [tensor for _, tensor in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, tensor in self._parameters.items():
            yield (f"{prefix}{name}", tensor)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """This module and every descendant, depth-first, with dotted names.

        The inference baker walks this to prove it recognizes every
        module in a stack before trusting its fused plan of it.
        """
        yield (prefix, self)
        for child_name, child in self._modules.items():
            child_prefix = f"{prefix}.{child_name}" if prefix else child_name
            yield from child.named_modules(prefix=child_prefix)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        self.training = True
        for child in self._modules.values():
            child.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for child in self._modules.values():
            child.eval()
        return self

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine map y = x W + b with Xavier-uniform initialization."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.RandomState] = None, bias: bool = True):
        super().__init__()
        rng = rng or np.random.RandomState(0)
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.weight = self.register_parameter(
            "weight",
            Tensor(rng.uniform(-bound, bound, size=(in_features, out_features))),
        )
        self.bias = (
            self.register_parameter("bias", Tensor(np.zeros(out_features)))
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id -> vector lookup with scatter-add backward."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: Optional[np.random.RandomState] = None,
                 padding_idx: Optional[int] = None):
        super().__init__()
        rng = rng or np.random.RandomState(0)
        data = rng.normal(0.0, 0.02, size=(num_embeddings, dim))
        if padding_idx is not None:
            data[padding_idx] = 0.0
        self.weight = self.register_parameter("weight", Tensor(data))
        self.padding_idx = padding_idx

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        weight = self.weight
        out_data = weight.data[ids]
        padding_idx = self.padding_idx

        def grad_fn(g):
            grad = np.zeros_like(weight.data)
            np.add.at(grad, ids.reshape(-1), g.reshape(-1, g.shape[-1]))
            if padding_idx is not None:
                grad[padding_idx] = 0.0
            return grad

        return Tensor(out_data, parents=(weight,), grad_fns=(grad_fn,))


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.gamma = self.register_parameter("gamma", Tensor(np.ones(dim)))
        self.beta = self.register_parameter("beta", Tensor(np.zeros(dim)))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (variance + self.eps).pow(-0.5)
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.RandomState] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout p must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.RandomState(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.rand(*x.shape) < keep).astype(TRAINING_DTYPE) / keep
        return x * Tensor(mask)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.steps = list(modules)
        for i, module in enumerate(modules):
            self.register_module(str(i), module)

    def forward(self, x):
        for module in self.steps:
            x = module(x)
        return x
