"""Canopy partitioning (paper Algorithm 1, line 4).

Instead of clustering all m triples directly, partition them into small
canopies first: triples sharing the same "subject-predicate" structure
(facts about one aspect) fall in one canopy, and remaining triples sharing
a "subject" (facts about one entity) group together. Inner clustering then
runs per canopy — this is what brings the complexity to O(m^2) in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.oie.triple import Triple
from repro.text.stem import stem
from repro.text.tokenize import tokenize


@dataclass
class Canopy:
    """One canopy: a key (its shared structure) and its member triples."""

    key: Tuple[str, ...]
    level: str  # "subject-predicate" or "subject"
    triples: List[Triple] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.triples)


def _subject_key(triple: Triple) -> Tuple[str, ...]:
    return tuple(stem(t) for t in tokenize(triple.subject) if t[:1].isalnum())


def _predicate_key(triple: Triple) -> Tuple[str, ...]:
    return tuple(stem(t) for t in tokenize(triple.predicate) if t[:1].isalnum())


def build_canopies(
    triples: Sequence[Triple], min_sp_size: int = 2
) -> List[Canopy]:
    """Partition triples into canopies.

    Triples are first grouped by (subject, predicate); groups of at least
    ``min_sp_size`` become "subject-predicate" canopies (these hold the
    sibling candidates). Leftover triples are grouped by subject alone.
    Singleton subjects still form (singleton) canopies so the union of all
    canopies is exactly the input set.
    """
    sp_groups: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], List[Triple]] = {}
    for triple in triples:
        key = (_subject_key(triple), _predicate_key(triple))
        sp_groups.setdefault(key, []).append(triple)

    canopies: List[Canopy] = []
    leftovers: List[Triple] = []
    for (subject_key, predicate_key), members in sp_groups.items():
        if len(members) >= min_sp_size:
            canopies.append(
                Canopy(
                    key=subject_key + ("|",) + predicate_key,
                    level="subject-predicate",
                    triples=members,
                )
            )
        else:
            leftovers.extend(members)

    subject_groups: Dict[Tuple[str, ...], List[Triple]] = {}
    for triple in leftovers:
        subject_groups.setdefault(_subject_key(triple), []).append(triple)
    for subject_key, members in subject_groups.items():
        canopies.append(Canopy(key=subject_key, level="subject", triples=members))
    return canopies
