"""StanfordIE-style pattern extractor.

Reproduces the qualitative profile of Angeli et al.'s extractor as the
paper characterizes it (Sec. IV-C and Fig. 3): it over-generates —

* a maximal triple spanning the whole remainder,
* one triple per conjunct of coordinated objects (keeping determiners),
* cascading *noise* triples between adjacent conjuncts (the paper's
  Fig. 3 items 6-9: ``[civil rights activist, is, historian]``),
* weaker behaviour on long sentences: when the remainder has many
  prepositional segments, attachment is not split out, so the object is a
  long low-precision span.
"""

from __future__ import annotations

from typing import List

from repro.oie.base import OpenIEExtractor, parse_clause, split_conjuncts
from repro.oie.triple import Triple


class PatternExtractor(OpenIEExtractor):
    """Over-generating pattern OIE (StanfordIE stand-in)."""

    name = "pattern"

    def __init__(self, emit_noise_cascade: bool = True):
        self.emit_noise_cascade = emit_noise_cascade

    def extract_sentence(self, sentence: str, sentence_index: int = 0) -> List[Triple]:
        clause = parse_clause(sentence)
        if clause is None or not clause.segments:
            return []
        subject = clause.subject_text
        verb = clause.verb_text
        triples: List[Triple] = [
            Triple(
                subject=subject,
                predicate=verb,
                object=clause.remainder_text,
                source=self.name,
                sentence_index=sentence_index,
                confidence=1.0,
            )
        ]
        # conjunct splitting on the first (direct-object) segment of copulas
        first = clause.segments[0]
        if clause.is_copula and first.preposition is None:
            conjuncts = split_conjuncts(first.tokens)
            if len(conjuncts) > 1:
                for conjunct in conjuncts:
                    triples.append(
                        Triple(
                            subject=subject,
                            predicate=verb,
                            object=" ".join(conjunct),
                            source=self.name,
                            sentence_index=sentence_index,
                            confidence=0.8,
                        )
                    )
                if self.emit_noise_cascade:
                    # Fig. 3 items 6-9: adjacent conjuncts chained as if one
                    # were the subject of the next.
                    for left, right in zip(conjuncts, conjuncts[1:]):
                        triples.append(
                            Triple(
                                subject=" ".join(left),
                                predicate=verb,
                                object=" ".join(right),
                                source=self.name,
                                sentence_index=sentence_index,
                                confidence=0.3,
                            )
                        )
        return triples
