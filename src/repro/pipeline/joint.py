"""Joint end-to-end training of retriever and updater (paper Sec. VI).

"Future work involves end-to-end training of our single retriever and
updater for improving upon our current two-models training."

This trainer realizes that plan: one optimization loop alternates between
the two losses over the *shared* encoder —

* the retriever's listwise max-matching loss (1 positive vs 9 negatives),
* a hop-2 consistency loss: with the gold clue triple appended, the
  next-hop gold document must outscore the negatives sampled for the
  original question.

The second term trains exactly the capability the two-stage recipe leaves
implicit: the encoder must place ``v(q) + v(clue)`` near the hop-2
document's triples. The updater's scalar head is refreshed after the
encoder converges (its features depend on the encoder's geometry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.corpus import Corpus
from repro.data.hotpot import HotpotQuestion
from repro.nn.losses import cosine_similarity
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.retriever.negatives import TrainingExample, mine_training_examples
from repro.retriever.single import SingleRetriever
from repro.retriever.trainer import RetrieverTrainer, TrainerConfig
from repro.updater.golden import ground_clue_index
from repro.updater.updater import QuestionUpdater, UpdaterTrainer


@dataclass
class JointConfig:
    """Joint-training knobs."""

    epochs: int = 2
    lr: float = 3e-4
    logit_scale: float = 4.0
    hop2_weight: float = 0.5  # weight of the hop-2 consistency loss
    max_triples_per_doc: int = 6
    clip_norm: float = 5.0
    seed: int = 47


@dataclass
class JointExample:
    """One joint instance: retriever example + hop-2 supervision."""

    base: TrainingExample
    clue_text: Optional[str] = None  # novel tokens of the gold clue
    hop2_doc_id: Optional[int] = None  # gold next-hop document


class JointTrainer:
    """Alternating end-to-end training over the shared encoder."""

    def __init__(
        self,
        retriever: SingleRetriever,
        updater: QuestionUpdater,
        config: Optional[JointConfig] = None,
    ):
        self.retriever = retriever
        self.updater = updater
        self.config = config or JointConfig()
        self._rng = np.random.RandomState(self.config.seed)
        self._inner = RetrieverTrainer(
            retriever,
            TrainerConfig(
                epochs=1,
                lr=self.config.lr,
                logit_scale=self.config.logit_scale,
                max_triples_per_doc=self.config.max_triples_per_doc,
                refresh_after=False,
            ),
        )

    # -- data -----------------------------------------------------------
    def build_examples(
        self,
        questions: Sequence[HotpotQuestion],
        corpus: Corpus,
    ) -> List[JointExample]:
        """Retriever examples enriched with gold-clue hop-2 supervision."""
        store = self.retriever.store
        base_examples = mine_training_examples(questions, corpus, store)
        by_qid: Dict[int, HotpotQuestion] = {q.qid: q for q in questions}
        joint: List[JointExample] = []
        for example in base_examples:
            question = by_qid.get(example.qid)
            entry = JointExample(base=example)
            if question is not None and question.is_bridge:
                hop1 = corpus.by_title(question.gold_titles[0])
                hop2 = corpus.by_title(question.gold_titles[1])
                if hop1 is not None and hop2 is not None:
                    triples = store.triples(hop1.doc_id)
                    gold = ground_clue_index(triples, hop2)
                    if gold is not None:
                        clue = triples[gold]
                        question_tokens = set(
                            t.lower()
                            for t in question.text.replace("?", " ").split()
                        )
                        novel = [
                            token
                            for token in clue.flatten().split()
                            if token.lower() not in question_tokens
                        ]
                        capitalized = [t for t in novel if t[:1].isupper()]
                        entry.clue_text = (
                            " ".join(capitalized or novel) or clue.flatten()
                        )
                        entry.hop2_doc_id = hop2.doc_id
            joint.append(entry)
        return joint

    # -- losses ------------------------------------------------------------
    def _hop2_loss(self, example: JointExample) -> Optional[Tensor]:
        """Listwise loss: gold hop-2 doc above the question's negatives,
        under the combined (question + clue) query embedding."""
        if example.clue_text is None or example.hop2_doc_id is None:
            return None
        base = example.base
        doc_ids = [example.hop2_doc_id] + [
            d for d in base.negative_doc_ids if d != example.hop2_doc_id
        ]
        query = f"{base.question} {example.clue_text}"
        texts: List[str] = [query]
        spans: List[Optional[Tuple[int, int]]] = []
        for doc_id in doc_ids:
            flattened = self._inner._select_triples(query, doc_id)
            if not flattened:
                spans.append(None)
                continue
            spans.append((len(texts), len(texts) + len(flattened)))
            texts.extend(flattened)
        if spans[0] is None:
            return None
        embeddings = self.retriever.encoder.encode(texts)
        query_vec = embeddings[0]
        scores: List[Tensor] = []
        for span in spans:
            if span is None:
                continue
            start, stop = span
            scores.append(
                cosine_similarity(query_vec, embeddings[start:stop]).max(axis=-1)
            )
        if len(scores) < 2:
            return None
        logits = Tensor.stack(scores) * self.config.logit_scale
        return -logits.softmax(axis=-1).log()[0]

    # -- training ---------------------------------------------------------
    def train(
        self, examples: Sequence[JointExample], verbose: bool = False
    ) -> List[float]:
        """Run joint training; returns per-epoch mean combined losses."""
        cfg = self.config
        model = self.retriever.encoder.model
        model.train()
        frozen = {
            id(model.token_embedding.weight),
            id(model.position_embedding.weight),
        }
        parameters = [p for p in model.parameters() if id(p) not in frozen]
        optimizer = Adam(parameters, lr=cfg.lr)
        losses: List[float] = []
        examples = list(examples)
        for epoch in range(cfg.epochs):
            order = self._rng.permutation(len(examples))
            epoch_losses = []
            for i in order:
                example = examples[i]
                loss = self._inner._example_loss(example.base)
                hop2_loss = self._hop2_loss(example)
                if loss is None and hop2_loss is None:
                    continue
                if loss is None:
                    total = hop2_loss * cfg.hop2_weight
                elif hop2_loss is None:
                    total = loss
                else:
                    total = loss + hop2_loss * cfg.hop2_weight
                model.zero_grad()
                total.backward()
                optimizer.clip_grad_norm(cfg.clip_norm)
                optimizer.step()
                epoch_losses.append(total.item())
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
            losses.append(mean_loss)
            if verbose:  # pragma: no cover - console output
                print(f"[joint] epoch {epoch + 1}/{cfg.epochs} "
                      f"loss={mean_loss:.4f}")
        model.eval()
        self.retriever.refresh_embeddings()
        return losses

    def refresh_updater(
        self,
        questions: Sequence[HotpotQuestion],
        corpus: Corpus,
    ) -> List[float]:
        """Re-fit the updater head on the jointly-trained encoder."""
        trainer = UpdaterTrainer(self.updater, self.updater.config)
        updater_examples = trainer.build_examples(
            questions, corpus, self.retriever.store
        )
        return trainer.train(updater_examples)
