"""Multi-field inverted index with pluggable scorers.

The central search abstraction: documents are indexed into named fields
("text" for the full body, "triples" for the flattened triple-fact set,
"stanford_triples" / "minie_triples" for the Table III comparisons), and
queries run BM25 or TF-IDF against any field — exactly how the paper drives
its Elasticsearch deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.index.analyzer import Analyzer
from repro.index.bm25 import BM25Scorer
from repro.index.postings import Field
from repro.index.tfidf import TfidfScorer


@dataclass(frozen=True)
class SearchHit:
    """One ranked retrieval result."""

    doc_id: int
    score: float


class InvertedIndex:
    """A multi-field inverted index.

    Usage::

        index = InvertedIndex()
        index.add_document(0, {"text": doc.text, "triples": flat_triples})
        hits = index.search("when was the club founded", field="triples", k=10)
    """

    def __init__(
        self,
        analyzer: Optional[Analyzer] = None,
        scorer: Union[BM25Scorer, TfidfScorer, None] = None,
    ):
        self.analyzer = analyzer or Analyzer()
        self.scorer = scorer or BM25Scorer()
        self._fields: Dict[str, Field] = {}
        self._doc_ids: List[int] = []

    # -- writing ------------------------------------------------------------
    def field(self, name: str) -> Field:
        """Get (or create) the named field."""
        if name not in self._fields:
            self._fields[name] = Field(name)
        return self._fields[name]

    def add_document(self, doc_id: int, fields: Dict[str, str]) -> None:
        """Index ``doc_id`` with raw text per field name."""
        for name, text in fields.items():
            self.field(name).add(doc_id, self.analyzer.analyze(text))
        self._doc_ids.append(doc_id)

    @property
    def doc_count(self) -> int:
        return len(self._doc_ids)

    def field_names(self) -> List[str]:
        """Names of all indexed fields."""
        return list(self._fields)

    # -- searching ------------------------------------------------------------
    def search(
        self,
        query: str,
        field: str = "text",
        k: int = 10,
        scorer: Union[BM25Scorer, TfidfScorer, None] = None,
        exclude: Optional[Sequence[int]] = None,
    ) -> List[SearchHit]:
        """Rank documents in ``field`` against ``query``.

        Parameters
        ----------
        query:
            Raw query text (analyzed with the index analyzer).
        field:
            Field to search; raises KeyError if never indexed.
        k:
            Number of hits to return.
        scorer:
            Optional scorer override for this call.
        exclude:
            Document ids to omit from the ranking (used when mining
            negatives: "top 9 documents except the ground documents").
        """
        if field not in self._fields:
            raise KeyError(f"unknown field {field!r}")
        terms = self.analyzer.analyze(query)
        active = scorer or self.scorer
        excluded = set(exclude or ())
        budget = k + len(excluded)
        hits = [
            SearchHit(doc_id, score)
            for doc_id, score in active.top_k(self._fields[field], terms, budget)
            if doc_id not in excluded
        ]
        return hits[:k]
