"""Explainable triple extraction — the paper's Fig. 3 walkthrough.

Shows each stage of the offline pipeline on one document: coreference
resolution, the two OIE extractors, the noisy/redundant union set ``T_o``,
and the complete-minimized set ``T_d`` produced by Algorithm 1 (with
mother-child removal and sibling fusion visible), compared against the
HAC baseline's lossy output.

    python examples/explainable_extraction.py
"""

from repro.core import ConstructionConfig, TripleSetConstructor
from repro.index import EntityIndex
from repro.oie import MinIEExtractor, PatternExtractor, UnionExtractor
from repro.text import resolve_coreferences
from repro.triples import hac_construct

DOCUMENT = (
    "Staughton Craig Lynd is an American conscientious objector. "
    "He is a Quaker, peace activist and civil rights activist. "
    "He worked as a historian and professor. "
    "He was born in Philadelphia. "
    "Local newspapers covered the story at the time."
)
TITLE = "Staughton Craig Lynd"


def main() -> None:
    print("=== document ===")
    print(DOCUMENT)

    print("\n=== coreference resolution ===")
    resolved = resolve_coreferences(DOCUMENT, title=TITLE, entity_kind="person")
    for sentence in resolved.sentences:
        print(" ", sentence)

    print("\n=== StanfordIE-style pattern extraction (over-generates) ===")
    for triple in PatternExtractor().extract_document(
        DOCUMENT, title=TITLE, entity_kind="person"
    ):
        tag = "NOISE" if triple.confidence <= 0.4 else "     "
        print(f"  [{tag}] {triple}")

    print("\n=== MinIE-style extraction (minimized constituents) ===")
    for triple in MinIEExtractor().extract_document(
        DOCUMENT, title=TITLE, entity_kind="person"
    ):
        print(f"  {triple}")

    union = UnionExtractor().extract_document(
        DOCUMENT, title=TITLE, entity_kind="person"
    )
    print(f"\n=== union set T_o: {len(union)} triples ===")

    linker = EntityIndex([TITLE, "Philadelphia"])
    linker.add_document(0, DOCUMENT)
    constructor = TripleSetConstructor(
        ConstructionConfig(threshold_size=6), linker=linker
    )
    result = constructor.construct(union, doc_entities=linker.entities_of(0))
    print(
        f"=== Algorithm 1 -> T_d: {len(result.triples)} triples "
        f"(pruned {result.pruned_noise} noise, removed "
        f"{result.removed_children} children, fused {result.fused}) ==="
    )
    for triple in result.triples:
        print(f"  {triple}")

    print("\n=== HAC baseline (same budget, lossy representatives) ===")
    for triple in hac_construct(union, 6):
        print(f"  {triple}")


if __name__ == "__main__":
    main()
