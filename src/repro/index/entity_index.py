"""Entity index: surface-form entity linking over a corpus.

Provides the two entity facilities the paper relies on:

* per-document linked-entity sets (``E_d`` in Eq. 1, the relatedness score),
* entity -> documents postings (used by the HopRetriever baseline and by
  the world's hyperlink graph construction).

Linking is longest-match-first exact phrase matching over a dictionary of
known entity names — the standard "mention dictionary" linker.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.text.tokenize import tokenize


class EntityIndex:
    """Dictionary-based entity linker + entity->document postings."""

    def __init__(self, entity_names: Iterable[str]):
        self._names: Set[str] = set(entity_names)
        # token-tuple -> canonical name, longest matches first at query time
        self._by_tokens: Dict[tuple, str] = {}
        self._max_len = 1
        for name in self._names:
            key = tuple(tokenize(name))
            if key:
                self._by_tokens[key] = name
                self._max_len = max(self._max_len, len(key))
        self._doc_entities: Dict[int, List[str]] = {}
        self._entity_docs: Dict[str, List[int]] = {}

    # -- linking ----------------------------------------------------------
    def link(self, text: str) -> List[str]:
        """Return entity names mentioned in ``text`` (greedy longest match).

        Each text position is consumed by at most one mention, so nested
        mentions resolve to the longest span.
        """
        tokens = tokenize(text)
        found: List[str] = []
        seen: Set[str] = set()
        i = 0
        n = len(tokens)
        while i < n:
            matched = False
            for length in range(min(self._max_len, n - i), 0, -1):
                key = tuple(tokens[i : i + length])
                name = self._by_tokens.get(key)
                if name is not None:
                    if name not in seen:
                        seen.add(name)
                        found.append(name)
                    i += length
                    matched = True
                    break
            if not matched:
                i += 1
        return found

    # -- corpus registration ----------------------------------------------
    def add_document(self, doc_id: int, text: str) -> List[str]:
        """Link ``text`` and record the result for ``doc_id``."""
        entities = self.link(text)
        self._doc_entities[doc_id] = entities
        for name in entities:
            self._entity_docs.setdefault(name, []).append(doc_id)
        return entities

    def entities_of(self, doc_id: int) -> List[str]:
        """Linked entities of ``doc_id`` (``E_d``)."""
        return list(self._doc_entities.get(doc_id, ()))

    def documents_with(self, entity: str) -> List[int]:
        """Documents mentioning ``entity``."""
        return list(self._entity_docs.get(entity, ()))

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def __len__(self) -> int:
        return len(self._names)
