"""Unit tests for the sentence splitter."""

from repro.text.sentences import split_sentences


class TestSplitSentences:
    def test_two_sentences(self):
        out = split_sentences("He played for Millwall. He retired in 1920.")
        assert out == ["He played for Millwall.", "He retired in 1920."]

    def test_abbreviation_not_split(self):
        out = split_sentences("He played for Millwall F.C. He retired.")
        assert len(out) == 2
        assert out[0].endswith("F.C.")

    def test_initials_not_split(self):
        out = split_sentences("Walter O. Davis played there. He scored.")
        assert len(out) == 2

    def test_question_and_exclamation(self):
        out = split_sentences("Really? Yes! It is true.")
        assert out == ["Really?", "Yes!", "It is true."]

    def test_empty(self):
        assert split_sentences("") == []

    def test_whitespace_only(self):
        assert split_sentences("   \n ") == []

    def test_no_terminal_punctuation(self):
        assert split_sentences("no punctuation here") == ["no punctuation here"]

    def test_numbers_not_split(self):
        out = split_sentences("It cost 3.50 dollars. He paid.")
        assert len(out) == 2
        assert "3.50" in out[0]
