"""Triple-Fact Retriever — ICDE 2022 reproduction.

An explainable reasoning retrieval model for open-domain multi-hop QA,
rebuilt end-to-end in pure Python/numpy: synthetic Wikipedia-style data,
an in-process BM25 search engine, rule-based open information extraction,
the paper's partition-based triple-set construction (Algorithm 1), a
from-scratch transformer encoder, the max-matching single retriever, the
triple-fact question updater, the multi-hop pipeline with path ranking,
and every baseline the paper compares against.

Quickstart::

    from repro.core import TripleFactRetrieval
    from repro.data import World, build_corpus, build_hotpot_dataset

    world = World()
    corpus = build_corpus(world)
    dataset = build_hotpot_dataset(world, corpus)
    system = TripleFactRetrieval().fit(corpus, dataset)
    for path in system.retrieve_paths(dataset.test[0].text, k=3):
        print(path.explain())
"""

__version__ = "1.0.0"

from repro import core, data, index, oie, triples, nn, encoder, retriever
from repro import updater, pipeline, baselines, eval, text

__all__ = [
    "core",
    "data",
    "index",
    "oie",
    "triples",
    "nn",
    "encoder",
    "retriever",
    "updater",
    "pipeline",
    "baselines",
    "eval",
    "text",
    "__version__",
]
