"""Ablation B — HAC O(m^3) vs partition-based Algorithm 1 O(m^2).

The paper's complexity claim, measured: wall-clock of both constructions
over growing union sets. Shape: HAC's empirical log-log growth exponent
exceeds the partition method's, and HAC is slower in absolute terms at
the largest size.
"""

from repro.eval.experiments import loglog_slope, run_ablation_hac
from repro.eval.tables import format_table
from repro.triples.construct import ConstructionConfig, TripleSetConstructor
from repro.eval.experiments import _synthetic_triples


def test_ablation_hac_vs_partition(benchmark):
    timings = benchmark.pedantic(
        lambda: run_ablation_hac(sizes=(16, 32, 64, 128)),
        rounds=1,
        iterations=1,
    )
    hac_points = timings["hac"]
    partition_points = timings["partition"]
    rows = [
        [m, f"{hac_time * 1000:.1f}ms", f"{part_time * 1000:.1f}ms"]
        for (m, hac_time), (_, part_time) in zip(hac_points, partition_points)
    ]
    hac_slope = loglog_slope(hac_points[1:])
    partition_slope = loglog_slope(partition_points[1:])
    print()
    print(
        format_table(
            ["m", "HAC", "partition (Alg.1)"],
            rows,
            title="Ablation — construction wall-clock vs union size",
        )
    )
    print(
        f"empirical exponents: HAC {hac_slope:.2f} vs "
        f"partition {partition_slope:.2f}"
    )
    # HAC grows strictly faster and is slower at the largest size
    assert hac_slope > partition_slope
    assert hac_points[-1][1] > partition_points[-1][1]
    # HAC superquadratic-ish, partition subcubic
    assert hac_slope > 2.0
    assert partition_slope < 2.7


def test_partition_construction_throughput(benchmark):
    """pytest-benchmark timing of Algorithm 1 on a fixed 64-triple set."""
    triples = _synthetic_triples(64)
    constructor = TripleSetConstructor(ConstructionConfig(threshold_size=8))
    result = benchmark(lambda: constructor.construct(triples))
    assert len(result.triples) <= 8
