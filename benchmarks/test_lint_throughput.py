"""Micro-benchmark: the static analyzer must stay fast enough to gate.

``tests/test_lint_clean.py`` runs the full rule catalog on every tier-1
invocation, so analyzer throughput is part of the suite's latency budget.
This benchmark lints the real ``src/`` tree (parse + all rules + the
suppression scanner), asserts a generous wall-clock ceiling, and writes
``BENCH_lint.json`` next to this file.

Marked ``perf``; tier-1 (`testpaths = tests`) never collects it.
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis import all_rule_ids, load_config, run_lint
from repro.storage.atomic import atomic_write_json

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[1]
OUT_PATH = Path(__file__).parent / "BENCH_lint.json"

# best-of-3 over ~90 files runs in well under a second on the CI box;
# the ceiling is ~6x headroom so only a real complexity regression
# (e.g. a rule going quadratic in file size) trips it
BUDGET_SECONDS = 5.0


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_lint_src_within_budget():
    config = load_config(REPO_ROOT)
    target = REPO_ROOT / "src"

    report = run_lint([target], config=config)
    assert report.files_scanned > 50

    best = _time(lambda: run_lint([target], config=config))
    payload = {
        "files_scanned": report.files_scanned,
        "findings": len(report.findings),
        "n_rules": len(all_rule_ids()),
        "seconds_best_of_3": best,
        "files_per_second": report.files_scanned / best,
        "budget_seconds": BUDGET_SECONDS,
    }
    atomic_write_json(OUT_PATH, payload, indent=2)
    print(
        f"\nlint throughput: {report.files_scanned} files in "
        f"{best * 1e3:.0f} ms ({payload['files_per_second']:.0f} files/s)"
    )
    assert best <= BUDGET_SECONDS, payload
    assert not report.findings, "src/ must lint clean (see tests/test_lint_clean.py)"
