"""The paper's primary contribution, re-exported as a stable public API.

Everything a downstream user needs to run Triple-Fact Retrieval:

* triple-set construction (Algorithm 1),
* the explainable single retriever with its score strategies,
* the triple-fact question updater,
* the full multi-hop retriever-updater pipeline with path ranking.
"""

from repro.oie.triple import Triple
from repro.oie.union import UnionExtractor, extract_union
from repro.triples.construct import ConstructionConfig, TripleSetConstructor
from repro.retriever.store import TripleStore, build_triple_store
from repro.retriever.strategies import MEAN, ONE_FACT, TOP_K, ScoreStrategy
from repro.retriever.single import RetrievedDocument, SingleRetriever
from repro.retriever.trainer import RetrieverTrainer, TrainerConfig
from repro.updater.updater import QuestionUpdater, UpdaterConfig, UpdaterTrainer
from repro.pipeline.multihop import DocumentPath, MultiHopConfig, MultiHopRetriever
from repro.pipeline.path_ranker import PathRanker, PathRankerConfig, PathRankerTrainer
from repro.pipeline.framework import FrameworkConfig, TripleFactRetrieval

__all__ = [
    "Triple",
    "UnionExtractor",
    "extract_union",
    "ConstructionConfig",
    "TripleSetConstructor",
    "TripleStore",
    "build_triple_store",
    "ONE_FACT",
    "TOP_K",
    "MEAN",
    "ScoreStrategy",
    "RetrievedDocument",
    "SingleRetriever",
    "RetrieverTrainer",
    "TrainerConfig",
    "QuestionUpdater",
    "UpdaterConfig",
    "UpdaterTrainer",
    "DocumentPath",
    "MultiHopConfig",
    "MultiHopRetriever",
    "PathRanker",
    "PathRankerConfig",
    "PathRankerTrainer",
    "FrameworkConfig",
    "TripleFactRetrieval",
]
