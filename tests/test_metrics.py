"""Unit tests for evaluation metrics."""

import pytest

from repro.eval.metrics import (
    RetrievalScorecard,
    paragraph_exact_match,
    paragraph_recall,
    path_exact_match,
)


class TestParagraphRecall:
    def test_hit(self):
        assert paragraph_recall(["a", "b"], ["b", "z"])

    def test_miss(self):
        assert not paragraph_recall(["a", "b"], ["z"])

    def test_empty_retrieved(self):
        assert not paragraph_recall([], ["a"])


class TestParagraphExactMatch:
    def test_all_found(self):
        assert paragraph_exact_match(["a", "b", "c"], ["a", "c"])

    def test_partial_is_miss(self):
        assert not paragraph_exact_match(["a"], ["a", "b"])

    def test_empty_gold_trivially_true(self):
        assert paragraph_exact_match(["a"], [])


class TestPathExactMatch:
    def test_covering_path(self):
        assert path_exact_match([("a", "b"), ("c", "d")], ["c", "d"])

    def test_reversed_order_counts(self):
        assert path_exact_match([("b", "a")], ["a", "b"])

    def test_split_across_paths_is_miss(self):
        assert not path_exact_match([("a", "x"), ("y", "b")], ["a", "b"])

    def test_no_paths(self):
        assert not path_exact_match([], ["a"])


class TestScorecard:
    def test_rates(self):
        card = RetrievalScorecard()
        card.add("bridge", True)
        card.add("bridge", False)
        card.add("comparison", True)
        assert card.rate("bridge") == 0.5
        assert card.rate("comparison") == 1.0
        assert card.total == pytest.approx(2 / 3)

    def test_empty(self):
        card = RetrievalScorecard()
        assert card.rate("bridge") == 0.0
        assert card.total == 0.0

    def test_as_row(self):
        card = RetrievalScorecard()
        card.add("bridge", True)
        row = card.as_row()
        assert row["bridge"] == 1.0 and row["total"] == 1.0

    def test_count(self):
        card = RetrievalScorecard()
        card.add("bridge", True)
        card.add("bridge", True)
        assert card.count("bridge") == 2
        assert card.count("comparison") == 0
