"""Analysis pipeline: raw text -> index terms.

Mirrors a standard Lucene/Elasticsearch analyzer chain: tokenize,
lower-case, drop stopwords and punctuation, stem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.text.stem import stem
from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import tokenize


@dataclass(frozen=True)
class Analyzer:
    """Configurable text -> terms pipeline.

    Parameters
    ----------
    use_stemming:
        Apply the Porter-style stemmer to each term.
    remove_stopwords:
        Drop stopwords and bare punctuation tokens.
    """

    use_stemming: bool = True
    remove_stopwords: bool = True

    def analyze(self, text: str) -> List[str]:
        """Convert raw ``text`` into a list of index terms."""
        terms = tokenize(text)
        if self.remove_stopwords:
            terms = [t for t in terms if t not in STOPWORDS and t[:1].isalnum()]
        else:
            terms = [t for t in terms if t[:1].isalnum()]
        if self.use_stemming:
            terms = [stem(t) for t in terms]
        return terms
