"""Unit tests for attention and the transformer encoder."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.tensor import Tensor
from repro.nn.transformer import TransformerEncoder, TransformerEncoderLayer


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(dim=8, n_heads=2)
        out = attn(Tensor(np.random.randn(2, 5, 8)))
        assert out.shape == (2, 5, 8)

    def test_dim_head_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=7, n_heads=2)

    def test_padding_mask_blocks_information(self):
        # changing a masked position must not change unmasked outputs
        rng = np.random.RandomState(0)
        attn = MultiHeadSelfAttention(dim=8, n_heads=2, rng=rng)
        x = rng.randn(1, 4, 8)
        mask = np.array([[1.0, 1.0, 1.0, 0.0]])
        out1 = attn(Tensor(x), mask=mask).numpy()
        x2 = x.copy()
        x2[0, 3] += 100.0  # perturb the padded position
        out2 = attn(Tensor(x2), mask=mask).numpy()
        np.testing.assert_allclose(out1[0, :3], out2[0, :3], atol=1e-8)

    def test_gradients_flow_to_all_projections(self):
        attn = MultiHeadSelfAttention(dim=8, n_heads=2)
        out = attn(Tensor(np.random.randn(1, 3, 8))).sum()
        out.backward()
        for parameter in attn.parameters():
            assert parameter.grad is not None


class TestEncoderLayer:
    def test_residual_scale_near_identity(self):
        rng = np.random.RandomState(0)
        layer = TransformerEncoderLayer(8, 2, 16, rng=rng, residual_scale=0.0)
        x = np.random.randn(1, 4, 8)
        out = layer(Tensor(x)).numpy()
        np.testing.assert_allclose(out, x, atol=1e-8)

    def test_full_scale_changes_input(self):
        layer = TransformerEncoderLayer(8, 2, 16, residual_scale=1.0)
        x = np.random.randn(1, 4, 8)
        out = layer(Tensor(x)).numpy()
        assert not np.allclose(out, x)


class TestTransformerEncoder:
    def _encoder(self, **kw):
        defaults = dict(vocab_size=20, dim=16, n_layers=2, n_heads=2, max_len=10)
        defaults.update(kw)
        return TransformerEncoder(**defaults)

    def test_forward_shape(self):
        enc = self._encoder()
        out = enc(np.array([[2, 5, 6, 0], [2, 7, 0, 0]]))
        assert out.shape == (2, 4, 16)

    def test_encode_cls_shape(self):
        enc = self._encoder()
        out = enc.encode_cls(np.array([[2, 5, 6, 0]]))
        assert out.shape == (1, 16)

    def test_1d_input_promoted(self):
        enc = self._encoder()
        out = enc(np.array([2, 5, 6]))
        assert out.shape == (1, 3, 16)

    def test_too_long_rejected(self):
        enc = self._encoder(max_len=4)
        with pytest.raises(ValueError):
            enc(np.zeros((1, 5), dtype=int))

    def test_padding_invariance(self):
        # extra padding must not change the unpadded token states
        enc = self._encoder()
        short = enc(np.array([[2, 5, 6]])).numpy()
        padded = enc(np.array([[2, 5, 6, 0, 0]])).numpy()
        np.testing.assert_allclose(short[0], padded[0, :3], atol=1e-8)

    def test_deterministic_same_seed(self):
        a = self._encoder(seed=3)
        b = self._encoder(seed=3)
        ids = np.array([[2, 4, 6]])
        np.testing.assert_array_equal(a(ids).numpy(), b(ids).numpy())

    def test_all_parameters_trainable(self):
        enc = self._encoder(n_layers=1)
        out = enc(np.array([[2, 5, 6]])).sum()
        out.backward()
        missing = [
            name
            for name, parameter in enc.named_parameters()
            if parameter.grad is None
        ]
        assert missing == []
