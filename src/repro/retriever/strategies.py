"""Score-calculation strategies (paper Sec. III-B and Table IV).

Given the cosine scores of a question against one document's triple facts:

* ``one_fact`` — Eq. 2: the maximum ("One Fact" hypothesis),
* ``top_k`` — Eq. 6: the mean of the k best,
* ``mean`` — Eq. 7: the mean over all (simulating full-text compression).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.precision import ACCUM_DTYPE

ONE_FACT = "one_fact"
TOP_K = "top_k"
MEAN = "mean"


@dataclass(frozen=True)
class ScoreStrategy:
    """A named strategy with its parameter (k for top-k)."""

    name: str = ONE_FACT
    k: int = 2

    def aggregate(self, scores: np.ndarray) -> float:
        """Collapse per-triple scores into one document score."""
        if scores.size == 0:
            return -1.0  # cosine lower bound: a document with no triples
        if self.name == ONE_FACT:
            return float(scores.max())
        if self.name == TOP_K:
            k = min(self.k, scores.size)
            top = np.partition(scores, -k)[-k:]
            return float(top.mean())
        if self.name == MEAN:
            return float(scores.mean())
        raise ValueError(f"unknown strategy {self.name!r}")

    def matched_index(self, scores: np.ndarray) -> int:
        """Index of the explaining triple (argmax) — the paper's
        explainability hook; -1 when the document has no triples."""
        if scores.size == 0:
            return -1
        return int(scores.argmax())


EMPTY_SCORE = -1.0  # cosine lower bound assigned to triple-less documents


def segment_lengths(offsets: np.ndarray, total: int) -> np.ndarray:
    """Per-segment lengths for segment starts ``offsets`` over ``total``
    flat elements (the last segment runs to ``total``)."""
    offsets = np.asarray(offsets, dtype=np.int64)
    return np.diff(np.concatenate([offsets, [total]]))


def aggregate_segments(
    scores: np.ndarray, offsets: np.ndarray, strategy: "ScoreStrategy"
) -> tuple:
    """Vectorized :meth:`ScoreStrategy.aggregate` over contiguous segments.

    ``scores`` is the flat per-triple score vector of *all* documents and
    ``offsets`` the start index of each document's segment (non-decreasing;
    equal consecutive starts denote an empty document). Returns
    ``(aggregated, matched)`` where ``aggregated[d]`` equals
    ``strategy.aggregate(scores[start_d:stop_d])`` and ``matched[d]`` is the
    segment-local argmax (the explaining triple), with ``EMPTY_SCORE`` / -1
    for empty segments — bitwise the same contract as the scalar methods.

    Built on ``np.maximum.reduceat`` / ``np.add.reduceat``: one ufunc pass
    per corpus instead of one Python iteration per document.
    """
    # scores accumulate in float64 regardless of the store dtype: every
    # float32 is exactly representable, so reductions stay bitwise stable
    scores = np.asarray(scores, dtype=ACCUM_DTYPE)
    offsets = np.asarray(offsets, dtype=np.int64)
    n_segments = offsets.shape[0]
    aggregated = np.full(n_segments, EMPTY_SCORE, dtype=ACCUM_DTYPE)
    matched = np.full(n_segments, -1, dtype=np.int64)
    if n_segments == 0:
        return aggregated, matched
    lengths = segment_lengths(offsets, scores.shape[0])
    nonempty = lengths > 0
    if not nonempty.any():
        return aggregated, matched
    # reduceat over the non-empty starts only: consecutive non-empty starts
    # bracket exactly one document's triples (empty segments contribute no
    # elements), which sidesteps reduceat's surprising repeated-index rule.
    ne_starts = offsets[nonempty]
    maxes = np.maximum.reduceat(scores, ne_starts)
    # segment-local argmax = first flat position attaining the segment max
    seg_max_flat = np.repeat(maxes, lengths[nonempty])
    flat_pos = np.arange(scores.shape[0], dtype=np.int64)
    hit_pos = np.where(scores == seg_max_flat, flat_pos, scores.shape[0])
    first_hit = np.minimum.reduceat(hit_pos, ne_starts)
    matched[nonempty] = first_hit - ne_starts
    if strategy.name == ONE_FACT:
        aggregated[nonempty] = maxes
    elif strategy.name == MEAN:
        sums = np.add.reduceat(scores, ne_starts)
        aggregated[nonempty] = sums / lengths[nonempty]
    elif strategy.name == TOP_K:
        # sort each segment descending in one lexsort (segments stay
        # contiguous), mask everything past rank k, then segment-sum
        seg_ids = np.repeat(np.arange(n_segments), lengths)
        order = np.lexsort((-scores, seg_ids))
        ranked = scores[order]
        rank_in_segment = flat_pos - np.repeat(offsets, lengths)
        kept = np.where(rank_in_segment < strategy.k, ranked, 0.0)
        sums = np.add.reduceat(kept, ne_starts)
        aggregated[nonempty] = sums / np.minimum(
            lengths[nonempty], strategy.k
        )
    else:
        raise ValueError(f"unknown strategy {strategy.name!r}")
    return aggregated, matched


def l2_normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-L2-normalized copy; zero rows stay zero.

    The one normalization helper cosine-score matmuls must route through
    (enforced by the ``unnormalized-matmul`` lint rule): dividing by
    ``max(norm, tiny)`` keeps zero rows at exactly zero without branching.

    Dtype-preserving: a float32 matrix normalizes in float32 (the
    precision policy decides the dtype upstream, at the encoder/store
    boundary); non-float inputs are promoted to the accumulator dtype.
    """
    matrix = np.asarray(matrix)
    if not np.issubdtype(matrix.dtype, np.floating):
        matrix = matrix.astype(ACCUM_DTYPE)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    np.maximum(norms, np.finfo(matrix.dtype).tiny, out=norms)
    return matrix / norms


def l2_normalize_vec(vec: np.ndarray) -> np.ndarray:
    """L2-normalized copy of one vector; the zero vector stays zero."""
    vec = np.asarray(vec)
    if not np.issubdtype(vec.dtype, np.floating):
        vec = vec.astype(ACCUM_DTYPE)
    norm = float(np.linalg.norm(vec))
    if norm == 0.0:
        return vec.copy()
    return vec / norm


def cosine_matrix(query_vec: np.ndarray, triple_matrix: np.ndarray,
                  eps: float = 1e-8) -> np.ndarray:
    """Cosine of one query vector against rows of ``triple_matrix``."""
    if triple_matrix.size == 0:
        return np.zeros(0)
    q_norm = np.linalg.norm(query_vec) + eps
    t_norms = np.linalg.norm(triple_matrix, axis=1) + eps
    return (triple_matrix @ query_vec) / (t_norms * q_norm)


def score_documents(
    query_vec: np.ndarray,
    doc_triple_matrices: Dict[int, np.ndarray],
    strategy: ScoreStrategy,
) -> Dict[int, float]:
    """Score every document by its aggregated triple-fact similarity."""
    return {
        doc_id: strategy.aggregate(cosine_matrix(query_vec, matrix))
        for doc_id, matrix in doc_triple_matrices.items()
    }
