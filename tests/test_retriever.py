"""Unit tests for the single retriever: store, strategies, retrieval,
negative mining and training plumbing."""

import numpy as np
import pytest

from repro.retriever.negatives import (
    build_triple_field_index,
    mine_training_examples,
)
from repro.retriever.single import SingleRetriever
from repro.retriever.store import TripleStore, build_triple_store
from repro.retriever.strategies import (
    MEAN,
    ONE_FACT,
    TOP_K,
    ScoreStrategy,
    cosine_matrix,
    score_documents,
)
from repro.retriever.trainer import RetrieverTrainer, TrainerConfig


class TestTripleStore:
    def test_every_document_has_triples(self, store, corpus):
        for document in corpus:
            assert store.triples(document.doc_id), document.title

    def test_respects_threshold(self, store):
        for doc_id in store.doc_ids():
            assert len(store.triples(doc_id)) <= 40

    def test_flattened_matches_triples(self, store):
        doc_id = store.doc_ids()[0]
        assert len(store.flattened(doc_id)) == len(store.triples(doc_id))

    def test_field_text_joins_triples(self, store):
        doc_id = store.doc_ids()[0]
        text = store.field_text(doc_id)
        for flattened in store.flattened(doc_id):
            assert flattened in text

    def test_unknown_doc_empty(self, store):
        assert store.triples(10_000) == []

    def test_title_subject_dominates(self, store, corpus):
        # noise pruning keeps title-entity triples
        document = next(d for d in corpus if d.entity.kind == "person")
        triples = store.triples(document.doc_id)
        title_triples = [t for t in triples if document.title in t.subject]
        assert len(title_triples) >= len(triples) / 2


class TestStrategies:
    SCORES = np.array([0.1, 0.9, 0.5])

    def test_one_fact_is_max(self):
        assert ScoreStrategy(ONE_FACT).aggregate(self.SCORES) == 0.9

    def test_top_k_mean(self):
        assert ScoreStrategy(TOP_K, k=2).aggregate(self.SCORES) == pytest.approx(0.7)

    def test_top_k_larger_than_size(self):
        assert ScoreStrategy(TOP_K, k=10).aggregate(self.SCORES) == pytest.approx(
            self.SCORES.mean()
        )

    def test_mean(self):
        assert ScoreStrategy(MEAN).aggregate(self.SCORES) == pytest.approx(0.5)

    def test_empty_scores(self):
        assert ScoreStrategy(ONE_FACT).aggregate(np.zeros(0)) == -1.0
        assert ScoreStrategy(ONE_FACT).matched_index(np.zeros(0)) == -1

    def test_matched_index(self):
        assert ScoreStrategy(ONE_FACT).matched_index(self.SCORES) == 1

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            ScoreStrategy("bogus").aggregate(self.SCORES)

    def test_cosine_matrix(self):
        query = np.array([1.0, 0.0])
        matrix = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0]])
        np.testing.assert_allclose(
            cosine_matrix(query, matrix), [1.0, 0.0, -1.0], atol=1e-6
        )

    def test_score_documents(self):
        query = np.array([1.0, 0.0])
        docs = {0: np.array([[1.0, 0.0]]), 1: np.array([[0.0, 1.0]])}
        scores = score_documents(query, docs, ScoreStrategy(ONE_FACT))
        assert scores[0] > scores[1]


class TestSingleRetriever:
    def test_retrieve_returns_k(self, retriever):
        results = retriever.retrieve("football club founded", k=5)
        assert len(results) == 5

    def test_scores_sorted(self, retriever):
        results = retriever.retrieve("the band was formed", k=10)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_matched_triple_is_explanation(self, retriever, corpus):
        document = next(d for d in corpus if d.entity.kind == "club")
        results = retriever.retrieve(
            f"when was {document.title} founded", k=3
        )
        top = results[0]
        assert top.matched_triple is not None
        assert "matched triple" in top.explain()

    def test_title_match_ranks_high(self, retriever, corpus):
        document = corpus[0]
        results = retriever.retrieve(document.title, k=5)
        assert document.title in [r.title for r in results]

    def test_candidate_restriction(self, retriever):
        results = retriever.retrieve("anything", k=10, candidate_ids=[0, 1, 2])
        assert {r.doc_id for r in results} <= {0, 1, 2}

    def test_keep_triple_scores(self, retriever):
        results = retriever.retrieve("club", k=2, keep_triple_scores=True)
        assert results[0].triple_scores is not None

    def test_retrieve_by_vector_matches_retrieve(self, retriever):
        question = "when was the club founded"
        by_text = retriever.retrieve(question, k=5)
        by_vector = retriever.retrieve_by_vector(
            retriever.encode_question(question), k=5
        )
        assert [r.doc_id for r in by_text] == [r.doc_id for r in by_vector]


class TestNegativeMining:
    def test_examples_have_9_negatives(self, hotpot, corpus, store):
        examples = mine_training_examples(hotpot.train[:20], corpus, store)
        assert examples
        for example in examples:
            assert len(example.negative_doc_ids) <= 9
            assert example.positive_doc_id not in example.negative_doc_ids

    def test_positive_is_gold(self, hotpot, corpus, store):
        examples = mine_training_examples(hotpot.train[:20], corpus, store)
        by_qid = {q.qid: q for q in hotpot.train}
        for example in examples:
            question = by_qid[example.qid]
            gold_ids = {
                corpus.by_title(t).doc_id for t in question.gold_titles
            }
            assert example.positive_doc_id in gold_ids

    def test_negatives_exclude_all_golds(self, hotpot, corpus, store):
        examples = mine_training_examples(hotpot.train[:20], corpus, store)
        by_qid = {q.qid: q for q in hotpot.train}
        for example in examples:
            question = by_qid[example.qid]
            gold_ids = {
                corpus.by_title(t).doc_id for t in question.gold_titles
            }
            assert not gold_ids & set(example.negative_doc_ids)

    def test_index_reuse(self, hotpot, corpus, store):
        index = build_triple_field_index(store)
        examples = mine_training_examples(
            hotpot.train[:5], corpus, store, index=index
        )
        assert examples


class TestRetrieverTraining:
    def test_one_epoch_runs_and_improves_loss(self, retriever, hotpot, corpus, store):
        examples = mine_training_examples(hotpot.train[:12], corpus, store)
        trainer = RetrieverTrainer(
            retriever, TrainerConfig(epochs=2, lr=1e-3)
        )
        losses = trainer.train(examples)
        assert len(losses) == 2
        assert losses[1] <= losses[0] * 1.2  # allow noise, forbid blow-up

    def test_bce_mode_runs(self, retriever, hotpot, corpus, store):
        examples = mine_training_examples(hotpot.train[:4], corpus, store)
        trainer = RetrieverTrainer(
            retriever, TrainerConfig(epochs=1, lr=1e-4, loss="bce")
        )
        losses = trainer.train(examples)
        assert len(losses) == 1 and np.isfinite(losses[0])

    def test_triple_selection_cap(self, retriever, hotpot):
        trainer = RetrieverTrainer(
            retriever, TrainerConfig(max_triples_per_doc=2)
        )
        doc_id = retriever.store.doc_ids()[0]
        selected = trainer._select_triples("any question", doc_id)
        assert len(selected) <= 2
