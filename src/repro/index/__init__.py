"""In-process inverted-index search engine (Elasticsearch stand-in).

The paper indexes 5M Wikipedia documents and their triple-fact sets with
Elasticsearch 7.13 and uses BM25 scoring. This subpackage provides the same
capability in-process: multi-field inverted indexes, BM25 and TF-IDF
scorers, and an entity index used for entity linking.
"""

from repro.index.analyzer import Analyzer
from repro.index.postings import Field, Posting
from repro.index.inverted import InvertedIndex, SearchHit
from repro.index.bm25 import BM25Scorer
from repro.index.tfidf import TfidfScorer
from repro.index.entity_index import EntityIndex

__all__ = [
    "Analyzer",
    "Field",
    "Posting",
    "InvertedIndex",
    "SearchHit",
    "BM25Scorer",
    "TfidfScorer",
    "EntityIndex",
]
