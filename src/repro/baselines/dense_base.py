"""Shared dense bi-encoder machinery for the learned baselines.

TPRR, MDR and HopRetriever all encode *full document text* into a single
vector (the design the paper contrasts with triple-level matching). This
module provides the common pieces: a document-embedding matrix, MIPS-style
scoring, and listwise fine-tuning on the same mined (1 positive + 9
negative) examples the triple retriever trains on — so the comparison
isolates the representation, not the training recipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.corpus import Corpus
from repro.encoder.minibert import EncoderConfig, MiniBertEncoder
from repro.nn.losses import cosine_similarity
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.retriever.negatives import TrainingExample


@dataclass
class DenseConfig:
    """Dense-baseline training knobs."""

    epochs: int = 2
    lr: float = 3e-4
    logit_scale: float = 4.0
    max_doc_tokens: int = 46  # document text truncation before encoding
    clip_norm: float = 5.0
    seed: int = 31
    freeze_embeddings: bool = True


class DenseRetriever:
    """A full-text dense bi-encoder over a corpus.

    Subclasses override :meth:`document_text` to change what gets encoded
    (e.g. HopRetriever appends entity mentions).
    """

    def __init__(
        self,
        encoder: MiniBertEncoder,
        corpus: Corpus,
        config: Optional[DenseConfig] = None,
    ):
        self.encoder = encoder
        self.corpus = corpus
        self.config = config or DenseConfig()
        self._doc_matrix: Optional[np.ndarray] = None
        self._rng = np.random.RandomState(self.config.seed)

    # -- representation ----------------------------------------------------
    def document_text(self, doc_id: int) -> str:
        """The text encoded for one document (truncate to max length)."""
        text = self.corpus[doc_id].text
        tokens = text.split()
        return " ".join(tokens[: self.config.max_doc_tokens])

    def refresh_embeddings(self, batch_size: int = 128) -> None:
        """(Re-)encode every document into the MIPS matrix."""
        texts = [self.document_text(d.doc_id) for d in self.corpus]
        matrix = self.encoder.encode_numpy(texts, batch_size=batch_size)
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        self._doc_matrix = matrix / norms

    def _ensure_fresh(self) -> None:
        if self._doc_matrix is None:
            self.refresh_embeddings()

    # -- retrieval ----------------------------------------------------------
    def encode_query(self, query: str) -> np.ndarray:
        """Normalized query embedding."""
        vec = self.encoder.encode_numpy([query])[0]
        norm = np.linalg.norm(vec) or 1.0
        return vec / norm

    def retrieve(
        self, query: str, k: int = 10, exclude: Optional[Sequence[int]] = None
    ) -> List[Tuple[int, float]]:
        """Top-k (doc_id, cosine) via maximum inner-product search."""
        self._ensure_fresh()
        scores = self._doc_matrix @ self.encode_query(query)
        return self._top_k(scores, k, exclude)

    def retrieve_by_vector(
        self,
        query_vec: np.ndarray,
        k: int = 10,
        exclude: Optional[Sequence[int]] = None,
    ) -> List[Tuple[int, float]]:
        """MIPS with a precomputed (normalized) query vector."""
        self._ensure_fresh()
        scores = self._doc_matrix @ query_vec
        return self._top_k(scores, k, exclude)

    def _top_k(self, scores, k, exclude):
        excluded = set(exclude or ())
        order = np.argsort(-scores, kind="stable")
        out: List[Tuple[int, float]] = []
        for index in order:
            doc_id = int(index)
            if doc_id in excluded:
                continue
            out.append((doc_id, float(scores[index])))
            if len(out) == k:
                break
        return out

    def retrieve_titles(self, query: str, k: int = 10) -> List[str]:
        return [self.corpus[d].title for d, _ in self.retrieve(query, k=k)]

    # -- training -----------------------------------------------------------
    def train(
        self, examples: Sequence[TrainingExample], verbose: bool = False
    ) -> List[float]:
        """Listwise fine-tuning on mined 1-pos + 9-neg examples."""
        cfg = self.config
        model = self.encoder.model
        model.train()
        parameters = model.parameters()
        if cfg.freeze_embeddings:
            frozen = {
                id(model.token_embedding.weight),
                id(model.position_embedding.weight),
            }
            parameters = [p for p in parameters if id(p) not in frozen]
        optimizer = Adam(parameters, lr=cfg.lr)
        losses: List[float] = []
        examples = list(examples)
        for epoch in range(cfg.epochs):
            order = self._rng.permutation(len(examples))
            epoch_losses = []
            for i in order:
                example = examples[i]
                doc_ids = [example.positive_doc_id] + list(example.negative_doc_ids)
                texts = [example.question] + [
                    self.document_text(d) for d in doc_ids
                ]
                embeddings = self.encoder.encode(texts)
                scores = cosine_similarity(embeddings[0], embeddings[1:])
                logits = scores * cfg.logit_scale
                loss = -logits.softmax(axis=-1).log()[0]
                model.zero_grad()
                loss.backward()
                optimizer.clip_grad_norm(cfg.clip_norm)
                optimizer.step()
                epoch_losses.append(loss.item())
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
            losses.append(mean_loss)
            if verbose:  # pragma: no cover
                print(f"[dense] epoch {epoch + 1}/{cfg.epochs} loss={mean_loss:.4f}")
        model.eval()
        self.refresh_embeddings()
        return losses
