"""Multi-head self-attention (Vaswani et al.), batched.

Input: (batch, seq, dim) plus an attention mask (batch, seq) of 1/0.
Padding positions receive a large negative additive bias before softmax.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.precision import TRAINING_DTYPE, mask_bias_value

from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor


def padding_bias(mask: np.ndarray, dtype=TRAINING_DTYPE) -> np.ndarray:
    """Additive attention bias (B, 1, 1, S) from a 1/0 mask (B, S).

    Attended positions get 0, padded positions a dtype-scaled large
    negative (see :func:`repro.precision.mask_bias_value`) that exp
    underflows to exactly zero after the softmax shift. Computed once
    per batch — the stack reuses one bias across every layer and head.
    """
    inverted = 1.0 - np.asarray(mask, dtype=dtype)
    return (inverted * mask_bias_value(dtype))[:, None, None, :]


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product multi-head self-attention."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        rng: Optional[np.random.RandomState] = None,
        dropout: float = 0.0,
    ):
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        rng = rng or np.random.RandomState(0)
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.output = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, S, D) -> (B, H, S, Dh)
        return x.reshape(batch, seq, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
    ) -> Tensor:
        """``bias`` is the precomputed (B, 1, 1, S) additive padding bias;
        when omitted it is derived from ``mask`` (B, S, 1 = attend) here,
        so standalone use keeps working while the encoder stack passes
        one shared bias down to every layer."""
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq)
        k = self._split_heads(self.key(x), batch, seq)
        v = self._split_heads(self.value(x), batch, seq)
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if bias is None and mask is not None:
            bias = padding_bias(mask)
        if bias is not None:
            scores = scores + Tensor(bias)
        attn = scores.softmax(axis=-1)
        attn = self.dropout(attn)
        context = attn @ v  # (B, H, S, Dh)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.output(merged)
