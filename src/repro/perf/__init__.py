"""Lightweight performance instrumentation for the retrieval hot path."""

from repro.perf.counters import (
    COUNTERS,
    LatencyReservoir,
    PerfCounters,
    percentile,
    time_block,
)

__all__ = [
    "COUNTERS",
    "LatencyReservoir",
    "PerfCounters",
    "percentile",
    "time_block",
]
