"""Reverse-mode automatic differentiation over numpy arrays.

A define-by-run engine in the style of micrograd/PyTorch: every operation
records its parents and a gradient function; :meth:`Tensor.backward` walks
the graph in reverse topological order accumulating gradients.

Supports everything the transformer encoder needs: broadcasting
element-wise arithmetic, matmul over batched operands, reductions (sum,
mean, max), softmax, layer-norm primitives (sqrt, pow), GELU (via erf),
slicing, reshaping and axis transposition.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.special import erf as _erf

from repro.precision import TRAINING_DTYPE

ArrayLike = Union[np.ndarray, float, int, list, tuple]


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value.astype(TRAINING_DTYPE, copy=False)
    return np.asarray(value, dtype=TRAINING_DTYPE)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # remove extra leading axes
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum over broadcast (size-1) axes
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an autograd tape.

    Only tensors created with ``requires_grad=True`` (parameters) and
    values computed from them accumulate gradients.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_grad_fns")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        grad_fns: Sequence[Callable[[np.ndarray], np.ndarray]] = (),
    ):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad or any(p.requires_grad for p in parents)
        self._parents = tuple(parents)
        self._grad_fns = tuple(grad_fns)

    # -- graph plumbing ------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        """The scalar value of a 0-d/1-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(
            self.data
        )

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (so scalars need no argument).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            visited.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in visited and parent.requires_grad:
                        visited.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    topo.append(current)
                    stack.pop()

        visit(self)
        grads = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.grad is None:
                node.grad = np.zeros_like(node.data)
            node.grad = node.grad + node_grad
            for parent, grad_fn in zip(node._parents, node._grad_fns):
                if not parent.requires_grad:
                    continue
                contribution = grad_fn(node_grad)
                existing = grads.get(id(parent))
                grads[id(parent)] = (
                    contribution if existing is None else existing + contribution
                )

    # -- arithmetic -----------------------------------------------------------
    def _coerce(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other):
        other = self._coerce(other)
        out_data = self.data + other.data
        return Tensor(
            out_data,
            parents=(self, other),
            grad_fns=(
                lambda g: _unbroadcast(g, self.data.shape),
                lambda g: _unbroadcast(g, other.data.shape),
            ),
        )

    __radd__ = __add__

    def __neg__(self):
        return Tensor(-self.data, parents=(self,), grad_fns=(lambda g: -g,))

    def __sub__(self, other):
        other = self._coerce(other)
        return self + (-other)

    def __rsub__(self, other):
        return self._coerce(other) + (-self)

    def __mul__(self, other):
        other = self._coerce(other)
        out_data = self.data * other.data
        return Tensor(
            out_data,
            parents=(self, other),
            grad_fns=(
                lambda g: _unbroadcast(g * other.data, self.data.shape),
                lambda g: _unbroadcast(g * self.data, other.data.shape),
            ),
        )

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        return self * other.pow(-1.0)

    def __rtruediv__(self, other):
        return self._coerce(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        """Element-wise power with a scalar exponent."""
        out_data = np.power(self.data, exponent)
        base = self.data

        def grad_fn(g):
            return g * exponent * np.power(base, exponent - 1.0)

        return Tensor(out_data, parents=(self,), grad_fns=(grad_fn,))

    def __matmul__(self, other):
        other = self._coerce(other)
        # promote 1-D operands so the general gradient rule applies, then
        # squeeze the synthetic axis back out (reshape is autograd-tracked)
        if self.ndim == 1 and other.ndim == 1:
            out = self.reshape(1, -1)._matmul2(other.reshape(-1, 1))
            return out.reshape(())
        if self.ndim == 1:
            out = self.reshape(1, -1)._matmul2(other)
            return out.reshape(out.shape[:-2] + out.shape[-1:])
        if other.ndim == 1:
            out = self._matmul2(other.reshape(-1, 1))
            return out.reshape(out.shape[:-1])
        return self._matmul2(other)

    def _matmul2(self, other: "Tensor") -> "Tensor":
        out_data = self.data @ other.data

        def grad_left(g):
            result = g @ np.swapaxes(other.data, -1, -2)
            return _unbroadcast(result, self.data.shape)

        def grad_right(g):
            result = np.swapaxes(self.data, -1, -2) @ g
            return _unbroadcast(result, other.data.shape)

        return Tensor(out_data, parents=(self, other), grad_fns=(grad_left, grad_right))

    # -- unary math -------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        return Tensor(out_data, parents=(self,), grad_fns=(lambda g: g * out_data,))

    def log(self) -> "Tensor":
        return Tensor(
            np.log(self.data), parents=(self,), grad_fns=(lambda g: g / self.data,)
        )

    def sqrt(self) -> "Tensor":
        return self.pow(0.5)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        return Tensor(
            out_data, parents=(self,), grad_fns=(lambda g: g * (1.0 - out_data**2),)
        )

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor(
            self.data * mask, parents=(self,), grad_fns=(lambda g: g * mask,)
        )

    def gelu(self) -> "Tensor":
        """Exact GELU: x * Phi(x), using the error function."""
        x = self.data
        cdf = 0.5 * (1.0 + _erf(x / np.sqrt(2.0)))
        pdf = np.exp(-0.5 * x * x) / np.sqrt(2.0 * np.pi)
        out_data = x * cdf
        return Tensor(
            out_data, parents=(self,), grad_fns=(lambda g: g * (cdf + x * pdf),)
        )

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor(
            out_data,
            parents=(self,),
            grad_fns=(lambda g: g * out_data * (1.0 - out_data),),
        )

    # -- reductions -------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def grad_fn(g):
            if axis is None:
                return np.broadcast_to(g, shape).copy()
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g_expanded, shape).copy()

        return Tensor(out_data, parents=(self,), grad_fns=(grad_fn,))

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int = -1, keepdims: bool = False) -> "Tensor":
        """Maximum along one axis; gradient flows to the argmax elements."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        expanded = out_data if keepdims else np.expand_dims(out_data, axis)
        mask = (self.data == expanded).astype(TRAINING_DTYPE)
        # split gradient across ties for determinism
        mask /= mask.sum(axis=axis, keepdims=True)

        def grad_fn(g):
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return mask * g_expanded

        return Tensor(out_data, parents=(self,), grad_fns=(grad_fn,))

    def softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable softmax along ``axis``."""
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def grad_fn(g):
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            return out_data * (g - dot)

        return Tensor(out_data, parents=(self,), grad_fns=(grad_fn,))

    # -- shape ops ----------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        return Tensor(
            self.data.reshape(shape),
            parents=(self,),
            grad_fns=(lambda g: g.reshape(original),),
        )

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = tuple(np.argsort(axes))
        return Tensor(
            self.data.transpose(axes),
            parents=(self,),
            grad_fns=(lambda g: g.transpose(inverse),),
        )

    def swapaxes(self, a: int, b: int) -> "Tensor":
        return Tensor(
            np.swapaxes(self.data, a, b),
            parents=(self,),
            grad_fns=(lambda g: np.swapaxes(g, a, b),),
        )

    def __getitem__(self, key) -> "Tensor":
        shape = self.data.shape

        def grad_fn(g):
            out = np.zeros(shape)
            np.add.at(out, key, g)
            return out

        return Tensor(self.data[key], parents=(self,), grad_fns=(grad_fn,))

    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along ``axis``."""
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def make_grad_fn(start: int, stop: int):
            def grad_fn(g):
                slicer = [slice(None)] * g.ndim
                slicer[axis] = slice(start, stop)
                return g[tuple(slicer)]

            return grad_fn

        grad_fns = [
            make_grad_fn(int(offsets[i]), int(offsets[i + 1]))
            for i in range(len(tensors))
        ]
        return Tensor(data, parents=tuple(tensors), grad_fns=tuple(grad_fns))

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Stack same-shape tensors along a new axis."""
        data = np.stack([t.data for t in tensors], axis=axis)

        def make_grad_fn(index: int):
            def grad_fn(g):
                return np.take(g, index, axis=axis)

            return grad_fn

        return Tensor(
            data,
            parents=tuple(tensors),
            grad_fns=tuple(make_grad_fn(i) for i in range(len(tensors))),
        )
