"""Mother-child redundancy removal (paper Algorithm 1, line 8).

A pair ``(t_child, t_mother)`` is *mother-child* when the child's
information is covered by the mother: ``s(t_child) ⊂ s(t_mother)``
(Fig. 3: ``<S, is, an American>`` is a child of
``<S, is, American conscientious objector>``). The goal is a subset with no
mother-child pair that still covers every triple — a set-cover instance the
paper solves greedily: repeatedly take the triple covering the most
not-yet-covered triples.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.oie.triple import Triple
from repro.text.stem import stem
from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import tokenize


def _info_tokens(triple: Triple) -> frozenset:
    """The information content of a triple as a stemmed content-token set."""
    return frozenset(
        stem(t)
        for t in tokenize(triple.flatten())
        if t[:1].isalnum() and t not in STOPWORDS
    )


def covers(mother: Triple, child: Triple) -> bool:
    """True if ``mother`` covers ``child``: s(child) ⊆ s(mother), strictly.

    Both triples must share a subject (coverage is about the same fact,
    not accidental token containment across entities).
    """
    if mother is child:
        return False
    if mother.subject.lower() != child.subject.lower():
        return False
    child_info = _info_tokens(child)
    mother_info = _info_tokens(mother)
    return child_info < mother_info or (
        child_info == mother_info and len(child.flatten()) < len(mother.flatten())
    )


def find_mother_child_pairs(
    triples: Sequence[Triple],
) -> List[Tuple[int, int]]:
    """All (child_index, mother_index) pairs within ``triples``. O(n^2)."""
    info = [_info_tokens(t) for t in triples]
    subjects = [t.subject.lower() for t in triples]
    lengths = [len(t.flatten()) for t in triples]
    pairs: List[Tuple[int, int]] = []
    n = len(triples)
    for i in range(n):
        for j in range(n):
            if i == j or subjects[i] != subjects[j]:
                continue
            if info[i] < info[j] or (info[i] == info[j] and lengths[i] < lengths[j]):
                pairs.append((i, j))
    return pairs


def greedy_cover(triples: Sequence[Triple]) -> List[Triple]:
    """Greedy set cover: pick triples by descending coverage.

    Each triple covers itself plus all its children. Triples are selected
    greedily by how many uncovered triples they cover, until everything is
    covered; the selected set contains no mother-child pair (a child never
    covers anything its mother does not). Preserves input order among the
    survivors.
    """
    n = len(triples)
    if n <= 1:
        return list(triples)
    coverage: Dict[int, Set[int]] = {i: {i} for i in range(n)}
    for child, mother in find_mother_child_pairs(triples):
        coverage[mother].add(child)
    uncovered: Set[int] = set(range(n))
    chosen: List[int] = []
    while uncovered:
        # largest new coverage; ties broken by input order for determinism
        best = max(
            range(n),
            key=lambda i: (len(coverage[i] & uncovered), -i),
        )
        gain = coverage[best] & uncovered
        if not gain:  # pragma: no cover - cannot happen while uncovered
            break
        chosen.append(best)
        uncovered -= gain
    chosen_set = set(chosen)
    # drop any chosen triple that is a child of another chosen triple
    for child, mother in find_mother_child_pairs(triples):
        if child in chosen_set and mother in chosen_set:
            chosen_set.discard(child)
    return [triples[i] for i in sorted(chosen_set)]
