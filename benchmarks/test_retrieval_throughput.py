"""Micro-benchmark: per-document loop vs single-matmul retrieval.

Builds a synthetic 200-document corpus with a deterministic hashing
encoder (no transformer forward — the benchmark isolates the *scoring*
path, which is what the vectorized rewrite changed), then times the legacy
reference loop against `retrieve_by_vector` / `retrieve_batch` and writes
``BENCH_retrieval.json`` next to this file.

Marked ``perf``; tier-1 (`testpaths = tests`) never collects it, so the
suite stays fast.
"""

import json
import time
import zlib
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.data.corpus import Corpus, Document
from repro.data.world import Entity
from repro.oie.triple import Triple
from repro.perf import COUNTERS
from repro.retriever.single import SingleRetriever
from repro.retriever.store import TripleStore
from repro.retriever.strategies import ONE_FACT, ScoreStrategy
from repro.storage.atomic import atomic_write_json

pytestmark = pytest.mark.perf

N_DOCS = 200
TRIPLES_PER_DOC = 8
N_QUERIES = 50
DIM = 64
OUT_PATH = Path(__file__).parent / "BENCH_retrieval.json"


class HashingEncoder:
    """Deterministic random-projection stand-in for MiniBERT.

    Each distinct text maps to a fixed pseudo-random vector, so retrieval
    is reproducible and encoding costs nothing — the timings below measure
    scoring, not the transformer.
    """

    def __init__(self, dim: int = DIM):
        self.config = SimpleNamespace(dim=dim)

    def _vector(self, text: str) -> np.ndarray:
        seed = zlib.crc32(text.encode("utf-8"))
        return np.random.RandomState(seed).randn(self.config.dim)

    def encode_numpy(self, texts, batch_size: int = 64) -> np.ndarray:
        if not texts:
            return np.zeros((0, self.config.dim))
        return np.stack([self._vector(t) for t in texts])


@pytest.fixture(scope="module")
def synthetic_retriever():
    rng = np.random.RandomState(17)
    words = [f"tok{i}" for i in range(400)]
    documents = []
    store_rows = {}
    for doc_id in range(N_DOCS):
        title = f"Doc {doc_id}"
        triples = [
            Triple(
                subject=title,
                predicate=str(words[rng.randint(len(words))]),
                object=" ".join(
                    words[rng.randint(len(words))] for _ in range(3)
                ),
            )
            for _ in range(TRIPLES_PER_DOC)
        ]
        documents.append(
            Document(
                doc_id=doc_id,
                title=title,
                text=" ".join(t.flatten() for t in triples),
                entity=Entity(uid=doc_id, name=title, kind="synthetic"),
            )
        )
        store_rows[doc_id] = triples
    store = TripleStore(Corpus(documents))
    for doc_id, triples in store_rows.items():
        store.put(doc_id, triples)
    retriever = SingleRetriever(HashingEncoder(), store)
    retriever.refresh_embeddings()
    return retriever


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_speedup(synthetic_retriever):
    retriever = synthetic_retriever
    rng = np.random.RandomState(3)
    queries = rng.randn(N_QUERIES, DIM)
    strategy = ScoreStrategy(ONE_FACT)

    def run_legacy():
        for row in queries:
            retriever.retrieve_by_vector_legacy(row, k=10, strategy=strategy)

    def run_vectorized():
        for row in queries:
            retriever.retrieve_by_vector(row, k=10, strategy=strategy)

    def run_batched():
        retriever.retrieve_batch(queries, k=10, strategy=strategy)

    # sanity: same answers before timing
    sample = queries[0]
    fast = retriever.retrieve_by_vector(sample, k=10, strategy=strategy)
    slow = retriever.retrieve_by_vector_legacy(sample, k=10, strategy=strategy)
    assert [r.doc_id for r in fast] == [r.doc_id for r in slow]
    np.testing.assert_allclose(
        [r.score for r in fast], [r.score for r in slow], atol=1e-6
    )

    COUNTERS.reset()
    legacy_s = _time(run_legacy)
    vectorized_s = _time(run_vectorized)
    batched_s = _time(run_batched)
    speedup = legacy_s / vectorized_s
    batch_speedup = legacy_s / batched_s

    payload = {
        "n_docs": N_DOCS,
        "triples_per_doc": TRIPLES_PER_DOC,
        "n_queries": N_QUERIES,
        "dim": DIM,
        "legacy_seconds": legacy_s,
        "vectorized_seconds": vectorized_s,
        "batched_seconds": batched_s,
        "speedup_vectorized": speedup,
        "speedup_batched": batch_speedup,
        "queries_per_second_vectorized": N_QUERIES / vectorized_s,
        "queries_per_second_batched": N_QUERIES / batched_s,
        "counters": COUNTERS.snapshot(),
    }
    atomic_write_json(OUT_PATH, payload, indent=2)
    print(
        f"\nretrieval throughput: legacy {legacy_s * 1e3:.1f} ms, "
        f"vectorized {vectorized_s * 1e3:.1f} ms ({speedup:.1f}x), "
        f"batched {batched_s * 1e3:.1f} ms ({batch_speedup:.1f}x)"
    )
    # the acceptance bar: single-matmul scoring is at least 3x the loop
    assert speedup >= 3.0, payload
    assert batch_speedup >= speedup * 0.9, payload
