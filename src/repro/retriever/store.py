"""The triple store: constructed triple-fact sets for a whole corpus.

The offline stage of the paper's pipeline ("At the very beginning, we
extract a triple fact set for each document as the structure
representation") — runs the union extractor + Algorithm 1 over every
document and keeps the results addressable by document id.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.data.corpus import Corpus, Document
from repro.index.entity_index import EntityIndex
from repro.oie.triple import Triple
from repro.oie.union import UnionExtractor
from repro.storage.atomic import atomic_write_text
from repro.triples.construct import ConstructionConfig, TripleSetConstructor


class TripleStore:
    """Maps ``doc_id`` -> constructed triple fact set ``T_d``."""

    def __init__(self, corpus: Corpus):
        self.corpus = corpus
        self._triples: Dict[int, List[Triple]] = {}

    def put(self, doc_id: int, triples: Sequence[Triple]) -> None:
        self._triples[doc_id] = list(triples)

    def triples(self, doc_id: int) -> List[Triple]:
        """The triple set of a document (empty if nothing was extracted)."""
        return self._triples.get(doc_id, [])

    def flattened(self, doc_id: int) -> List[str]:
        """Sentence-flattened triples, ready for encoding/indexing."""
        return [t.flatten() for t in self.triples(doc_id)]

    def field_text(self, doc_id: int) -> str:
        """All flattened triples joined — the BM25 "triple fact field"."""
        return " . ".join(self.flattened(doc_id))

    def doc_ids(self) -> List[int]:
        return sorted(self._triples)

    def total_triples(self) -> int:
        return sum(len(v) for v in self._triples.values())

    def __len__(self) -> int:
        return len(self._triples)

    # -- persistence ------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Serialize all triple sets to a JSON file (written atomically).

        Serialization follows insertion order, so two stores built by
        putting the same triples in the same doc-id order save to
        byte-identical files — the property the ingest parity suite pins.
        """
        payload = {
            str(doc_id): [
                {
                    "s": t.subject,
                    "p": t.predicate,
                    "o": t.object,
                    "x": list(t.extra_objects),
                    "src": t.source,
                    "i": t.sentence_index,
                    "c": t.confidence,
                }
                for t in triples
            ]
            for doc_id, triples in self._triples.items()
        }
        atomic_write_text(Path(path), json.dumps(payload))

    @classmethod
    def load(cls, path: Union[str, Path], corpus: Corpus) -> "TripleStore":
        """Restore a store saved by :meth:`save` for the same corpus."""
        payload = json.loads(Path(path).read_text())
        store = cls(corpus)
        for doc_id, rows in payload.items():
            store.put(
                int(doc_id),
                [
                    Triple(
                        subject=row["s"],
                        predicate=row["p"],
                        object=row["o"],
                        extra_objects=tuple(row["x"]),
                        source=row["src"],
                        sentence_index=row["i"],
                        confidence=row["c"],
                    )
                    for row in rows
                ],
            )
        return store


def build_triple_store(
    corpus: Corpus,
    linker: Optional[EntityIndex] = None,
    config: Optional[ConstructionConfig] = None,
    extractor: Optional[UnionExtractor] = None,
    workers: int = 1,
) -> TripleStore:
    """Run extraction + Algorithm 1 over the whole corpus.

    When no ``linker`` is given, one is built from the corpus titles (the
    title dictionary is exactly the entity universe of a Wikipedia dump).
    ``workers > 1`` fans extraction out over a process pool; the result
    is byte-identical to the sequential build (deterministic merge in
    ascending doc-id order — see :mod:`repro.ingest.pipeline`).
    """
    from repro.ingest.pipeline import extract_corpus_triples

    if linker is None:
        linker = EntityIndex(corpus.titles())
        for document in corpus:
            linker.add_document(document.doc_id, document.text)
    triples_by_doc = extract_corpus_triples(
        corpus,
        linker=linker,
        config=config,
        extractor=extractor,
        workers=workers,
    )
    store = TripleStore(corpus)
    for doc_id, triples in triples_by_doc.items():
        store.put(doc_id, triples)
    return store
