"""Unit tests for the entity linker / entity index."""

from repro.index.entity_index import EntityIndex


class TestEntityLinking:
    def test_simple_mention(self):
        linker = EntityIndex(["Millwall Athletic", "Walter Davis"])
        found = linker.link("Walter Davis played for Millwall Athletic.")
        assert set(found) == {"Walter Davis", "Millwall Athletic"}

    def test_longest_match_wins(self):
        linker = EntityIndex(["Millwall", "Millwall Athletic"])
        found = linker.link("He joined Millwall Athletic in 1900.")
        assert found == ["Millwall Athletic"]

    def test_case_insensitive(self):
        linker = EntityIndex(["Millwall Athletic"])
        assert linker.link("MILLWALL ATHLETIC won") == ["Millwall Athletic"]

    def test_no_duplicates(self):
        linker = EntityIndex(["Millwall"])
        found = linker.link("Millwall beat Millwall reserves")
        assert found == ["Millwall"]

    def test_no_match(self):
        linker = EntityIndex(["Millwall"])
        assert linker.link("nothing to see here") == []


class TestEntityPostings:
    def test_document_registration(self):
        linker = EntityIndex(["Alpha", "Beta"])
        linker.add_document(0, "Alpha met Beta")
        linker.add_document(1, "only Alpha here")
        assert linker.entities_of(0) == ["Alpha", "Beta"]
        assert linker.documents_with("Alpha") == [0, 1]
        assert linker.documents_with("Beta") == [0]

    def test_unknown_document(self):
        linker = EntityIndex(["Alpha"])
        assert linker.entities_of(99) == []

    def test_contains_and_len(self):
        linker = EntityIndex(["Alpha", "Beta"])
        assert "Alpha" in linker and "Gamma" not in linker
        assert len(linker) == 2

    def test_corpus_entities(self, corpus, world):
        linker = EntityIndex(corpus.titles())
        doc = next(d for d in corpus if d.entity.kind == "person")
        entities = linker.add_document(doc.doc_id, doc.text)
        assert doc.title in entities
