"""Tests for ``repro.perf``: thread safety, percentiles, reservoir."""

import threading

import pytest

from repro.perf import LatencyReservoir, PerfCounters, percentile


class TestPerfCountersThreadSafety:
    N_THREADS = 8
    N_INCREMENTS = 2000

    def test_concurrent_increments_are_exact(self):
        counters = PerfCounters()
        barrier = threading.Barrier(self.N_THREADS)

        def hammer():
            barrier.wait()  # maximize interleaving
            for _ in range(self.N_INCREMENTS):
                counters.record_encode(3)
                counters.record_scoring(2, 5, 7, 0.001)

        threads = [
            threading.Thread(target=hammer) for _ in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = self.N_THREADS * self.N_INCREMENTS
        snap = counters.snapshot()
        assert snap["encode_calls"] == total
        assert snap["texts_encoded"] == 3 * total
        assert snap["matmul_calls"] == total
        assert snap["queries"] == 2 * total
        assert snap["docs_scored"] == 2 * 5 * total
        assert snap["triples_scored"] == 2 * 7 * total
        # float accumulation is the update a lockless counter drops
        assert snap["matmul_seconds"] == pytest.approx(0.001 * total)

    def test_reset_clears_every_field(self):
        counters = PerfCounters()
        counters.record_encode(4)
        counters.record_scoring(1, 2, 3, 0.5)
        counters.reset()
        assert all(not value for value in counters.snapshot().values())

    def test_summary_reflects_snapshot(self):
        counters = PerfCounters()
        counters.record_encode(10)
        text = counters.summary()
        assert "encode calls:    1 (10 texts)" in text


class TestPercentile:
    def test_empty_returns_zero(self):
        assert percentile([], 95.0) == 0.0

    def test_nearest_rank_known_values(self):
        samples = [float(v) for v in range(1, 101)]  # 1..100 sorted
        assert percentile(samples, 50.0) == 50.0
        assert percentile(samples, 95.0) == 95.0
        assert percentile(samples, 99.0) == 99.0
        assert percentile(samples, 100.0) == 100.0

    def test_extremes_and_single_sample(self):
        assert percentile([7.0], 50.0) == 7.0
        assert percentile([1.0, 2.0], 0.0) == 1.0
        assert percentile([1.0, 2.0], 100.0) == 2.0


class TestLatencyReservoir:
    def test_percentiles_over_window(self):
        reservoir = LatencyReservoir(capacity=256)
        for value in range(1, 101):
            reservoir.record(value / 1000.0)
        stats = reservoir.percentiles()
        assert stats["p50"] == pytest.approx(0.050)
        assert stats["p95"] == pytest.approx(0.095)
        assert stats["p99"] == pytest.approx(0.099)
        assert stats["max"] == pytest.approx(0.100)
        assert stats["mean"] == pytest.approx(0.0505)

    def test_ring_keeps_most_recent_when_full(self):
        reservoir = LatencyReservoir(capacity=10)
        for value in range(25):
            reservoir.record(float(value))
        assert len(reservoir) == 10
        assert reservoir.total_recorded == 25
        stats = reservoir.percentiles()
        # window holds some mix of recent values, never the earliest ones
        assert stats["max"] == 24.0
        assert stats["p50"] >= 10.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)

    def test_threaded_recording_keeps_exact_count(self):
        reservoir = LatencyReservoir(capacity=100)
        threads = [
            threading.Thread(
                target=lambda: [reservoir.record(0.001) for _ in range(500)]
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert reservoir.total_recorded == 2000
        assert len(reservoir) == 100
