"""Unit tests for repro.text.tokenize."""

from repro.text.tokenize import (
    content_tokens,
    jaccard,
    longest_common_subsequence,
    normalize,
    tokenize,
    word_shingles,
)


class TestNormalize:
    def test_lowercases(self):
        assert normalize("The Quick FOX") == "the quick fox"

    def test_collapses_whitespace(self):
        assert normalize("  a \t b\n c ") == "a b c"

    def test_empty(self):
        assert normalize("") == ""


class TestTokenize:
    def test_basic_sentence(self):
        assert tokenize("The club was founded.") == [
            "the", "club", "was", "founded", ".",
        ]

    def test_numbers_kept_whole(self):
        assert "1885" in tokenize("founded in 1885")

    def test_decimal_numbers(self):
        assert "2.91" in tokenize("a 2.91 earned run average")

    def test_clitic_split(self):
        assert tokenize("the club's ground") == ["the", "club", "'s", "ground"]

    def test_case_preserved_when_requested(self):
        assert "Millwall" in tokenize("Millwall won", lower=False)

    def test_punctuation_isolated(self):
        tokens = tokenize("wait, what?")
        assert "," in tokens and "?" in tokens

    def test_empty_string(self):
        assert tokenize("") == []


class TestContentTokens:
    def test_drops_punctuation(self):
        assert content_tokens("a, b. c!") == ["a", "b", "c"]


class TestWordShingles:
    def test_bigrams(self):
        assert word_shingles(["a", "b", "c"], n=2) == {("a", "b"), ("b", "c")}

    def test_short_input(self):
        assert word_shingles(["a"], n=2) == {("a",)}

    def test_empty_input(self):
        assert word_shingles([], n=2) == set()


class TestJaccard:
    def test_identical(self):
        assert jaccard(["a", "b"], ["b", "a"]) == 1.0

    def test_disjoint(self):
        assert jaccard(["a"], ["b"]) == 0.0

    def test_both_empty(self):
        assert jaccard([], []) == 1.0

    def test_partial(self):
        assert jaccard(["a", "b"], ["b", "c"]) == 1 / 3


class TestLCS:
    def test_simple(self):
        assert longest_common_subsequence(list("abcd"), list("bxd")) == ["b", "d"]

    def test_no_overlap(self):
        assert longest_common_subsequence(["a"], ["b"]) == []

    def test_empty(self):
        assert longest_common_subsequence([], ["a"]) == []

    def test_full_match(self):
        assert longest_common_subsequence(["x", "y"], ["x", "y"]) == ["x", "y"]

    def test_order_matters(self):
        assert longest_common_subsequence(["a", "b"], ["b", "a"]) in (
            ["a"], ["b"],
        )
