"""Training-data construction for the single retriever (paper Sec. IV-B).

"We choose a ground document with the highest score from the document path
by BM25 on the field of our triple fact set. For the negative document
construction, we index from the whole Wikipedia corpus and choose the top
9 documents except the ground documents. Each question is trained on a
10-size set of 1 positive document and 9 negative documents."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.data.corpus import Corpus
from repro.data.hotpot import HotpotQuestion
from repro.index.inverted import InvertedIndex
from repro.retriever.store import TripleStore

TRIPLE_FIELD = "triples"


@dataclass
class TrainingExample:
    """One (question, positive doc, negative docs) training instance."""

    question: str
    positive_doc_id: int
    negative_doc_ids: List[int]
    qid: int = -1


def build_triple_field_index(store: TripleStore) -> InvertedIndex:
    """A BM25 index over the flattened triple-fact field of every doc."""
    index = InvertedIndex()
    for doc_id in store.doc_ids():
        index.add_document(doc_id, {TRIPLE_FIELD: store.field_text(doc_id)})
    return index


def mine_training_examples(
    questions: Sequence[HotpotQuestion],
    corpus: Corpus,
    store: TripleStore,
    n_negatives: int = 9,
    index: Optional[InvertedIndex] = None,
) -> List[TrainingExample]:
    """Mine 1-positive + n-negative examples for every question.

    The positive is the gold-path document with the higher BM25 score on
    the triple field (ties -> first hop). Negatives are the BM25 top
    documents excluding all gold documents.
    """
    if index is None:
        index = build_triple_field_index(store)
    examples: List[TrainingExample] = []
    for question in questions:
        gold_ids = [
            corpus.by_title(title).doc_id
            for title in question.gold_titles
            if corpus.by_title(title) is not None
        ]
        if not gold_ids:
            continue
        hits = index.search(
            question.text, field=TRIPLE_FIELD, k=n_negatives + len(gold_ids) + 4
        )
        scores = {hit.doc_id: hit.score for hit in hits}
        positive = max(gold_ids, key=lambda d: scores.get(d, float("-inf")))
        negatives = [
            hit.doc_id for hit in hits if hit.doc_id not in gold_ids
        ][:n_negatives]
        if not negatives:
            continue
        examples.append(
            TrainingExample(
                question=question.text,
                positive_doc_id=positive,
                negative_doc_ids=negatives,
                qid=question.qid,
            )
        )
    return examples
