"""Build one encyclopedic document per world entity.

Each document opens with an introductory sentence naming the title entity,
then verbalizes the entity's facts using randomly chosen paraphrase
templates (with pronoun subjects, exercising the coreference resolver),
interleaved with distractor sentences. Entity mentions become hyperlinks.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.data import templates as T
from repro.data.corpus import Corpus, Document
from repro.data.world import Entity, Fact, World


def _intro_sentence(entity: Entity, world: World, rng: np.random.RandomState) -> str:
    variants = T.INTRO_TEMPLATES[entity.kind]
    template = variants[int(rng.randint(len(variants)))]
    extra = ""
    if entity.kind == "person":
        occupation = world.fact_of(entity, "occupation")
        birth_year = world.fact_of(entity, "birth_year")
        born_in = world.fact_of(entity, "born_in")
        noun = occupation.value_text if occupation else "public figure"
        parts = [noun]
        if born_in is not None:
            parts.append(f"from {born_in.value_text}")
        if birth_year is not None:
            parts.append(f"born in {birth_year.value_text}")
        extra = " ".join(parts)
    return template.format(name=entity.name, extra=extra)


def _fact_sentence(fact: Fact, rng: np.random.RandomState, pronoun: str) -> str:
    variants = T.SENTENCE_TEMPLATES[fact.relation]
    template = variants[int(rng.randint(len(variants)))]
    return template.format(pron=pronoun, s=fact.subject.name, o=fact.value_text)


def build_document(
    entity: Entity,
    world: World,
    doc_id: int,
    rng: np.random.RandomState,
    n_distractors: int = 4,
) -> Document:
    """Render ``entity`` into a :class:`Document`."""
    pronouns = T.KIND_PRONOUNS[entity.kind]
    pronoun = pronouns[int(rng.randint(len(pronouns)))]
    sentences: List[str] = [_intro_sentence(entity, world, rng)]
    facts: List[Fact] = []
    mentioned: List[str] = [entity.name]
    links: List[str] = []
    for fact in world.facts_of(entity):
        # the intro already covers occupation/birth_year for persons
        if entity.kind == "person" and fact.relation in ("occupation", "birth_year"):
            facts.append(fact)
            continue
        sentences.append(_fact_sentence(fact, rng, pronoun))
        facts.append(fact)
        value_entity = fact.value_entity
        if value_entity is not None:
            mentioned.append(value_entity.name)
            links.append(value_entity.name)
    cities = world.entities_of_kind("city")
    for _ in range(n_distractors):
        template = T.DISTRACTOR_TEMPLATES[
            int(rng.randint(len(T.DISTRACTOR_TEMPLATES)))
        ]
        city = cities[int(rng.randint(len(cities)))] if cities else None
        sentences.append(
            template.format(
                year=str(int(rng.randint(1850, 1995))),
                city=city.name if city is not None else "the region",
            )
        )
        if city is not None:
            mentioned.append(city.name)
    return Document(
        doc_id=doc_id,
        title=entity.name,
        text=" ".join(sentences),
        entity=entity,
        links=links,
        facts=facts,
        mentioned_entities=mentioned,
    )


def build_corpus(
    world: World,
    seed: Optional[int] = None,
    n_distractors: int = 4,
) -> Corpus:
    """Build the full corpus: one document per world entity.

    ``seed`` defaults to the world's own seed so a world maps to exactly one
    corpus unless the caller asks otherwise.
    """
    rng = np.random.RandomState(world.config.seed if seed is None else seed)
    documents = [
        build_document(entity, world, doc_id, rng, n_distractors=n_distractors)
        for doc_id, entity in enumerate(world.entities)
    ]
    return Corpus(documents)
