"""A Porter-style suffix stemmer.

A compact implementation of the first steps of the Porter algorithm — the
ones that matter for retrieval recall (plurals, -ing, -ed, -ly, common
nominalizations). Deterministic and dependency-free; used by the TF-IDF /
BM25 index and by the relatedness scorer.
"""

from __future__ import annotations

from typing import Iterable, List

_VOWELS = set("aeiou")


def _has_vowel(word: str) -> bool:
    return any(c in _VOWELS or c == "y" for c in word[:-1]) if word else False


def _measure(word: str) -> int:
    """Porter's m: the number of vowel-consonant sequences."""
    m = 0
    prev_vowel = False
    for i, c in enumerate(word):
        is_vowel = c in _VOWELS or (c == "y" and i > 0 and word[i - 1] not in _VOWELS)
        if prev_vowel and not is_vowel:
            m += 1
        prev_vowel = is_vowel
    return m


_STEP2 = [
    ("ational", "ate"),
    ("tional", "tion"),
    ("iveness", "ive"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("ization", "ize"),
    ("biliti", "ble"),
    ("entli", "ent"),
    ("ousli", "ous"),
    ("aliti", "al"),
    ("alli", "al"),
    ("izer", "ize"),
    ("ation", "ate"),
    ("ator", "ate"),
]

_STEP3 = [
    ("icate", "ic"),
    ("ative", ""),
    ("alize", "al"),
    ("iciti", "ic"),
    ("ical", "ic"),
    ("ness", ""),
    ("ful", ""),
]


def stem(word: str) -> str:
    """Stem one lower-case word.

    >>> stem("foundations")
    'foundat'
    >>> stem("played")
    'play'
    >>> stem("cities")
    'citi'
    """
    if len(word) <= 2 or not word.isalpha():
        return word

    # Step 1a: plurals
    if word.endswith("sses"):
        word = word[:-2]
    elif word.endswith("ies"):
        word = word[:-2]
    elif not word.endswith("ss") and word.endswith("s"):
        word = word[:-1]

    # Step 1b: -ed / -ing
    if word.endswith("eed"):
        if _measure(word[:-3]) > 0:
            word = word[:-1]
    elif word.endswith("ed") and _has_vowel(word[:-2]):
        word = word[:-2]
        word = _fixup(word)
    elif word.endswith("ing") and _has_vowel(word[:-3]):
        word = word[:-3]
        word = _fixup(word)

    # Step 1c: terminal y
    if word.endswith("y") and _has_vowel(word[:-1]):
        word = word[:-1] + "i"

    # Step 2 / 3: common derivational suffixes
    for suffix, replacement in _STEP2:
        if word.endswith(suffix) and _measure(word[: -len(suffix)]) > 0:
            word = word[: -len(suffix)] + replacement
            break
    for suffix, replacement in _STEP3:
        if word.endswith(suffix) and _measure(word[: -len(suffix)]) > 0:
            word = word[: -len(suffix)] + replacement
            break

    # Step 4: larger suffixes on long stems
    for suffix in ("ement", "ment", "ance", "ence", "able", "ible", "ant",
                   "ent", "ion", "ism", "ate", "iti", "ous", "ive", "ize"):
        if word.endswith(suffix) and _measure(word[: -len(suffix)]) > 1:
            if suffix == "ion" and word[-4:-3] not in ("s", "t"):
                continue
            word = word[: -len(suffix)]
            break
    return word


def _fixup(word: str) -> str:
    """Post -ed/-ing cleanup: restore e, undo doubling."""
    if word.endswith(("at", "bl", "iz")):
        return word + "e"
    if (
        len(word) >= 2
        and word[-1] == word[-2]
        and word[-1] not in ("l", "s", "z")
        and word[-1] not in _VOWELS
    ):
        return word[:-1]
    return word


def stem_tokens(tokens: Iterable[str]) -> List[str]:
    """Stem every token in a sequence."""
    return [stem(t) for t in tokens]
