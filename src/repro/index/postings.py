"""Postings storage for one index field."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List


@dataclass
class Posting:
    """One (document, term-frequency) entry in a postings list."""

    doc_id: int
    term_freq: int


class Field:
    """The inverted structure for one named field.

    Stores per-term postings lists, per-document lengths, and collection
    statistics needed by BM25 / TF-IDF (document count, average length,
    document frequencies).
    """

    def __init__(self, name: str):
        self.name = name
        self._postings: Dict[str, List[Posting]] = {}
        self._doc_lengths: Dict[int, int] = {}
        self._total_length = 0

    # -- writing -----------------------------------------------------------
    def add(self, doc_id: int, terms: Iterable[str]) -> None:
        """Index ``terms`` for ``doc_id``. A document may be added once."""
        if doc_id in self._doc_lengths:
            raise ValueError(f"doc {doc_id} already indexed in field {self.name!r}")
        counts: Dict[str, int] = {}
        length = 0
        for term in terms:
            counts[term] = counts.get(term, 0) + 1
            length += 1
        for term, freq in counts.items():
            self._postings.setdefault(term, []).append(Posting(doc_id, freq))
        self._doc_lengths[doc_id] = length
        self._total_length += length

    # -- statistics ----------------------------------------------------------
    @property
    def doc_count(self) -> int:
        return len(self._doc_lengths)

    @property
    def average_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return self._total_length / len(self._doc_lengths)

    def doc_length(self, doc_id: int) -> int:
        """Number of terms indexed for ``doc_id`` (0 if absent)."""
        return self._doc_lengths.get(doc_id, 0)

    def doc_freq(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, ()))

    def postings(self, term: str) -> List[Posting]:
        """The postings list for ``term`` (empty list if unseen)."""
        return self._postings.get(term, [])

    def vocabulary(self) -> List[str]:
        """All indexed terms."""
        return list(self._postings)
