"""Unit tests for stopword handling."""

from repro.text.stopwords import STOPWORDS, is_stopword, remove_stopwords


class TestStopwords:
    def test_common_words_present(self):
        for word in ("the", "a", "of", "was", "is"):
            assert is_stopword(word)

    def test_content_words_absent(self):
        for word in ("club", "founded", "millwall"):
            assert not is_stopword(word)

    def test_remove_stopwords_drops_punctuation(self):
        assert remove_stopwords(["the", "club", ",", "won"]) == ["club", "won"]

    def test_remove_stopwords_empty(self):
        assert remove_stopwords([]) == []

    def test_clitics_are_stopwords(self):
        assert is_stopword("'s")

    def test_frozen(self):
        assert isinstance(STOPWORDS, frozenset)
