"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, cmd_demo, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["build", "--out", "x"],
            ["query", "--model", "m", "question?"],
            ["eval", "--model", "m"],
            ["demo", "some text"],
            ["lint", "src"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(["build", "--out", "x"])
        assert args.persons == 70 and args.dim == 96


class TestDemo:
    def test_demo_runs(self, capsys):
        exit_code = main(
            ["demo", "Walter Davis was a footballer. He played for Millwall."]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "union extraction" in out
        assert "constructed T_d" in out
        assert "Walter Davis" in out


CLEAN_SOURCE = 'GREETING = "hello"\n'

# one seeded falsy-zero-default violation (the PR-1 bug class)
VIOLATING_SOURCE = "def pick(k=None):\n    k = k or 10\n    return k\n"


class TestLint:
    def _write(self, tmp_path, source):
        path = tmp_path / "mod.py"
        path.write_text(source, encoding="utf-8")
        return path

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, CLEAN_SOURCE)
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "clean: 0 findings" in out

    def test_seeded_violation_exits_one(self, tmp_path, capsys):
        path = self._write(tmp_path, VIOLATING_SOURCE)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "falsy-zero-default" in out
        assert "1 finding(s)" in out

    def test_json_format_schema(self, tmp_path, capsys):
        path = self._write(tmp_path, VIOLATING_SOURCE)
        assert main(["lint", "--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {"falsy-zero-default": 1}
        entry = payload["findings"][0]
        assert set(entry) == {"rule", "path", "line", "col", "message"}
        assert entry["rule"] == "falsy-zero-default"
        assert entry["line"] == 2

    def test_select_runs_only_named_rules(self, tmp_path, capsys):
        path = self._write(tmp_path, VIOLATING_SOURCE)
        assert main(["lint", "--select", "bare-except", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_ignore_drops_named_rules(self, tmp_path, capsys):
        path = self._write(tmp_path, VIOLATING_SOURCE)
        exit_code = main(
            ["lint", "--ignore", "falsy-zero-default", str(path)]
        )
        assert exit_code == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = self._write(tmp_path, CLEAN_SOURCE)
        assert main(["lint", "--select", "no-such-rule", str(path)]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) >= 8
        assert any(line.startswith("falsy-zero-default:") for line in out)

    def test_lint_parser_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == [] and args.format == "text"
