"""Streamed document generation: 100k+ seeded docs at O(1) memory.

:class:`~repro.data.world.World` materializes every entity and fact up
front — right for the few-hundred-document corpora the test suite uses,
hopeless at the corpus sizes the sharded retrieval layer targets. This
module generates the same *shape* of encyclopedic documents as a pure
function of ``(seed, doc_id)``: every document is derived from its own
:class:`numpy.random.RandomState` seeded by a mix of the stream seed and
the doc id, so

* :func:`document_at` is O(1) random access — document ``i`` of a
  100k-doc stream costs the same as document 0 and never touches the
  other 99,999;
* :func:`stream_documents` is a generator holding one document at a
  time — memory stays flat no matter how far the stream runs;
* two streams with equal configs yield byte-identical documents, the
  determinism the streamed-world tests pin.

Documents are person-centric with links into small shared pools of
cities and clubs (pool entities are themselves pure functions of the
config), so link structure and entity mentions survive the streaming
rewrite and triple extraction finds the same relation shapes the
materialized world produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.data.corpus import Document
from repro.data.world import (
    _CLUB_SUFFIXES,
    _FIRST_NAMES,
    _OCCUPATIONS,
    _PLACE_ROOTS,
    _PLACE_SUFFIXES,
    _SURNAMES,
    Entity,
    Fact,
)

#: uid offsets keeping pool entities disjoint from person uids (= doc id)
_CITY_UID_BASE = 1_000_000_000
_CLUB_UID_BASE = 2_000_000_000

#: seed mixing primes: doc streams with nearby seeds stay decorrelated
_SEED_MIX_A = 1_000_003
_SEED_MIX_B = 7919


@dataclass(frozen=True)
class StreamConfig:
    """Shape of one document stream (a pure value: hashable, comparable)."""

    n_docs: int = 100_000
    seed: int = 13
    n_cities: int = 64  # shared city pool size
    n_clubs: int = 48  # shared club pool size
    year_low: int = 1900
    year_high: int = 1999


def _doc_rng(config: StreamConfig, doc_id: int) -> np.random.RandomState:
    """The per-document RandomState — the whole O(1)-access trick."""
    mixed = (config.seed * _SEED_MIX_A + doc_id * _SEED_MIX_B) % (2**32 - 1)
    return np.random.RandomState(mixed)


def city_at(config: StreamConfig, index: int) -> Entity:
    """The ``index``-th shared-pool city (pure function of the config)."""
    index = int(index) % max(1, config.n_cities)
    rng = _doc_rng(config, _CITY_UID_BASE + index)
    root = _PLACE_ROOTS[rng.randint(len(_PLACE_ROOTS))]
    suffix = _PLACE_SUFFIXES[rng.randint(len(_PLACE_SUFFIXES))]
    name = f"{root}{suffix}".capitalize() + f" ({index})"
    return Entity(uid=_CITY_UID_BASE + index, name=name, kind="city")


def club_at(config: StreamConfig, index: int) -> Entity:
    """The ``index``-th shared-pool club (pure function of the config)."""
    index = int(index) % max(1, config.n_clubs)
    rng = _doc_rng(config, _CLUB_UID_BASE + index)
    root = _PLACE_ROOTS[rng.randint(len(_PLACE_ROOTS))]
    suffix = _CLUB_SUFFIXES[rng.randint(len(_CLUB_SUFFIXES))]
    name = f"{root.capitalize()} {suffix} ({index})"
    return Entity(uid=_CLUB_UID_BASE + index, name=name, kind="club")


def document_at(config: StreamConfig, doc_id: int) -> Document:
    """Document ``doc_id`` of the stream, derived from (seed, doc_id) only."""
    if not 0 <= doc_id < config.n_docs:
        raise IndexError(
            f"doc_id {doc_id} outside stream of {config.n_docs} documents"
        )
    rng = _doc_rng(config, doc_id)
    first = _FIRST_NAMES[rng.randint(len(_FIRST_NAMES))]
    surname = _SURNAMES[rng.randint(len(_SURNAMES))]
    # the doc id disambiguates Wikipedia-style, so titles stay unique
    # without any cross-document bookkeeping
    name = f"{first} {surname} ({doc_id})"
    person = Entity(uid=doc_id, name=name, kind="person")
    occupation = _OCCUPATIONS[rng.randint(len(_OCCUPATIONS))]
    year = int(rng.randint(config.year_low, config.year_high + 1))
    city = city_at(config, rng.randint(max(1, config.n_cities)))
    club = club_at(config, rng.randint(max(1, config.n_clubs)))
    facts = [
        Fact(subject=person, relation="occupation", value=occupation),
        Fact(subject=person, relation="born_in", value=city),
        Fact(subject=person, relation="birth_year", value=str(year)),
        Fact(subject=person, relation="plays_for", value=club),
    ]
    text = (
        f"{name} is a {occupation}. "
        f"{name} was born in {city.name}. "
        f"{name} was born in {year}. "
        f"{name} plays for {club.name}."
    )
    return Document(
        doc_id=doc_id,
        title=name,
        text=text,
        entity=person,
        links=[city.name, club.name],
        facts=facts,
        mentioned_entities=[name, city.name, club.name],
    )


def stream_documents(
    config: StreamConfig,
    start: int = 0,
    stop: Optional[int] = None,
) -> Iterator[Document]:
    """Lazily yield documents ``start..stop`` (default: the whole stream).

    A generator: at any moment exactly one document is alive, so memory
    is O(1) in the stream length — the property that lets ingestion and
    the sharded benchmarks walk 100k+ documents without materializing a
    corpus.
    """
    stop = config.n_docs if stop is None else min(stop, config.n_docs)
    for doc_id in range(start, stop):
        yield document_at(config, doc_id)
