"""Loss functions and similarity measures."""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.precision import TRAINING_DTYPE

from repro.nn.tensor import Tensor


def binary_cross_entropy_with_logits(
    logits: Tensor,
    targets: Union[np.ndarray, Sequence[float]],
    pos_weight: float = 1.0,
) -> Tensor:
    """Numerically stable BCE over raw logits.

    Implements ``max(x, 0) - x*t + log(1 + exp(-|x|))`` per element, then
    takes a weighted average. This is the Eq. 5 objective: positives toward
    score 1, negatives toward 0. ``pos_weight`` up-weights positive
    targets — with 1 positive against 9 negatives an unweighted BCE admits
    a degenerate optimum (score *everything* as negative), which in a
    shared-encoder bi-encoder shows up as representation collapse.
    """
    t = np.asarray(targets, dtype=TRAINING_DTYPE)
    x = logits
    relu_x = x.relu()
    abs_x = (x * x).pow(0.5)
    softplus = (Tensor(1.0) + (-abs_x).exp()).log()
    per_element = relu_x - x * Tensor(t) + softplus
    weights = np.where(t > 0.5, pos_weight, 1.0)
    weighted = per_element * Tensor(weights)
    return weighted.sum() * (1.0 / max(weights.sum(), 1e-12))


def cross_entropy(
    logits: Tensor, target_ids: np.ndarray, ignore_index: Optional[int] = None
) -> Tensor:
    """Token-level cross entropy for MLM pre-training.

    ``logits``: (N, V); ``target_ids``: (N,). Positions equal to
    ``ignore_index`` contribute zero loss.
    """
    target_ids = np.asarray(target_ids, dtype=np.int64)
    log_probs = _log_softmax(logits)
    n = target_ids.shape[0]
    weights = np.ones(n)
    if ignore_index is not None:
        weights = (target_ids != ignore_index).astype(TRAINING_DTYPE)
        target_ids = np.where(target_ids == ignore_index, 0, target_ids)
    picked = log_probs[np.arange(n), target_ids]
    total = (picked * Tensor(-weights)).sum()
    denom = max(weights.sum(), 1.0)
    return total * (1.0 / denom)


def _log_softmax(logits: Tensor) -> Tensor:
    shifted_max = logits.data.max(axis=-1, keepdims=True)
    shifted = logits - Tensor(shifted_max)
    return shifted - shifted.exp().sum(axis=-1, keepdims=True).log()


def cosine_similarity(a: Tensor, b: Tensor, eps: float = 1e-8) -> Tensor:
    """Row-wise cosine similarity.

    ``a``: (N, D) or (D,), ``b``: (M, D) or (D,). With 2-D inputs of equal
    N the result is per-row; with ``a`` of shape (D,) against (M, D), the
    result has shape (M,) — the scoring pattern of the single retriever
    (one question against a document's triple facts, Eq. 4).
    """
    if a.ndim == 1 and b.ndim == 2:
        dots = b @ a  # (M,)
        a_norm = (a * a).sum().pow(0.5) + eps
        b_norm = (b * b).sum(axis=-1).pow(0.5) + eps
        return dots / (b_norm * a_norm)
    dots = (a * b).sum(axis=-1)
    a_norm = (a * a).sum(axis=-1).pow(0.5) + eps
    b_norm = (b * b).sum(axis=-1).pow(0.5) + eps
    return dots / (a_norm * b_norm)
