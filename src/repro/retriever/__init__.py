"""The triple-fact single retriever (paper Sec. III-B) and its training.

* :mod:`repro.retriever.store` — per-document constructed triple sets,
* :mod:`repro.retriever.strategies` — "one fact" / top-k / mean score
  calculation strategies (Eqs. 2-4, 6, 7),
* :mod:`repro.retriever.single` — the PLM-based maximum-matching retriever,
* :mod:`repro.retriever.negatives` — BM25-mined training data (1 positive +
  9 negatives per question, Sec. IV-B),
* :mod:`repro.retriever.trainer` — Eq. 5 binary cross-entropy fine-tuning.
"""

from repro.retriever.store import TripleStore, build_triple_store
from repro.retriever.strategies import (
    ONE_FACT,
    TOP_K,
    MEAN,
    ScoreStrategy,
    aggregate_segments,
    score_documents,
)
from repro.retriever.single import SingleRetriever, RetrievedDocument
from repro.retriever.negatives import TrainingExample, mine_training_examples
from repro.retriever.trainer import RetrieverTrainer, TrainerConfig

__all__ = [
    "TripleStore",
    "build_triple_store",
    "ONE_FACT",
    "TOP_K",
    "MEAN",
    "ScoreStrategy",
    "aggregate_segments",
    "score_documents",
    "SingleRetriever",
    "RetrievedDocument",
    "TrainingExample",
    "mine_training_examples",
    "RetrieverTrainer",
    "TrainerConfig",
]
