"""The PLM text encoder ("MiniBERT") used by retriever and updater.

A scaled-down BERT built on :mod:`repro.nn`: WordPiece is replaced by the
shared word tokenizer, [CLS] pooling provides sentence embeddings, and an
MLM pre-training pass over the corpus plays the role of the public BERT
checkpoint before task fine-tuning.
"""

from repro.encoder.minibert import MiniBertEncoder, EncoderConfig
from repro.encoder.pretrain import MLMPretrainer, PretrainConfig

__all__ = [
    "MiniBertEncoder",
    "EncoderConfig",
    "MLMPretrainer",
    "PretrainConfig",
]
