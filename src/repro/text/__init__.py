"""Text-processing substrate (tokenization, sentences, stemming, coref).

This subpackage replaces the paper's use of NLTK and neuralcoref with
self-contained implementations: a regex word tokenizer, a rule-based
sentence splitter tuned for Wikipedia-style prose, a Porter-style stemmer,
a stopword list, a vocabulary for the neural encoder, and a rule-based
pronoun coreference resolver.
"""

from repro.text.tokenize import normalize, tokenize, word_shingles
from repro.text.sentences import split_sentences
from repro.text.stem import stem, stem_tokens
from repro.text.stopwords import STOPWORDS, is_stopword, remove_stopwords
from repro.text.vocab import Vocab
from repro.text.coref import resolve_coreferences

__all__ = [
    "normalize",
    "tokenize",
    "word_shingles",
    "split_sentences",
    "stem",
    "stem_tokens",
    "STOPWORDS",
    "is_stopword",
    "remove_stopwords",
    "Vocab",
    "resolve_coreferences",
]
