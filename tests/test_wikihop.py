"""Unit tests for Wikihop-style query generation."""

from repro.data.wikihop import build_wikihop_dataset


class TestWikihop:
    def test_answer_among_candidates(self, world, corpus):
        dataset = build_wikihop_dataset(world, corpus, max_queries=50)
        for query in dataset.all_queries:
            assert query.answer in query.candidates

    def test_gold_titles_in_supports(self, world, corpus):
        dataset = build_wikihop_dataset(world, corpus, max_queries=50)
        for query in dataset.all_queries:
            for title in query.gold_titles:
                assert title in query.support_titles

    def test_query_text_format(self, world, corpus):
        dataset = build_wikihop_dataset(world, corpus, max_queries=20)
        for query in dataset.all_queries:
            assert query.subject in query.text
            assert query.relation.replace("_", " ") in query.text

    def test_candidate_count_bounded(self, world, corpus):
        dataset = build_wikihop_dataset(world, corpus, n_candidates=4, max_queries=30)
        for query in dataset.all_queries:
            assert 1 <= len(query.candidates) <= 4

    def test_splits_partition(self, world, corpus):
        dataset = build_wikihop_dataset(world, corpus)
        ids = [q.qid for q in dataset.all_queries]
        assert len(ids) == len(set(ids))
        assert len(dataset.validation) > 0 and len(dataset.train) > 0

    def test_deterministic(self, world, corpus):
        a = build_wikihop_dataset(world, corpus, max_queries=25)
        b = build_wikihop_dataset(world, corpus, max_queries=25)
        assert [q.text for q in a.train] == [q.text for q in b.train]
