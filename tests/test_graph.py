"""Unit tests for the triple-fact knowledge graph."""

import pytest

from repro.graph.builder import build_triple_graph
from repro.graph.retrieval import GraphAssistedReranker, graph_expand_candidates
from repro.index.entity_index import EntityIndex
from repro.pipeline.multihop import DocumentPath


@pytest.fixture(scope="module")
def graph(corpus, store):
    linker = EntityIndex(corpus.titles())
    return build_triple_graph(corpus, store, linker=linker)


class TestGraphConstruction:
    def test_nonempty(self, graph):
        assert graph.n_nodes > 0 and graph.n_edges > 0

    def test_titles_are_nodes(self, graph, corpus, world):
        # most person documents connect their title to another entity
        persons = [d for d in corpus if d.entity.kind == "person"]
        in_graph = sum(1 for d in persons if d.title in graph.graph)
        assert in_graph >= len(persons) * 0.7

    def test_bridge_edges_exist(self, graph, world, corpus):
        # a person playing for a club must be connected to it
        fact = world.facts_with_relation("plays_for")[0]
        person, club = fact.subject.name, fact.value_entity.name
        if person in graph.graph and club in graph.graph:
            assert graph.edges_between(person, club)

    def test_neighbours_symmetric(self, graph):
        node = next(iter(graph.graph.nodes))
        for neighbour in graph.neighbours(node):
            assert node in graph.neighbours(neighbour)

    def test_documents_of(self, graph, corpus):
        document = next(d for d in corpus if d.entity.kind == "person")
        if document.title in graph.graph:
            assert document.doc_id in graph.documents_of(document.title)

    def test_unknown_entity(self, graph):
        assert graph.neighbours("No Such Entity") == []
        assert graph.entity_paths("No Such Entity", "Other") == []


class TestGraphRetrieval:
    def test_expand_candidates_excludes_self(self, graph, corpus):
        doc = next(d for d in corpus if d.entity.kind == "person")
        candidates = graph_expand_candidates(graph, doc.doc_id)
        assert doc.doc_id not in candidates

    def test_expand_reaches_gold_hop2(self, graph, corpus, hotpot):
        reached = 0
        bridges = [q for q in hotpot.all_questions if q.is_bridge][:20]
        for question in bridges:
            hop1 = corpus.by_title(question.gold_titles[0])
            hop2 = corpus.by_title(question.gold_titles[1])
            if hop2.doc_id in graph_expand_candidates(
                graph, hop1.doc_id, max_candidates=100
            ):
                reached += 1
        assert reached >= len(bridges) * 0.6

    def test_reranker_boosts_connected(self, graph, corpus, hotpot):
        question = next(q for q in hotpot.all_questions if q.is_bridge)
        hop1 = corpus.by_title(question.gold_titles[0])
        hop2 = corpus.by_title(question.gold_titles[1])
        connected = DocumentPath(
            doc_ids=(hop1.doc_id, hop2.doc_id),
            titles=(hop1.title, hop2.title),
            score=1.0,
        )
        unrelated = corpus[
            next(
                d.doc_id
                for d in corpus
                if d.title not in question.gold_titles
                and not graph.docs_connected(hop1.doc_id, d.doc_id)
            )
        ]
        disconnected = DocumentPath(
            doc_ids=(hop1.doc_id, unrelated.doc_id),
            titles=(hop1.title, unrelated.title),
            score=1.1,
        )
        reranker = GraphAssistedReranker(graph, bonus=0.25)
        reranked = reranker.rerank([disconnected, connected])
        assert reranked[0].titles == connected.titles

    def test_reranker_k_limit(self, graph):
        paths = [
            DocumentPath(doc_ids=(0, 1), titles=("a", "b"), score=1.0),
            DocumentPath(doc_ids=(0, 2), titles=("a", "c"), score=0.5),
        ]
        assert len(GraphAssistedReranker(graph).rerank(paths, k=1)) == 1

    def test_reranker_k_zero_and_none(self, graph):
        paths = [
            DocumentPath(doc_ids=(0, 1), titles=("a", "b"), score=1.0),
            DocumentPath(doc_ids=(0, 2), titles=("a", "c"), score=0.5),
        ]
        reranker = GraphAssistedReranker(graph)
        # k=0 must return nothing, not fall back to "all paths"
        assert reranker.rerank(paths, k=0) == []
        assert len(reranker.rerank(paths, k=None)) == len(paths)
        assert len(reranker.rerank(paths)) == len(paths)
