"""Iterative retriever-updater document-path retrieval.

Hop 1 fetches candidate documents with the single retriever; for each
candidate the question updater selects an updater-clue triple and composes
``q'``; hop 2 runs the single retriever with ``q'``. A path's score is the
sum of its per-hop scores (paper Eq. 8) — the "Triple-fact Retrieval-base"
configuration. Rescoring the resulting candidate paths with the path
ranking model gives the full "Triple-fact Retrieval".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.oie.triple import Triple
from repro.retriever.single import RetrievedDocument, SingleRetriever
from repro.updater.question import compose_updated_question
from repro.updater.updater import QuestionUpdater


@dataclass
class DocumentPath:
    """One candidate reasoning path (hop-1 doc, hop-2 doc)."""

    doc_ids: Tuple[int, ...]
    titles: Tuple[str, ...]
    score: float
    hop_scores: Tuple[float, ...] = ()
    clue: Optional[Triple] = None  # updater-clue used between hops
    matched_triples: Tuple[Optional[Triple], ...] = ()
    updated_question: Optional[str] = None

    @property
    def title_set(self) -> frozenset:
        return frozenset(self.titles)

    def explain(self) -> str:
        """Human-readable account of the reasoning chain."""
        lines = [f"path score {self.score:.3f}"]
        for hop, title in enumerate(self.titles):
            matched = (
                self.matched_triples[hop]
                if hop < len(self.matched_triples)
                else None
            )
            lines.append(f"  hop {hop + 1}: {title} via {matched}")
            if hop == 0 and self.clue is not None:
                lines.append(f"  updater-clue: {self.clue}")
        return "\n".join(lines)


@dataclass
class MultiHopConfig:
    """Beam widths of the iterative retrieval."""

    k_hop1: int = 8  # hop-1 candidates to expand
    k_hop2: int = 4  # hop-2 candidates per hop-1 document
    k_paths: int = 8  # paths returned
    # weight of the updater-clue embedding in the hop-2 query vector.
    # The paper appends the clue tokens to the question; with a full-size
    # BERT, attention re-weights the novel tokens, but mean pooling would
    # drown ~5 clue tokens in ~20 question tokens — so the clue enters the
    # query as an explicit embedding mix: v(q') = v(q) + clue_weight*v(t').
    clue_weight: float = 1.0


class MultiHopRetriever:
    """Retriever-updater iteration over a shared triple store."""

    def __init__(
        self,
        retriever: SingleRetriever,
        updater: QuestionUpdater,
        config: Optional[MultiHopConfig] = None,
    ):
        self.retriever = retriever
        self.updater = updater
        self.config = config or MultiHopConfig()

    def retrieve_paths(
        self, question: str, k_paths: Optional[int] = None
    ) -> List[DocumentPath]:
        """Top-k document paths for ``question`` (Eq. 8 scoring)."""
        cfg = self.config
        k_paths = k_paths or cfg.k_paths
        question_vec = self.retriever.encode_question(question)
        hop1_results = self.retriever.retrieve_by_vector(
            question_vec, k=cfg.k_hop1
        )
        paths: List[DocumentPath] = []
        seen = set()
        for hop1 in hop1_results:
            triples = self.retriever.store.triples(hop1.doc_id)
            selected = self.updater.select_clue(question, triples)
            clue = selected[1] if selected else None
            if clue is not None:
                updated = compose_updated_question(question, clue)
                # encode only the clue's *novel* tokens: the full flattened
                # triple still contains the anchor entity (its subject),
                # which would pull hop 2 straight back to hop-1-like
                # documents; the novel part is the bridge signal.
                question_tokens = set(
                    t.lower() for t in question.replace("?", " ").split()
                )
                novel = [
                    token
                    for token in clue.flatten().split()
                    if token.lower() not in question_tokens
                ]
                # the sharpest bridge signal is the novel *entity*: prefer
                # capitalized novel tokens, then any novel token, then the
                # whole clue
                capitalized = [t for t in novel if t[:1].isupper()]
                clue_text = " ".join(capitalized or novel) or clue.flatten()
                clue_vec = self.retriever.encoder.encode_numpy([clue_text])[0]
                norm_q = np.linalg.norm(question_vec) or 1.0
                norm_c = np.linalg.norm(clue_vec) or 1.0
                hop2_vec = (
                    question_vec / norm_q
                    + cfg.clue_weight * clue_vec / norm_c
                )
            else:
                updated = question
                hop2_vec = question_vec
            hop2_results = self.retriever.retrieve_by_vector(
                hop2_vec, k=cfg.k_hop2 + 1
            )
            for hop2 in hop2_results:
                if hop2.doc_id == hop1.doc_id:
                    continue
                key = (hop1.doc_id, hop2.doc_id)
                if key in seen:
                    continue
                seen.add(key)
                paths.append(
                    DocumentPath(
                        doc_ids=(hop1.doc_id, hop2.doc_id),
                        titles=(hop1.title, hop2.title),
                        score=hop1.score + hop2.score,
                        hop_scores=(hop1.score, hop2.score),
                        clue=clue,
                        matched_triples=(
                            hop1.matched_triple,
                            hop2.matched_triple,
                        ),
                        updated_question=updated,
                    )
                )
        paths.sort(key=lambda p: (-p.score, p.doc_ids))
        return paths[:k_paths]
