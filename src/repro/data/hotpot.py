"""HotpotQA-style two-hop question generation.

Two question types, as in the paper (Sec. IV-A):

* **Bridge** — a chain ``anchor --r1--> bridge --r2--> answer``. The
  question describes the bridge entity only through its link to the anchor
  ("the football club that Walter Otto Davis played for"), so hop 2 cannot
  be retrieved without first reading the anchor's document. Gold path:
  ``[doc(anchor), doc(bridge)]``.
* **Comparison** — two same-kind entities compared on one property
  ("Did LostAlone and Guster have the same number of members?"). Gold path:
  ``[doc(a), doc(b)]``, retrievable simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data import templates as T
from repro.data.corpus import Corpus
from repro.data.world import Entity, Fact, World

BRIDGE = "bridge"
COMPARISON = "comparison"

#: (first-hop relation, second-hop relation) chains that compose into a
#: well-formed bridge question (both sides have templates and the bridge
#: kind matches).
CHAIN_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("plays_for", "founded_year"),
    ("plays_for", "based_in"),
    ("plays_for", "league"),
    ("member_of", "formed_year"),
    ("member_of", "origin"),
    ("member_of", "genre"),
    ("member_of", "member_count"),
    ("member_of", "label"),
    ("educated_at", "established_year"),
    ("educated_at", "univ_located_in"),
    ("won", "award_field"),
    ("born_in", "located_in"),
    ("born_in", "population"),
    ("based_in", "located_in"),
    ("based_in", "population"),
    ("origin", "located_in"),
    ("origin", "population"),
    ("label", "headquartered_in"),
    ("label", "industry"),
)

#: relations usable for comparison questions, by entity kind.
COMPARISON_RELATIONS: Dict[str, Tuple[str, ...]] = {
    "band": ("member_count", "formed_year", "genre"),
    "club": ("founded_year", "league"),
    "person": ("birth_year", "occupation"),
    "film": ("released_year",),
    "city": ("population",),
}

#: comparison relations whose question asks "which one" rather than yes/no.
_ORDINAL_RELATIONS = {"formed_year", "founded_year", "birth_year",
                      "released_year", "population"}


@dataclass
class HotpotQuestion:
    """One generated multi-hop question with gold supervision."""

    qid: int
    text: str
    qtype: str  # BRIDGE or COMPARISON
    gold_titles: List[str]  # ordered document path (hop 1 first)
    answer: str
    bridge_entity: Optional[str] = None
    relations: Tuple[str, ...] = ()

    @property
    def is_bridge(self) -> bool:
        return self.qtype == BRIDGE


@dataclass
class HotpotDataset:
    """Train/test splits of generated questions over one corpus."""

    corpus: Corpus
    train: List[HotpotQuestion] = field(default_factory=list)
    test: List[HotpotQuestion] = field(default_factory=list)

    @property
    def all_questions(self) -> List[HotpotQuestion]:
        return self.train + self.test

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """Table-I-style statistics: bridge/comparison counts per split."""
        stats: Dict[str, Dict[str, int]] = {}
        for name, questions in (("train", self.train), ("test", self.test)):
            bridge = sum(1 for q in questions if q.qtype == BRIDGE)
            stats[name] = {
                "bridge": bridge,
                "comparison": len(questions) - bridge,
                "total": len(questions),
            }
        return stats


def _pick(rng: np.random.RandomState, seq: Sequence):
    return seq[int(rng.randint(len(seq)))]


def _anchor_reference(
    anchor: Entity,
    world: World,
    rng: np.random.RandomState,
    descriptive_prob: float,
    partial_name_prob: float,
) -> str:
    """How the question refers to the anchor entity.

    Mirrors real HotpotQA phrasing: usually the full name, sometimes a
    shortened name, and sometimes a *descriptive* reference ("the novelist
    born in 1943") that shares no tokens with the title — the case where
    lexical matching struggles and semantic matching pays off. Descriptive
    references are only used when unambiguous in the world.
    """
    roll = rng.rand()
    if anchor.kind == "person" and roll < descriptive_prob:
        occupation = world.fact_of(anchor, "occupation")
        born_in = world.fact_of(anchor, "born_in")
        if occupation is not None and born_in is not None:
            same = [
                fact.subject
                for fact in world.facts_with_relation("occupation")
                if fact.value_text == occupation.value_text
            ]
            collisions = [
                person
                for person in same
                if person.uid != anchor.uid
                and (world.fact_of(person, "born_in") or fact_none).value_text
                == born_in.value_text
            ]
            if not collisions:
                noun = occupation.value_text
                # half the descriptive references use a synonym the corpus
                # never contains — the pure-semantic matching case; the
                # birthplace city is shared by many documents, so lexical
                # matching alone cannot pinpoint the anchor
                if rng.rand() < 0.5:
                    noun = T.OCCUPATION_SYNONYMS.get(noun, noun)
                return f"the {noun} from {born_in.value_text}"
    parts = anchor.name.split()
    if len(parts) >= 3 and roll < descriptive_prob + partial_name_prob:
        return f"{parts[0]} {parts[-1]}"  # drop middle names
    return anchor.name


class _FactNone:
    """Sentinel with a value_text that never collides."""

    value_text = object()


fact_none = _FactNone()


def _bridge_questions(
    world: World,
    rng: np.random.RandomState,
    start_qid: int,
    descriptive_prob: float = 0.3,
    partial_name_prob: float = 0.2,
) -> List[HotpotQuestion]:
    questions: List[HotpotQuestion] = []
    qid = start_qid
    chain_index: Dict[str, List[Fact]] = {}
    for r1, _ in CHAIN_PAIRS:
        if r1 not in chain_index:
            chain_index[r1] = world.facts_with_relation(r1)
    for r1, r2 in CHAIN_PAIRS:
        for hop1_fact in chain_index[r1]:
            bridge = hop1_fact.value_entity
            if bridge is None:
                continue
            hop2_fact = world.fact_of(bridge, r2)
            if hop2_fact is None:
                continue
            desc_template = _pick(rng, T.BRIDGE_DESC_TEMPLATES[r1])
            question_template = _pick(rng, T.BRIDGE_QUESTION_TEMPLATES[r2])
            reference = _anchor_reference(
                hop1_fact.subject, world, rng, descriptive_prob, partial_name_prob
            )
            desc = desc_template.format(s=reference)
            text = question_template.format(desc=desc)
            questions.append(
                HotpotQuestion(
                    qid=qid,
                    text=text,
                    qtype=BRIDGE,
                    gold_titles=[hop1_fact.subject.name, bridge.name],
                    answer=hop2_fact.value_text,
                    bridge_entity=bridge.name,
                    relations=(r1, r2),
                )
            )
            qid += 1
    return questions


def _comparison_answer(relation: str, a: Fact, b: Fact, template: str) -> str:
    """Gold answer for one comparison question.

    Ordinal templates phrased as "Which ... ?" are answered with the
    winning entity's name; yes/no phrasings ("Was A ... before B?") with
    yes/no; equality templates with yes/no on value equality.
    """
    if relation in _ORDINAL_RELATIONS:
        va, vb = a.value_text, b.value_text
        try:
            fa, fb = float(va), float(vb)
        except ValueError:  # pragma: no cover - literals are numeric
            return a.subject.name
        if relation == "population":
            a_wins = fa >= fb
        else:
            a_wins = fa <= fb
        if template.split()[0].lower() in ("was", "were", "did", "do", "does", "is", "are"):
            return "yes" if a_wins else "no"
        return a.subject.name if a_wins else b.subject.name
    return "yes" if a.value_text == b.value_text else "no"


def _comparison_questions(
    world: World,
    rng: np.random.RandomState,
    start_qid: int,
    per_kind: int,
) -> List[HotpotQuestion]:
    questions: List[HotpotQuestion] = []
    qid = start_qid
    for kind, relations in COMPARISON_RELATIONS.items():
        entities = world.entities_of_kind(kind)
        if len(entities) < 2:
            continue
        made = 0
        attempts = 0
        seen_pairs = set()
        while made < per_kind and attempts < per_kind * 20:
            attempts += 1
            a = _pick(rng, entities)
            b = _pick(rng, entities)
            if a.uid == b.uid:
                continue
            relation = _pick(rng, relations)
            key = (min(a.uid, b.uid), max(a.uid, b.uid), relation)
            if key in seen_pairs:
                continue
            fa, fb = world.fact_of(a, relation), world.fact_of(b, relation)
            if fa is None or fb is None:
                continue
            if relation not in T.COMPARISON_QUESTION_TEMPLATES:
                continue
            seen_pairs.add(key)
            template = _pick(rng, T.COMPARISON_QUESTION_TEMPLATES[relation])
            questions.append(
                HotpotQuestion(
                    qid=qid,
                    text=template.format(a=a.name, b=b.name),
                    qtype=COMPARISON,
                    gold_titles=[a.name, b.name],
                    answer=_comparison_answer(relation, fa, fb, template),
                    relations=(relation,),
                )
            )
            qid += 1
            made += 1
    return questions


def build_hotpot_dataset(
    world: World,
    corpus: Corpus,
    test_fraction: float = 0.2,
    comparison_per_kind: int = 20,
    seed: Optional[int] = None,
    max_questions: Optional[int] = None,
    descriptive_prob: float = 0.3,
    partial_name_prob: float = 0.2,
) -> HotpotDataset:
    """Generate the HotpotQA-style dataset for ``world`` / ``corpus``.

    Bridge questions are generated exhaustively over all valid 2-hop chains;
    comparison questions are sampled (``comparison_per_kind`` per entity
    kind), giving the bridge-heavy mix of the real dataset (Table I:
    ~80% bridge). Split into train/test with ``test_fraction``.
    """
    rng = np.random.RandomState(world.config.seed + 101 if seed is None else seed)
    questions = _bridge_questions(
        world,
        rng,
        start_qid=0,
        descriptive_prob=descriptive_prob,
        partial_name_prob=partial_name_prob,
    )
    questions += _comparison_questions(
        world, rng, start_qid=len(questions), per_kind=comparison_per_kind
    )
    order = rng.permutation(len(questions))
    questions = [questions[i] for i in order]
    if max_questions is not None:
        questions = questions[:max_questions]
    n_test = int(round(len(questions) * test_fraction))
    dataset = HotpotDataset(
        corpus=corpus, train=questions[n_test:], test=questions[:n_test]
    )
    return dataset
