"""Triple-fact reader: extract the answer from a retrieved document path.

Works directly on the structured representation the retriever produces:
the answer to a bridge question is a constituent of some triple fact of
the hop-2 document; comparison questions are answered by extracting the
compared property from both documents' triples and applying the question's
comparison logic. Rule-based by design — the paper delegates reading to
existing models, and over triple facts extraction reduces to typed value
selection.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.data.corpus import Corpus
from repro.oie.triple import Triple
from repro.retriever.store import TripleStore
from repro.text.stem import stem
from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import tokenize

# answer types keyed by question openers / cue phrases
YEAR = "year"
COUNT = "count"
PLACE = "place"
SPAN = "span"
YES_NO = "yes_no"
WHICH_FIRST = "which_first"
WHICH_LARGER = "which_larger"

_YEAR_RE = re.compile(r"\b(1[0-9]{3}|20[0-9]{2})\b")
_NUMBER_RE = re.compile(r"\b\d+\b")


@dataclass
class ReaderResult:
    """One extracted answer with its provenance."""

    answer: str
    confidence: float
    supporting_triple: Optional[Triple] = None
    doc_title: Optional[str] = None

    def __bool__(self) -> bool:
        return bool(self.answer)


def classify_question(question: str) -> str:
    """Map a question to its expected answer type."""
    lowered = question.lower()
    if lowered.startswith(("did ", "do ", "does ", "was ", "were ", "is ", "are ")):
        if "first" in lowered or "before" in lowered:
            return WHICH_FIRST
        return YES_NO
    if "which" in lowered and "first" in lowered:
        return WHICH_FIRST
    if "larger" in lowered or "bigger" in lowered:
        return WHICH_LARGER
    if lowered.startswith("when") or "what year" in lowered or "which year" in lowered:
        return YEAR
    if lowered.startswith("how many") or "population" in lowered:
        return COUNT
    if lowered.startswith("where") or "which city" in lowered or (
        "which country" in lowered
    ):
        return PLACE
    return SPAN


def _content(text: str) -> set:
    return {
        stem(t) for t in tokenize(text) if t[:1].isalnum() and t not in STOPWORDS
    }


class TripleFactReader:
    """Extracts answers from document paths over a triple store."""

    def __init__(self, corpus: Corpus, store: TripleStore):
        self.corpus = corpus
        self.store = store

    # -- bridge questions ----------------------------------------------------
    def _ranked_triples(
        self, question: str, doc_id: int, exclude_tokens: set
    ) -> List[Tuple[Triple, float]]:
        """Document triples ranked by question-relation overlap
        (subject/entity tokens excluded from the question side)."""
        question_tokens = _content(question) - exclude_tokens
        ranked: List[Tuple[Triple, float]] = []
        for triple in self.store.triples(doc_id):
            triple_tokens = _content(triple.predicate + " " + triple.object)
            overlap = len(triple_tokens & question_tokens)
            score = overlap / (1 + len(triple_tokens))
            ranked.append((triple, score))
        ranked.sort(key=lambda item: -item[1])
        return ranked

    def _extract_typed(
        self, triple: Triple, answer_type: str, question: str, subject_tokens: set
    ) -> Optional[str]:
        """Extract an answer of ``answer_type`` from a triple, or None."""
        text = " ".join((triple.object,) + triple.extra_objects)
        if answer_type == YEAR:
            match = _YEAR_RE.search(text)
            return match.group(0) if match else None
        if answer_type == COUNT:
            match = _NUMBER_RE.search(text)
            return match.group(0) if match else None
        if answer_type == PLACE:
            # a capitalized span in the object that is not the subject
            spans = re.findall(r"(?:[A-Z][\w'-]*\s?)+", text)
            for span in spans:
                span = span.strip()
                if span and not (_content(span) & subject_tokens):
                    return span
            return None
        # SPAN: the object minus tokens the question already contains and
        # leading function words — must leave something behind
        question_tokens = _content(question)
        kept = []
        for token in text.split():
            lowered = token.lower().strip(",")
            if lowered in ("a", "an", "the", "to", "in", "of", "for", "at"):
                if not kept:
                    continue
            if stem(lowered) in question_tokens:
                continue
            kept.append(token.strip(","))
        return " ".join(kept) if kept else None

    def read_bridge(
        self, question: str, path_titles: Sequence[str]
    ) -> ReaderResult:
        """Answer a bridge question from its (hop-1, hop-2) path.

        Triples are tried best-overlap first; the first one yielding an
        answer of the question's type wins — so a high-overlap triple with
        no extractable value (e.g. the intro) never blocks the answer.
        """
        answer_type = classify_question(question)
        if len(path_titles) < 2:
            return ReaderResult(answer="", confidence=0.0)
        hop2 = self.corpus.by_title(path_titles[1])
        if hop2 is None:
            return ReaderResult(answer="", confidence=0.0)
        subject_tokens = _content(hop2.title)
        for triple, score in self._ranked_triples(
            question, hop2.doc_id, subject_tokens
        ):
            answer = self._extract_typed(
                triple, answer_type, question, subject_tokens
            )
            if answer:
                return ReaderResult(
                    answer=answer,
                    confidence=min(1.0, 0.4 + score),
                    supporting_triple=triple,
                    doc_title=hop2.title,
                )
        return ReaderResult(answer="", confidence=0.0)

    # -- comparison questions --------------------------------------------------
    def _property_value(
        self, question: str, title: str, answer_type: str
    ) -> Optional[str]:
        document = self.corpus.by_title(title)
        if document is None:
            return None
        subject_tokens = _content(title)
        ranked = self._ranked_triples(question, document.doc_id, subject_tokens)
        if answer_type in (WHICH_FIRST, WHICH_LARGER):
            target = YEAR if answer_type == WHICH_FIRST else COUNT
            for triple, _score in ranked:
                value = self._extract_typed(triple, target, question, subject_tokens)
                if value:
                    return value
            return None
        # yes/no: the compared property as a normalized value string
        for triple, _score in ranked:
            for target in (YEAR, COUNT):
                value = self._extract_typed(triple, target, question, subject_tokens)
                if value:
                    return value
            value = self._extract_typed(triple, SPAN, question, subject_tokens)
            if value:
                return value.lower()
        return None

    def read_comparison(
        self, question: str, path_titles: Sequence[str]
    ) -> ReaderResult:
        """Answer a comparison question over its two gold documents."""
        answer_type = classify_question(question)
        if len(path_titles) < 2:
            return ReaderResult(answer="", confidence=0.0)
        title_a, title_b = path_titles[0], path_titles[1]
        value_a = self._property_value(question, title_a, answer_type)
        value_b = self._property_value(question, title_b, answer_type)
        if value_a is None or value_b is None:
            return ReaderResult(answer="", confidence=0.0)
        if answer_type == WHICH_FIRST:
            try:
                answer = title_a if float(value_a) <= float(value_b) else title_b
            except ValueError:
                return ReaderResult(answer="", confidence=0.0)
            # "Was A formed before B?" is yes/no phrased ordinally
            if question.lower().startswith(("was ", "were ")):
                answer = "yes" if answer == title_a else "no"
            return ReaderResult(answer=answer, confidence=0.6)
        if answer_type == WHICH_LARGER:
            try:
                answer = title_a if float(value_a) >= float(value_b) else title_b
            except ValueError:
                return ReaderResult(answer="", confidence=0.0)
            return ReaderResult(answer=answer, confidence=0.6)
        answer = "yes" if value_a == value_b else "no"
        return ReaderResult(answer=answer, confidence=0.5)

    # -- entry point -----------------------------------------------------------
    def read(
        self,
        question: str,
        path_titles: Sequence[str],
        qtype: Optional[str] = None,
    ) -> ReaderResult:
        """Extract the answer for ``question`` from a document path.

        ``qtype``: "bridge" / "comparison" when known; inferred from the
        question's answer type otherwise.
        """
        if qtype is None:
            answer_type = classify_question(question)
            qtype = (
                "comparison"
                if answer_type in (YES_NO, WHICH_FIRST, WHICH_LARGER)
                else "bridge"
            )
        if qtype == "comparison":
            return self.read_comparison(question, path_titles)
        return self.read_bridge(question, path_titles)
