"""The rule catalog: this repo's bug classes as enforced AST checks.

Every rule here encodes a failure mode this codebase has actually hit (or
is one refactor away from hitting) — see the "Static analysis" section of
``DESIGN.md`` for the catalog with rationale. Rules are registered by id;
``# lint: ignore[rule-id]`` on the offending line suppresses one finding.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from pathlib import Path

from repro.analysis.core import FileContext, Finding, Rule, register

# directories that hold retrieval hot paths (scoped rules below)
HOT_PATH_DIRS = frozenset({"retriever", "pipeline", "baselines"})
COSINE_DIRS = HOT_PATH_DIRS | {"updater"}
# directories where durations/deadlines are measured (wall-clock-timing)
TIMING_DIRS = frozenset({"serve", "perf", "benchmarks"})

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function/class defs."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)


def _scopes(tree: ast.AST) -> Iterator[Tuple[ast.AST, List[ast.stmt]]]:
    """(scope node, body) for the module and every function definition."""
    yield tree, getattr(tree, "body", [])
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _identifiers(node: ast.AST) -> Iterator[str]:
    """Every Name/Attribute/keyword identifier appearing inside ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr
        elif isinstance(sub, ast.keyword) and sub.arg:
            yield sub.arg


def _all_args(args: ast.arguments) -> List[ast.arg]:
    return [*args.posonlyargs, *args.args, *args.kwonlyargs]


# ---------------------------------------------------------------------------
# falsy-zero-default
# ---------------------------------------------------------------------------

_NUMERIC_NAME = re.compile(
    r"^(k|n|top_k|num\w*|count|limit|size|length|depth|width|beam\w*|"
    r"epochs?|seed|threshold|cutoff|k_\w+|n_\w+|max_\w+|min_\w+|batch_size)$"
)
# exactly a numeric scalar type, optionally Optional — NOT containers of
# ints (Sequence[int] params legitimately use `x or ()` for emptiness)
_NUMERIC_ANNOTATION = re.compile(
    r"^(?:typing\.)?(?:Optional\[\s*(?:int|float)\s*\]|int|float|"
    r"(?:int|float)\s*\|\s*None|None\s*\|\s*(?:int|float))$"
)


@register
class FalsyZeroDefault(Rule):
    """``param or default`` silently replaces a legitimate 0 / 0.0.

    The PR-1 bug class: ``k_paths or cfg.k_paths`` turned an explicit
    ``k_paths=0`` into the config default. Numeric parameters must use
    ``param if param is not None else default``.
    """

    id = "falsy-zero-default"
    description = (
        "'x or default' on a numeric parameter treats 0 as unset; "
        "use 'x if x is not None else default'"
    )

    def _numeric_params(self, node) -> Set[str]:
        names: Set[str] = set()
        args = _all_args(node.args)
        defaults: Dict[str, ast.expr] = {}
        positional = [*node.args.posonlyargs, *node.args.args]
        for arg, default in zip(
            reversed(positional), reversed(node.args.defaults)
        ):
            defaults[arg.arg] = default
        for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
            if default is not None:
                defaults[arg.arg] = default
        for arg in args:
            if _NUMERIC_NAME.match(arg.arg):
                names.add(arg.arg)
                continue
            annotation = arg.annotation
            if annotation is not None and _NUMERIC_ANNOTATION.match(
                ast.unparse(annotation).strip()
            ):
                names.add(arg.arg)
                continue
            default = defaults.get(arg.arg)
            if (
                isinstance(default, ast.Constant)
                and isinstance(default.value, (int, float))
                and not isinstance(default.value, bool)
            ):
                names.add(arg.arg)
        return names

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            numeric = self._numeric_params(node)
            if not numeric:
                continue
            for sub in _walk_shallow(node):
                if (
                    isinstance(sub, ast.BoolOp)
                    and isinstance(sub.op, ast.Or)
                    and isinstance(sub.values[0], ast.Name)
                    and sub.values[0].id in numeric
                ):
                    name = sub.values[0].id
                    yield self.finding(
                        ctx,
                        sub,
                        f"numeric parameter {name!r} uses a falsy-zero 'or' "
                        f"default (0 silently becomes the fallback); use "
                        f"'{name} if {name} is not None else ...'",
                    )


# ---------------------------------------------------------------------------
# mutable-default-arg
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict"})


@register
class MutableDefaultArg(Rule):
    """A mutable default is shared across calls and mutates in place."""

    id = "mutable-default-arg"
    description = "mutable default argument (shared across calls); use None"

    def _is_mutable(self, node: Optional[ast.expr]) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            return name in _MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            for default in [*node.args.defaults, *node.args.kw_defaults]:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and construct inside the function",
                    )


# ---------------------------------------------------------------------------
# bare-except / except-pass
# ---------------------------------------------------------------------------


@register
class BareExcept(Rule):
    """``except:`` also swallows KeyboardInterrupt/SystemExit and typos."""

    id = "bare-except"
    description = "bare 'except:' hides every error; name the exception type"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' catches everything (including "
                    "KeyboardInterrupt); catch a specific exception type",
                )


@register
class ExceptPass(Rule):
    """An except body that only discards the failure, in any spelling.

    Three shapes fire: ``except ...: pass`` (any handler type), the
    ``except ...: ...`` Ellipsis body that reads like a stub but runs
    like a swallow, and bare ``except: continue`` — which not only eats
    the error but also hides *which* loop iterations silently failed.
    A typed ``except SomeError: continue`` is the legitimate
    skip-bad-items idiom and stays allowed.
    """

    id = "except-pass"
    description = (
        "'except ...: pass' / 'except ...: ...' / bare 'except: continue' "
        "silently swallows the error"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if len(node.body) != 1:
                continue
            body = node.body[0]
            swallows = isinstance(body, ast.Pass) or (
                isinstance(body, ast.Expr)
                and isinstance(body.value, ast.Constant)
                and body.value.value is Ellipsis
            )
            # bare 'except: continue' in a loop swallows *and* skips;
            # a typed handler with continue is deliberate item-skipping
            if (
                isinstance(body, ast.Continue)
                and node.type is None
            ):
                swallows = True
            if swallows:
                yield self.finding(
                    ctx,
                    body,
                    "exception handler silently swallows the error; handle "
                    "it, log it, or narrow the type and say why in a comment",
                )


# ---------------------------------------------------------------------------
# missing-perf-counter
# ---------------------------------------------------------------------------

_ENCODE_ATTRS = frozenset({"encode_numpy"})
_PERF_MARKERS = frozenset(
    {"COUNTERS", "record_encode", "record_scoring", "time_block"}
)


@register
class MissingPerfCounter(Rule):
    """Hot-path encoder calls must increment ``repro.perf`` counters.

    The vectorized retrieval work made encoder invocations the observable
    cost driver; a hot-path function that encodes without counting makes
    ``--stats`` and the throughput benchmarks silently undercount.
    """

    id = "missing-perf-counter"
    description = (
        "hot-path function calls the encoder without touching repro.perf "
        "counters"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return bool(ctx.dir_parts & HOT_PATH_DIRS) and not ctx.is_test_file

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            encode_calls = [
                sub
                for sub in _walk_shallow(node)
                if isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _ENCODE_ATTRS
            ]
            if not encode_calls:
                continue
            references = set()
            for stmt in node.body:
                references.update(_identifiers(stmt))
            if references & _PERF_MARKERS:
                continue
            first = min(encode_calls, key=lambda call: call.lineno)
            yield self.finding(
                ctx,
                first,
                f"{node.name}() calls the encoder but never records "
                "repro.perf counters (COUNTERS.record_encode/record_scoring)",
            )


# ---------------------------------------------------------------------------
# legacy-path-call
# ---------------------------------------------------------------------------

_LEGACY_NAME = "retrieve_by_vector_legacy"


@register
class LegacyPathCall(Rule):
    """Production code must use the vectorized retrieval path.

    The per-document reference loop exists only so parity tests can pin
    the single-matmul scorer to the original semantics; the files allowed
    to call it are listed under ``[tool.repro.lint.allow]``.
    """

    id = "legacy-path-call"
    description = (
        "call to the O(corpus) legacy scorer outside the parity tests"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            if name == _LEGACY_NAME:
                yield self.finding(
                    ctx,
                    node,
                    f"{_LEGACY_NAME}() is the per-document reference loop "
                    "kept for parity tests; production code must use "
                    "retrieve_by_vector / retrieve_batch",
                )


# ---------------------------------------------------------------------------
# unnormalized-matmul
# ---------------------------------------------------------------------------

_SCOREY_TARGET = re.compile(r"(score|cos|sim)", re.IGNORECASE)
_NORM_IDENT = re.compile(r"norm", re.IGNORECASE)


def _has_norm_evidence(node: ast.AST) -> bool:
    return any(_NORM_IDENT.search(ident) for ident in _identifiers(node))


@register
class UnnormalizedMatmul(Rule):
    """Cosine-score matmuls must run on L2-normalized operands.

    A ``scores = A @ B`` where neither side went through the normalize
    helper computes inner products, not cosines — retrieval then ranks by
    vector length. Operands are accepted when the statement (or the
    operand's own defining assignment / parameter name) mentions a
    ``*norm*`` identifier, e.g. ``l2_normalize_rows(...)`` or
    ``self._normed``.
    """

    id = "unnormalized-matmul"
    description = (
        "cosine-score matmul on operands with no visible L2 normalization"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return bool(ctx.dir_parts & COSINE_DIRS) and not ctx.is_test_file

    def _operand_ok(
        self,
        operand: ast.expr,
        assignments: Dict[str, List[Tuple[int, ast.expr]]],
        norm_params: Set[str],
        before_line: int,
    ) -> bool:
        if _has_norm_evidence(operand):
            return True
        base = operand
        while isinstance(base, (ast.Attribute, ast.Subscript, ast.Starred)):
            base = base.value
        if not isinstance(base, ast.Name):
            return False
        if base.id in norm_params:
            return True
        prior = [
            value
            for lineno, value in assignments.get(base.id, [])
            if lineno <= before_line
        ]
        return bool(prior) and _has_norm_evidence(prior[-1])

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for scope, _body in _scopes(ctx.tree):
            norm_params: Set[str] = set()
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                norm_params = {
                    arg.arg
                    for arg in _all_args(scope.args)
                    if _NORM_IDENT.search(arg.arg)
                }
            assignments: Dict[str, List[Tuple[int, ast.expr]]] = {}
            statements = [
                sub
                for sub in _walk_shallow(scope)
                if isinstance(sub, ast.Assign)
            ]
            statements.sort(key=lambda s: s.lineno)
            for statement in statements:
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        assignments.setdefault(target.id, []).append(
                            (statement.lineno, statement.value)
                        )
            for statement in statements:
                if len(statement.targets) != 1:
                    continue
                target = statement.targets[0]
                if not (
                    isinstance(target, ast.Name)
                    and _SCOREY_TARGET.search(target.id)
                ):
                    continue
                matmuls = [
                    sub
                    for sub in ast.walk(statement.value)
                    if isinstance(sub, ast.BinOp)
                    and isinstance(sub.op, ast.MatMult)
                ]
                if not matmuls or _has_norm_evidence(statement.value):
                    continue
                for matmul in matmuls:
                    bad = [
                        operand
                        for operand in (matmul.left, matmul.right)
                        if not self._operand_ok(
                            operand, assignments, norm_params, statement.lineno
                        )
                    ]
                    if bad:
                        yield self.finding(
                            ctx,
                            statement,
                            f"cosine-score matmul assigned to "
                            f"{target.id!r} has operand(s) with no visible "
                            "L2 normalization; route them through "
                            "l2_normalize_rows / l2_normalize_vec",
                        )
                        break


# ---------------------------------------------------------------------------
# unordered-topk
# ---------------------------------------------------------------------------

# retrieval code that ranks: the hot paths plus the sharded merge layer
TOPK_DIRS = HOT_PATH_DIRS | {"shard"}
_TIEBREAK_MARKERS = frozenset({"lexsort", "topk_doc_order"})


@register
class UnorderedTopk(Rule):
    """Bare ``argpartition`` top-k has no deterministic tie order.

    ``np.argpartition`` returns the top-k *set* in an arbitrary,
    platform-dependent order, and tied scores at the k boundary make even
    the set ambiguous. The PR-6 sharding work depends on every ranking
    site using the (score desc, doc id asc) total order — otherwise
    sharded and unsharded results diverge on ties and the byte-identical
    parity guarantee breaks. Retrieval code must rank through
    ``repro.shard.merge.topk_doc_order`` (or apply an explicit
    ``np.lexsort`` tie-break in the same function).
    """

    id = "unordered-topk"
    description = (
        "argpartition top-k without a deterministic tie-break; rank "
        "through topk_doc_order (score desc, doc id asc)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return bool(ctx.dir_parts & TOPK_DIRS) and not ctx.is_test_file

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            partition_calls = [
                sub
                for sub in _walk_shallow(node)
                if isinstance(sub, ast.Call)
                and isinstance(sub.func, (ast.Attribute, ast.Name))
                and (
                    sub.func.attr
                    if isinstance(sub.func, ast.Attribute)
                    else sub.func.id
                )
                == "argpartition"
            ]
            if not partition_calls:
                continue
            references = set()
            for stmt in node.body:
                references.update(_identifiers(stmt))
            if references & _TIEBREAK_MARKERS:
                continue
            first = min(partition_calls, key=lambda call: call.lineno)
            yield self.finding(
                ctx,
                first,
                f"{node.name}() selects top-k with argpartition but never "
                "orders ties; rank through topk_doc_order (score desc, "
                "doc id asc) or add an explicit lexsort tie-break",
            )


# ---------------------------------------------------------------------------
# shadowed-builtin-id
# ---------------------------------------------------------------------------

_SHADOWED_BUILTINS = frozenset(
    {
        "id", "type", "list", "dict", "set", "tuple", "str", "int", "float",
        "bool", "bytes", "sum", "max", "min", "map", "filter", "zip",
        "range", "len", "input", "next", "iter", "vars", "hash", "object",
        "print", "open", "all", "any", "format", "dir",
    }
)


def _target_names(target: ast.expr) -> Iterator[ast.Name]:
    if isinstance(target, ast.Name):
        yield target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


@register
class ShadowedBuiltin(Rule):
    """Binding ``id``/``type``/``sum``/... hides the builtin for the scope.

    Class-body annotations (dataclass fields like ``object: str``) are
    attribute names, not scope bindings, and are exempt.
    """

    id = "shadowed-builtin-id"
    description = "local binding shadows a commonly used builtin"

    def _flag(self, ctx: FileContext, node: ast.AST, name: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f"binding {name!r} shadows the builtin; rename "
            f"(e.g. {name}_ or a descriptive name)",
        )

    def _check_args(self, ctx, node) -> Iterator[Finding]:
        for arg in [
            *_all_args(node.args),
            *([node.args.vararg] if node.args.vararg else []),
            *([node.args.kwarg] if node.args.kwarg else []),
        ]:
            if arg.arg in _SHADOWED_BUILTINS:
                yield self._flag(ctx, arg, arg.arg)

    def _bindings(self, node: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name in _target_names(target):
                    yield name, name.id
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            for name in _target_names(node.target):
                yield name, name.id
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name in _target_names(node.target):
                yield name, name.id
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                for name in _target_names(generator.target):
                    yield name, name.id
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        yield name, name.id
        elif isinstance(node, ast.NamedExpr):
            yield node.target, node.target.id
        elif isinstance(node, ast.ExceptHandler) and node.name:
            yield node, node.name
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                yield node, bound

    def _visit(
        self, ctx: FileContext, node: ast.AST, skip_binding: bool
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not skip_binding and node.name in _SHADOWED_BUILTINS:
                yield self._flag(ctx, node, node.name)
            yield from self._check_args(ctx, node)
            for child in node.body:
                yield from self._visit(ctx, child, False)
            return
        if isinstance(node, ast.Lambda):
            yield from self._check_args(ctx, node)
            yield from self._visit(ctx, node.body, False)
            return
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                yield from self._visit(ctx, child, True)
            return
        if not skip_binding:
            for bound_node, name in self._bindings(node):
                if name in _SHADOWED_BUILTINS:
                    yield self._flag(ctx, bound_node, name)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(ctx, child, False)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in getattr(ctx.tree, "body", []):
            yield from self._visit(ctx, node, False)


# ---------------------------------------------------------------------------
# wall-clock-timing
# ---------------------------------------------------------------------------


@register
class WallClockTiming(Rule):
    """Timing/deadline code must not read the wall clock.

    ``time.time()`` jumps with NTP slews and DST; a duration measured
    across a step can come out negative, and a deadline computed from it
    can fire early or never. The serving layer and every benchmark
    measure with ``time.perf_counter()`` (durations) or
    ``time.monotonic()`` (deadlines, injectable clocks). This rule
    covers *all* files in the timing directories — including benchmark
    test files, which are exactly where sloppy timing sneaks in.
    """

    id = "wall-clock-timing"
    description = (
        "time.time() in timing-sensitive code; use perf_counter/monotonic"
    )
    _MESSAGE = (
        "time.time() is wall-clock (jumps with NTP/DST); measure "
        "durations with time.perf_counter() and deadlines with "
        "time.monotonic()"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # deliberately no test-file exemption: benchmarks/test_*.py are
        # the heaviest timing users
        return bool(ctx.dir_parts & TIMING_DIRS)

    def _aliases(self, tree: ast.AST) -> Tuple[Set[str], Set[str]]:
        """(names bound to the time module, names bound to time.time)."""
        modules: Set[str] = set()
        functions: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        modules.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        functions.add(alias.asname or "time")
        return modules, functions

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        modules, functions = self._aliases(ctx.tree)
        if not modules and not functions:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id in modules
            ):
                yield self.finding(ctx, node, self._MESSAGE)
            elif isinstance(func, ast.Name) and func.id in functions:
                yield self.finding(ctx, node, self._MESSAGE)


# ---------------------------------------------------------------------------
# dict-iteration-mutation
# ---------------------------------------------------------------------------

_DICT_VIEWS = frozenset({"keys", "items", "values"})
_MUTATING_METHODS = frozenset({"pop", "popitem", "clear", "update", "setdefault"})


@register
class DictIterationMutation(Rule):
    """Mutating a dict while iterating it raises RuntimeError (or worse).

    Adding or removing keys during ``for k in d`` / ``d.items()`` blows up
    at runtime only when the branch actually executes; iterate over
    ``list(d)`` (a snapshot) instead when mutation is intended.
    """

    id = "dict-iteration-mutation"
    description = "container mutated while being iterated"

    def _iterated_expr(self, node: ast.For) -> Optional[str]:
        iterator = node.iter
        if (
            isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Attribute)
            and iterator.func.attr in _DICT_VIEWS
            and not iterator.args
        ):
            return ast.unparse(iterator.func.value)
        if isinstance(iterator, (ast.Name, ast.Attribute)):
            return ast.unparse(iterator)
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            iterated = self._iterated_expr(node)
            if iterated is None:
                continue
            for stmt in node.body:
                for sub in _walk_shallow(stmt):
                    yield from self._check_mutation(ctx, sub, iterated)

    def _check_mutation(
        self, ctx: FileContext, node: ast.AST, iterated: str
    ) -> Iterator[Finding]:
        message = (
            f"'{iterated}' is mutated while being iterated; iterate over "
            f"list({iterated}) (a snapshot) or collect changes first"
        )
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and ast.unparse(target.value) == iterated
                ):
                    yield self.finding(ctx, node, message)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and ast.unparse(func.value) == iterated
            ):
                yield self.finding(ctx, node, message)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and ast.unparse(target.value) == iterated
                ):
                    yield self.finding(ctx, node, message)


# ---------------------------------------------------------------------------
# nonatomic-artifact-write
# ---------------------------------------------------------------------------

_ARTIFACT_SUFFIX = re.compile(r"\.(json|npz|npy)$", re.IGNORECASE)
_FILE_WRITE_METHODS = frozenset({"write_text", "write_bytes"})
_NP_SAVERS = frozenset({"save", "savez", "savez_compressed"})
_PATHISH_CALLS = frozenset({"str", "Path", "PurePath", "fspath"})
_WRITING_MODE = re.compile(r"[wax]")


@register
class NonatomicArtifactWrite(Rule):
    """On-disk artifacts must go through the ``repro.storage.atomic`` helpers.

    A plain ``write_text`` / ``open(..., "w")`` / ``np.savez`` on a
    ``.json`` / ``.npz`` / ``.npy`` artifact path truncates the
    destination before the new bytes land, so a crash mid-write leaves a
    corrupt artifact the next load chokes on. ``repro.storage.atomic``
    writes a same-directory temp file and ``os.replace``s it over the
    destination instead. Path evidence is traced through simple
    assignments (``OUT_PATH = ... / "BENCH_x.json"``), one level deep.
    """

    id = "nonatomic-artifact-write"
    description = (
        "direct write to a .json/.npz/.npy artifact path; use the "
        "repro.storage.atomic helpers (temp file + os.replace)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if Path(ctx.rel_path).name == "atomic.py":
            return False  # the helper implementation itself
        # benchmark test modules ARE artifact writers (BENCH_*.json);
        # ordinary test files exercise raw writes deliberately
        if ctx.is_test_file and "benchmarks" not in ctx.dir_parts:
            return False
        return True

    def _collect_assignments(self, tree: ast.AST) -> Dict[str, ast.expr]:
        table: Dict[str, ast.expr] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        table[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    table[node.target.id] = node.value
        return table

    def _artifact_name(
        self, expr: ast.expr, table: Dict[str, ast.expr], depth: int = 0
    ) -> Optional[str]:
        """A string constant with an artifact suffix inside ``expr``."""
        for sub in ast.walk(expr):
            if (
                isinstance(sub, ast.Constant)
                and isinstance(sub.value, str)
                and _ARTIFACT_SUFFIX.search(sub.value)
            ):
                return sub.value
            if isinstance(sub, ast.Name) and depth < 2:
                value = table.get(sub.id)
                if value is not None:
                    found = self._artifact_name(value, table, depth + 1)
                    if found:
                        return found
        return None

    def _is_json_dumps(self, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "dumps"
            and isinstance(expr.func.value, ast.Name)
            and expr.func.value.id == "json"
        )

    def _writing_mode(self, call: ast.Call, position: int) -> bool:
        mode: Optional[ast.expr] = None
        if len(call.args) > position:
            mode = call.args[position]
        else:
            for keyword in call.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
        return (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and bool(_WRITING_MODE.search(mode.value))
        )

    def _flag(self, ctx, node, path_hint: Optional[str]) -> Finding:
        where = f" ({path_hint!r})" if path_hint else ""
        return self.finding(
            ctx,
            node,
            f"non-atomic write to an artifact path{where}: a crash "
            "mid-write corrupts the previous artifact; use "
            "repro.storage.atomic (atomic_write_json/_text/_bytes/_npz)",
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        table = self._collect_assignments(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # pathlib writes: X.write_text(...) / X.write_bytes(...)
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _FILE_WRITE_METHODS
            ):
                name = self._artifact_name(func.value, table)
                if name is None and not (
                    func.attr == "write_text"
                    and node.args
                    and self._is_json_dumps(node.args[0])
                ):
                    continue
                yield self._flag(ctx, node, name)
            # numpy savers: np.save / np.savez / np.savez_compressed
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _NP_SAVERS
                and isinstance(func.value, ast.Name)
                and func.value.id in {"np", "numpy"}
                and node.args
            ):
                target = node.args[0]
                name = self._artifact_name(target, table)
                pathish = (
                    isinstance(target, ast.Call)
                    and isinstance(target.func, ast.Name)
                    and target.func.id in _PATHISH_CALLS
                )
                if name is None and not pathish:
                    continue  # e.g. an io.BytesIO handle
                yield self._flag(ctx, node, name)
            # builtin open(X, "w"/"wb") on an artifact path
            elif isinstance(func, ast.Name) and func.id == "open":
                if not node.args or not self._writing_mode(node, 1):
                    continue
                name = self._artifact_name(node.args[0], table)
                if name is not None:
                    yield self._flag(ctx, node, name)
            # pathlib opens: X.open("w") on an artifact path
            elif isinstance(func, ast.Attribute) and func.attr == "open":
                if not self._writing_mode(node, 0):
                    continue
                name = self._artifact_name(func.value, table)
                if name is not None:
                    yield self._flag(ctx, node, name)


# ---------------------------------------------------------------------------
# hardcoded-dtype
# ---------------------------------------------------------------------------

# layers that hold or move embedding matrices: dtype there is policy,
# owned by repro.precision; spelling it inline silently forks the policy
DTYPE_DIRS = frozenset(
    {"retriever", "shard", "ingest", "encoder", "nn", "serve"}
)
_POLICY_DTYPES = frozenset({"float64", "float32"})


@register
class HardcodedDtype(Rule):
    """Embedding-layer code must take its dtype from ``repro.precision``.

    The matrix dtype is one end-to-end policy: the encoder, the stores,
    the shard plans and the serving layer all read it from
    ``repro.precision`` (``Precision.dtype``, ``TRAINING_DTYPE``,
    ``ACCUM_DTYPE``, ``STORE_DTYPES``). A literal ``np.float64`` /
    ``np.float32`` / ``astype("float64")`` in those layers re-forks the
    policy per call site — exactly the drift that made the float32
    migration a fifteen-file hunt. ``repro/precision.py`` itself is the
    one place the names may be spelled.
    """

    id = "hardcoded-dtype"
    description = (
        "literal float64/float32 dtype in an embedding layer; take the "
        "dtype from repro.precision"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if Path(ctx.rel_path).name == "precision.py":
            return False  # the policy definition itself
        return bool(ctx.dir_parts & DTYPE_DIRS) and not ctx.is_test_file

    def _numpy_aliases(self, tree: ast.AST) -> Tuple[Set[str], Set[str]]:
        """(names bound to numpy, names bound to numpy.float64/float32)."""
        modules: Set[str] = set()
        members: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        modules.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy":
                for alias in node.names:
                    if alias.name in _POLICY_DTYPES:
                        members.add(alias.asname or alias.name)
        return modules, members

    def _flag(self, ctx: FileContext, node: ast.AST, spelled: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f"hardcoded dtype {spelled}: embedding-layer dtypes are "
            "policy — take them from repro.precision (Precision.dtype, "
            "TRAINING_DTYPE, ACCUM_DTYPE, STORE_DTYPES)",
        )

    def _string_dtype_args(self, node: ast.Call) -> Iterator[ast.expr]:
        """String dtype literals in astype(...) args or dtype= keywords."""
        func = node.func
        candidates: List[ast.expr] = []
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            candidates.extend(node.args[:1])
        candidates.extend(
            keyword.value
            for keyword in node.keywords
            if keyword.arg == "dtype"
        )
        for expr in candidates:
            if (
                isinstance(expr, ast.Constant)
                and isinstance(expr.value, str)
                and expr.value in _POLICY_DTYPES
            ):
                yield expr

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        modules, members = self._numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            # np.float64 / np.float32 attribute literals
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _POLICY_DTYPES
                and isinstance(node.value, ast.Name)
                and node.value.id in modules
            ):
                yield self._flag(
                    ctx, node, f"{node.value.id}.{node.attr}"
                )
            # from numpy import float64 [as f8] — any later use
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in members
            ):
                yield self._flag(ctx, node, node.id)
            # astype("float64") / dtype="float32" string literals
            elif isinstance(node, ast.Call):
                for expr in self._string_dtype_args(node):
                    yield self._flag(ctx, expr, repr(expr.value))


# ---------------------------------------------------------------------------
# blocking-in-async
# ---------------------------------------------------------------------------

_BLOCKING_SOCKET_METHODS = frozenset(
    {"recv", "recv_into", "recvfrom", "sendall", "accept", "makefile"}
)
_BLOCKING_PATH_METHODS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)


@register
class BlockingInAsync(Rule):
    """Coroutine bodies in the net layer must not block the event loop.

    One ``time.sleep`` or sync socket read inside the front door's
    ``async def`` handlers stalls *every* connection multiplexed on that
    loop — the failure is invisible under light test load and
    catastrophic under fan-out. Blocking work belongs in the worker
    processes or behind ``run_in_executor``/``asyncio.to_thread``
    (passing the blocking function *uncalled* is fine and does not
    fire). Nested synchronous ``def``s inside a coroutine are exempt:
    they only block if called, and the call site is what gets flagged.
    """

    id = "blocking-in-async"
    description = (
        "blocking call (sleep/socket/file IO) inside async def in net/"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return "net" in ctx.dir_parts

    def _aliases(self, tree: ast.AST) -> Tuple[Set[str], Set[str], Set[str]]:
        """(time-module aliases, socket-module aliases, blocking fn aliases).

        Function aliases cover ``from time import sleep`` and
        ``from socket import create_connection/socket/socketpair`` — the
        from-imported names that block when called bare.
        """
        time_modules: Set[str] = set()
        socket_modules: Set[str] = set()
        functions: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_modules.add(alias.asname or "time")
                    elif alias.name == "socket":
                        socket_modules.add(alias.asname or "socket")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name == "sleep":
                            functions.add(alias.asname or "sleep")
                elif node.module == "socket":
                    for alias in node.names:
                        if alias.name in (
                            "create_connection",
                            "socket",
                            "socketpair",
                        ):
                            functions.add(alias.asname or alias.name)
        return time_modules, socket_modules, functions

    def _flag_call(
        self,
        ctx: FileContext,
        node: ast.Call,
        time_modules: Set[str],
        socket_modules: Set[str],
        functions: Set[str],
    ) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                yield self.finding(
                    ctx,
                    node,
                    "open() blocks the event loop; read the file before "
                    "entering async code or use run_in_executor",
                )
            elif func.id in functions:
                yield self.finding(
                    ctx,
                    node,
                    f"{func.id}() is blocking inside async def; use the "
                    "asyncio equivalent or run_in_executor",
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        if isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner in time_modules and func.attr == "sleep":
                yield self.finding(
                    ctx,
                    node,
                    "time.sleep() stalls the event loop; use "
                    "await asyncio.sleep()",
                )
                return
            if owner in socket_modules:
                yield self.finding(
                    ctx,
                    node,
                    f"socket.{func.attr}() is synchronous; use "
                    "asyncio.open_connection/start_server",
                )
                return
        if func.attr in _BLOCKING_SOCKET_METHODS:
            yield self.finding(
                ctx,
                node,
                f".{func.attr}() is a blocking socket call; use the "
                "asyncio stream API",
            )
        elif func.attr in _BLOCKING_PATH_METHODS:
            yield self.finding(
                ctx,
                node,
                f".{func.attr}() does synchronous file IO inside async "
                "def; move it off the loop (run_in_executor)",
            )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        time_modules, socket_modules, functions = self._aliases(ctx.tree)
        for scope in ast.walk(ctx.tree):
            if not isinstance(scope, ast.AsyncFunctionDef):
                continue
            for node in _walk_shallow(scope):
                if isinstance(node, ast.Call):
                    yield from self._flag_call(
                        ctx, node, time_modules, socket_modules, functions
                    )


# ---------------------------------------------------------------------------
# graph-in-inference
# ---------------------------------------------------------------------------

#: modules whose ``Tensor`` is the autograd engine
_TENSOR_MODULES = frozenset({"repro.nn.tensor", "repro.nn"})


@register
class GraphInInference(Rule):
    """The fused inference module must never touch the autograd engine.

    ``repro/nn/infer.py`` exists to skip the graph: one ``Tensor``
    construction inside it silently re-introduces per-op grad closures
    and float64 temporaries on the hot encode path — and the parity
    tests would still pass, because the graph computes the same numbers,
    just slowly. So the boundary is enforced statically: any use of a
    ``Tensor`` alias (construction, isinstance, annotation), any
    ``module.Tensor`` attribute on an aliased autograd module, and any
    ``.backward()`` call inside the inference module is a finding.
    """

    id = "graph-in-inference"
    description = (
        "autograd Tensor use inside the fused inference module; "
        "repro/nn/infer.py must stay graph-free numpy"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return (
            "nn" in ctx.dir_parts
            and Path(ctx.rel_path).name == "infer.py"
        )

    def _aliases(self, tree: ast.AST) -> Tuple[Set[str], Set[str]]:
        """(names bound to Tensor, names bound to an autograd module)."""
        names: Set[str] = set()
        modules: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _TENSOR_MODULES:
                        modules.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                if node.module in _TENSOR_MODULES:
                    for alias in node.names:
                        if alias.name == "Tensor":
                            names.add(alias.asname or "Tensor")
                        elif alias.name == "tensor":
                            modules.add(alias.asname or "tensor")
        return names, modules

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        names, modules = self._aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in names
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{node.id} is the autograd engine; the fused "
                    "inference path must compute in plain numpy",
                )
            elif isinstance(node, ast.Attribute) and node.attr == "Tensor":
                owner = node.value
                if isinstance(owner, ast.Name) and owner.id in modules:
                    yield self.finding(
                        ctx,
                        node,
                        f"{owner.id}.Tensor is the autograd engine; the "
                        "fused inference path must compute in plain numpy",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "backward"
            ):
                yield self.finding(
                    ctx,
                    node,
                    ".backward() builds gradients; inference code has "
                    "no business backpropagating",
                )
