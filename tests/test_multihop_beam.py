"""Regression tests for the multi-hop beam bookkeeping (ISSUE 1).

* hop-2 off-by-one: the ``k_hop2 + 1`` overfetch exists only to absorb the
  hop-1 document itself; when hop 1 is absent from the hop-2 results the
  beam must still be truncated to exactly ``k_hop2`` survivors,
* ``k_paths=0`` must return zero paths (the ``or``-default swallowed the
  explicit zero),
* the path ranker's ``rerank(k=0)`` had the same falsy-zero bug.
"""

from collections import Counter

import pytest

from repro.pipeline.multihop import MultiHopConfig, MultiHopRetriever
from repro.pipeline.path_ranker import PathRanker
from repro.updater.updater import QuestionUpdater


@pytest.fixture(scope="module")
def multihop(retriever, encoder):
    updater = QuestionUpdater(encoder)
    return MultiHopRetriever(
        retriever, updater, MultiHopConfig(k_hop1=4, k_hop2=3, k_paths=64)
    )


class TestHop2BeamWidth:
    def test_beam_capped_when_hop1_doc_absent(
        self, multihop, retriever, hotpot, monkeypatch
    ):
        """Force every hop-2 result list to exclude its hop-1 document —
        the overfetched (k_hop2 + 1)-th result must then be dropped, not
        silently widen the per-candidate beam."""
        cfg = multihop.config
        original_batch = retriever.retrieve_batch
        # retrieve_paths makes exactly two retrieve_batch calls per
        # question batch: hop 1 (one row per question), then hop 2 (one
        # row per hop-1 candidate, concatenated across questions)
        state = {"hop": 0, "hop1_ids": []}

        def batch_without_hop1(matrix, k=10, **kwargs):
            if state["hop"] == 0:
                rows = original_batch(matrix, k=k, **kwargs)
                state["hop1_ids"] = [
                    r.doc_id for row in rows for r in row
                ]
                state["hop"] = 1
                return rows
            state["hop"] = 0
            flat = state["hop1_ids"]
            rows = original_batch(matrix, k=k + len(flat), **kwargs)
            return [
                [r for r in row if r.doc_id != flat[i]][:k]
                for i, row in enumerate(rows)
            ]

        monkeypatch.setattr(retriever, "retrieve_batch", batch_without_hop1)
        for question in hotpot.test[:6]:
            paths = multihop.retrieve_paths(question.text)
            per_hop1 = Counter(p.doc_ids[0] for p in paths)
            assert per_hop1, question.text
            assert max(per_hop1.values()) <= cfg.k_hop2

    def test_total_paths_bounded_by_beam_product(self, multihop, hotpot):
        cfg = multihop.config
        for question in hotpot.test[:6]:
            paths = multihop.retrieve_paths(question.text)
            per_hop1 = Counter(p.doc_ids[0] for p in paths)
            assert max(per_hop1.values()) <= cfg.k_hop2
            assert len(paths) <= cfg.k_hop1 * cfg.k_hop2


class TestKPathsZero:
    def test_zero_returns_no_paths(self, multihop, hotpot):
        assert multihop.retrieve_paths(hotpot.test[0].text, k_paths=0) == []

    def test_none_uses_config_default(self, retriever, encoder, hotpot):
        updater = QuestionUpdater(encoder)
        narrow = MultiHopRetriever(
            retriever, updater, MultiHopConfig(k_hop1=4, k_hop2=3, k_paths=2)
        )
        paths = narrow.retrieve_paths(hotpot.test[0].text)
        assert len(paths) == 2

    def test_explicit_k_overrides_config(self, multihop, hotpot):
        paths = multihop.retrieve_paths(hotpot.test[0].text, k_paths=1)
        assert len(paths) == 1


class TestRerankKZero:
    def test_rerank_k_zero_returns_empty(self, retriever, multihop, hotpot):
        question = hotpot.test[0].text
        paths = multihop.retrieve_paths(question, k_paths=4)
        ranker = PathRanker(retriever)
        assert ranker.rerank(question, paths, k=0) == []

    def test_rerank_k_none_returns_all(self, retriever, multihop, hotpot):
        question = hotpot.test[0].text
        paths = multihop.retrieve_paths(question, k_paths=4)
        ranker = PathRanker(retriever)
        assert len(ranker.rerank(question, paths, k=None)) == len(paths)
