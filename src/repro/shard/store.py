"""Persistence for sharded embedding stores: sibling generations, one manifest.

A sharded store is N ordinary :class:`~repro.ingest.embedding_store.
EmbeddingStore` directories (``shard-0000``, ``shard-0001``, ...) under
one parent plus a ``sharded_manifest.json`` naming them. Each shard
inherits the full store's crash-safety: content-addressed data files,
atomic manifest replacement, and the two-generation GC grace window.
The parent manifest is written last, so a crash mid-save leaves either
the previous sharded generation or a set of valid-but-unreferenced
shard directories — never a half-readable store.

Each document's rows live wholly in exactly one shard (assignment is
per-document), which is what makes per-shard scoring + global merge
provably identical to exact retrieval when no pruning is enabled.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.ingest.embedding_store import (
    EmbeddingStore,
    EmbeddingStoreError,
)
from repro.precision import ACCUM_DTYPE, ensure_float, quantize_rows
from repro.retriever.strategies import l2_normalize_rows
from repro.shard.assignment import (
    MODES,
    assign_documents,
    segment_means,
)
from repro.storage.atomic import atomic_write_json, atomic_write_npz

SHARDED_MANIFEST_NAME = "sharded_manifest.json"
SHARDED_STORE_VERSION = 1
#: Per-shard int8 sidecar: ``q`` (int8 rows) + ``scales`` (float32) of the
#: shard's *normalized* matrix, as :func:`repro.precision.quantize_rows`
#: derives them. Quantization is deterministic, so a plan that re-derives
#: the arrays from the float rows reproduces the sidecar byte-for-byte;
#: the sidecar's job is the 8x-smaller on-disk/RAM footprint.
QUANT_SIDECAR_NAME = "quant.npz"


class ShardedStoreError(EmbeddingStoreError):
    """The sharded manifest or one of its shards is missing or corrupt."""


def _shard_dir_name(shard_id: int) -> str:
    return f"shard-{shard_id:04d}"


@dataclass
class ShardedEmbeddingStore:
    """N sibling :class:`EmbeddingStore` generations under one manifest."""

    shards: List[EmbeddingStore]
    mode: str = "range"
    extra: Dict[str, object] = field(default_factory=dict)
    #: Loaded int8 sidecars, one ``{"q", "scales"}`` dict (or None) per
    #: shard; populated by :meth:`open` when the store was saved with
    #: ``quantize=True``.
    quant: Optional[List[Optional[Dict[str, np.ndarray]]]] = None

    @property
    def quantized(self) -> bool:
        return self.quant is not None

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def total_rows(self) -> int:
        return sum(int(s.matrix.shape[0]) for s in self.shards)

    @property
    def total_docs(self) -> int:
        return sum(len(s.doc_ids) for s in self.shards)

    def assignment(self) -> Dict[int, int]:
        """doc_id -> shard index, derived from the shard doc lists."""
        return {
            int(doc_id): shard_id
            for shard_id, shard in enumerate(self.shards)
            for doc_id in shard.doc_ids
        }

    # -- construction ----------------------------------------------------
    @classmethod
    def split(
        cls,
        store: EmbeddingStore,
        n_shards: int,
        mode: str = "range",
    ) -> "ShardedEmbeddingStore":
        """Partition one embedding store into ``n_shards`` shard stores.

        Documents are assigned per ``mode`` (contiguous doc-id ranges, or
        coarse k-means centroids over per-document mean embeddings);
        every row, hash and fingerprint is carried over verbatim, so
        :meth:`combined` reassembles a store byte-identical to the input.
        """
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if mode not in MODES:
            raise ValueError(
                f"unknown shard mode {mode!r} (expected {MODES})"
            )
        matrix = ensure_float(store.matrix)
        offsets = np.asarray(store.offsets, dtype=np.int64)
        n_docs = len(store.doc_ids)
        total = matrix.shape[0]
        stops = (
            np.concatenate([offsets[1:], [total]])
            if n_docs
            else np.zeros(0, dtype=np.int64)
        )
        if mode == "centroid" and n_shards > 1:
            doc_vectors = segment_means(
                l2_normalize_rows(matrix), offsets
            )
            labels = assign_documents(
                mode, n_docs, n_shards, doc_vectors=doc_vectors
            )
        else:
            labels = assign_documents("range", n_docs, n_shards)
        shards: List[EmbeddingStore] = []
        for shard_id in range(n_shards):
            positions = np.nonzero(labels == shard_id)[0]
            doc_ids = [int(store.doc_ids[p]) for p in positions]
            pieces = [matrix[offsets[p] : stops[p]] for p in positions]
            shard_matrix = (
                np.concatenate(pieces)
                if pieces
                else np.zeros(
                    (0, matrix.shape[1] if matrix.ndim == 2 else 0),
                    dtype=matrix.dtype,
                )
            )
            lengths = [int(stops[p] - offsets[p]) for p in positions]
            shard_offsets: List[int] = []
            cursor = 0
            for length in lengths:
                shard_offsets.append(cursor)
                cursor += length
            chosen = set(doc_ids)
            shards.append(
                EmbeddingStore(
                    matrix=np.ascontiguousarray(shard_matrix),
                    doc_ids=doc_ids,
                    offsets=shard_offsets,
                    row_hashes={
                        d: h
                        for d, h in store.row_hashes.items()
                        if int(d) in chosen
                    },
                    encoder_fingerprint=store.encoder_fingerprint,
                    construction_fingerprint=store.construction_fingerprint,
                    extra={
                        "shard_id": shard_id,
                        "shard_mode": mode,
                        "n_shards": n_shards,
                    },
                )
            )
        return cls(shards=shards, mode=mode, extra=dict(store.extra))

    def combined(self) -> EmbeddingStore:
        """Reassemble the single-store view, ascending by doc id.

        The result's layout matches what a fresh
        :meth:`~repro.retriever.single.SingleRetriever.refresh_embeddings`
        builds (ascending doc ids), so attaching it warm-starts with zero
        re-encoding regardless of how documents were sharded.
        """
        entries = []  # (doc_id, shard_index, local_index)
        for shard_index, shard in enumerate(self.shards):
            for local_index, doc_id in enumerate(shard.doc_ids):
                entries.append((int(doc_id), shard_index, local_index))
        entries.sort()
        pieces: List[np.ndarray] = []
        doc_ids: List[int] = []
        offsets: List[int] = []
        row_hashes: Dict[int, str] = {}
        cursor = 0
        dim = 0
        for shard in self.shards:
            if shard.matrix.ndim == 2 and shard.matrix.shape[1]:
                dim = int(shard.matrix.shape[1])
                break
        for doc_id, shard_index, local_index in entries:
            shard = self.shards[shard_index]
            segment = shard.segment(local_index)
            pieces.append(np.asarray(segment))
            doc_ids.append(doc_id)
            offsets.append(cursor)
            cursor += int(segment.shape[0])
            if doc_id in shard.row_hashes:
                row_hashes[doc_id] = shard.row_hashes[doc_id]
        empty_dtype = (
            self.shards[0].matrix.dtype if self.shards else ACCUM_DTYPE
        )
        matrix = (
            np.concatenate(pieces)
            if pieces
            else np.zeros((0, dim), dtype=empty_dtype)
        )
        first = self.shards[0] if self.shards else None
        return EmbeddingStore(
            matrix=matrix,
            doc_ids=doc_ids,
            offsets=offsets,
            row_hashes=row_hashes,
            encoder_fingerprint=(
                first.encoder_fingerprint if first is not None else ""
            ),
            construction_fingerprint=(
                first.construction_fingerprint if first is not None else ""
            ),
            extra=dict(self.extra),
        )

    # -- persistence -----------------------------------------------------
    def save(
        self, directory: Union[str, Path], quantize: bool = False
    ) -> Path:
        """Write every shard store, then the sharded manifest (last).

        ``quantize=True`` additionally writes each shard's int8 sidecar
        (``quant.npz``: the quantized *normalized* rows + per-row float32
        scales) and records the fact in the manifest, so :meth:`open`
        loads the sidecars back.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        shard_dirs: List[str] = []
        for shard_id, shard in enumerate(self.shards):
            name = _shard_dir_name(shard_id)
            shard.save(directory / name)
            shard_dirs.append(name)
            if quantize:
                q, scales = quantize_rows(
                    l2_normalize_rows(np.asarray(shard.matrix))
                )
                atomic_write_npz(
                    directory / name / QUANT_SIDECAR_NAME,
                    {"q": q, "scales": scales},
                )
        manifest = {
            "version": SHARDED_STORE_VERSION,
            "mode": self.mode,
            "n_shards": self.n_shards,
            "shard_dirs": shard_dirs,
            "quantized": bool(quantize),
            "total_rows": self.total_rows,
            "total_docs": self.total_docs,
            "extra": self.extra,
        }
        atomic_write_json(directory / SHARDED_MANIFEST_NAME, manifest)
        return directory

    @classmethod
    def open(
        cls, directory: Union[str, Path], mmap: bool = True
    ) -> "ShardedEmbeddingStore":
        """Load a sharded store saved by :meth:`save`."""
        directory = Path(directory)
        manifest_path = directory / SHARDED_MANIFEST_NAME
        if not manifest_path.exists():
            raise ShardedStoreError(
                f"no sharded embedding store at {directory}"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ShardedStoreError(
                f"unreadable sharded manifest: {error}"
            ) from error
        version = manifest.get("version")
        if version != SHARDED_STORE_VERSION:
            raise ShardedStoreError(
                f"sharded store version {version!r} != "
                f"{SHARDED_STORE_VERSION}"
            )
        mode = str(manifest.get("mode", "range"))
        shard_dirs = manifest.get("shard_dirs")
        if not isinstance(shard_dirs, list) or not all(
            isinstance(name, str) for name in shard_dirs
        ):
            raise ShardedStoreError("malformed sharded manifest: shard_dirs")
        shards = [
            EmbeddingStore.open(directory / name, mmap=mmap)
            for name in shard_dirs
        ]
        quant: Optional[List[Optional[Dict[str, np.ndarray]]]] = None
        if manifest.get("quantized"):
            quant = []
            for name in shard_dirs:
                sidecar_path = directory / name / QUANT_SIDECAR_NAME
                if not sidecar_path.exists():
                    raise ShardedStoreError(
                        f"quantized manifest but {name} has no "
                        f"{QUANT_SIDECAR_NAME}"
                    )
                with np.load(sidecar_path) as sidecar:
                    quant.append(
                        {"q": sidecar["q"], "scales": sidecar["scales"]}
                    )
        return cls(
            shards=shards,
            mode=mode,
            extra=dict(manifest.get("extra") or {}),
            quant=quant,
        )
