"""Micro-benchmark: encoder token throughput, graph vs fused inference.

Encodes a generated world's field texts twice through the same
:class:`MiniBertEncoder` weights:

* **graph** — ``encode_numpy_graph``, the autograd reference path
  (``Tensor`` ops in float64, cast at the boundary), and
* **fused** — ``encode_numpy``, the :class:`repro.nn.infer` session
  (flat plan of fused numpy kernels, length-bucketed batches, compute
  in the precision policy's dtype).

Both legs count the same tokens, so tokens/sec is directly comparable.

Gates (from the fused-inference issue):

* fused tokens/sec >= 2x graph tokens/sec — asserted only on hosts with
  >= 4 CPUs; smaller boxes still record the ratio with ``cpu_limited``
  set so readers don't mistake a starved BLAS for a regression;
* in float64 mode the fused [CLS] vector is <= 1e-6 from the graph's
  (unconditional — parity doesn't depend on core count);
* downstream top-k retrieval over the benchmark world is identical
  (doc ids and matched triples) whether the store was encoded by the
  graph path or the fused path (unconditional).

Writes ``BENCH_encoder.json`` next to this file. Marked ``perf`` +
``encoder``; tier-1 (``testpaths = tests``) never collects it.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import World, WorldConfig, build_corpus
from repro.encoder import EncoderConfig, MiniBertEncoder
from repro.nn.infer import InferenceSession
from repro.precision import F64
from repro.retriever import SingleRetriever, build_triple_store
from repro.storage.atomic import atomic_write_json
from repro.text import Vocab, tokenize

pytestmark = [pytest.mark.perf, pytest.mark.encoder]

OUT_PATH = Path(__file__).parent / "BENCH_encoder.json"
BENCH_WORLD = WorldConfig(
    n_persons=48,
    n_clubs=12,
    n_bands=12,
    n_cities=10,
    n_countries=4,
    n_companies=8,
    n_films=8,
    n_universities=4,
    n_awards=4,
    seed=11,
)
ENCODER_CONFIG = EncoderConfig(dim=64, n_layers=2, n_heads=4, max_len=64)
BATCH_SIZE = 64
REPEATS = 3
MIN_SPEEDUP = 2.0
K = 5

QUESTIONS = [
    "Where was the first person born ?",
    "Which club does the historian play for ?",
    "What is linked to the novelist ?",
    "Which city is the band from ?",
]


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def bench_setup():
    """(texts, store, corpus, vocab) for the benchmark world."""
    world = World(BENCH_WORLD)
    corpus = build_corpus(world)
    store = build_triple_store(corpus)
    texts = [store.field_text(d.doc_id) for d in corpus]
    vocab = Vocab.from_texts([d.text for d in corpus], tokenize)
    return texts, store, corpus, vocab


def _encoder(vocab, texts, **kwargs) -> MiniBertEncoder:
    encoder = MiniBertEncoder(vocab, ENCODER_CONFIG, **kwargs)
    encoder.fit_idf(texts)
    return encoder


def _time_encode(encode, texts) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        encode(texts, batch_size=BATCH_SIZE)
        best = min(best, time.perf_counter() - start)
    return best


def test_encoder_throughput(bench_setup):
    texts, store, corpus, vocab = bench_setup
    cpus = _cpus()
    cpu_limited = cpus < 4
    encoder = _encoder(vocab, texts)
    total_tokens = sum(len(encoder.text_to_ids(t)) for t in texts)

    # -- throughput: graph reference vs fused session --------------------
    encoder.encode_numpy(texts[:8])  # warm (bake the session, touch BLAS)
    encoder.encode_numpy_graph(texts[:8])
    graph_s = _time_encode(encoder.encode_numpy_graph, texts)
    fused_s = _time_encode(encoder.encode_numpy, texts)
    graph_tps = total_tokens / graph_s
    fused_tps = total_tokens / fused_s
    speedup = fused_tps / graph_tps if graph_tps else 0.0

    # -- parity: fused [CLS] vs graph [CLS] in float64 -------------------
    cls_config = EncoderConfig(dim=64, n_layers=2, n_heads=4, max_len=64,
                               pooling="cls")
    cls_encoder = MiniBertEncoder(vocab, cls_config, precision="float64")
    sample = texts[:32]
    ids, mask = cls_encoder._pad_bucket(
        [cls_encoder.text_to_ids(t) for t in sample], F64
    )
    model = cls_encoder.model.eval()
    graph_cls = model.encode_cls(ids, mask=mask).numpy()
    fused_cls = InferenceSession(model, dtype=F64).encode_cls(ids, mask=mask)
    cls_max_diff = float(np.abs(fused_cls - graph_cls).max())

    # -- downstream: top-k identical graph-encoded vs fused-encoded ------
    graph_encoder = _encoder(vocab, texts)
    graph_encoder.encode_numpy = graph_encoder.encode_numpy_graph
    fused_encoder = _encoder(vocab, texts)
    graph_retriever = SingleRetriever(graph_encoder, store)
    graph_retriever.refresh_embeddings()
    fused_retriever = SingleRetriever(fused_encoder, store)
    fused_retriever.refresh_embeddings()
    topk_identical = True
    for question in QUESTIONS:
        graph_docs = graph_retriever.retrieve(question, k=K)
        fused_docs = fused_retriever.retrieve(question, k=K)
        if [d.doc_id for d in graph_docs] != [d.doc_id for d in fused_docs]:
            topk_identical = False
        if [str(d.matched_triple) for d in graph_docs] != [
            str(d.matched_triple) for d in fused_docs
        ]:
            topk_identical = False

    payload = {
        "n_docs": len(texts),
        "total_tokens": int(total_tokens),
        "dim": ENCODER_CONFIG.dim,
        "n_layers": ENCODER_CONFIG.n_layers,
        "n_heads": ENCODER_CONFIG.n_heads,
        "batch_size": BATCH_SIZE,
        "cpus": cpus,
        "cpu_limited": cpu_limited,
        "graph_seconds": graph_s,
        "fused_seconds": fused_s,
        "graph_tokens_per_sec": graph_tps,
        "fused_tokens_per_sec": fused_tps,
        "speedup": speedup,
        "cls_max_abs_diff_float64": cls_max_diff,
        "topk_identical": topk_identical,
        "k": K,
    }
    atomic_write_json(OUT_PATH, payload, indent=2)
    print(
        f"\nencoder throughput @ {len(texts)} docs / {total_tokens} tokens: "
        f"graph {graph_tps:.0f} tokens/s, fused {fused_tps:.0f} tokens/s "
        f"({speedup:.1f}x), float64 [CLS] max diff {cls_max_diff:.2e}, "
        f"top-{K} identical: {topk_identical}"
    )
    # parity and determinism gates are unconditional
    assert cls_max_diff <= 1e-6, payload
    assert topk_identical, payload
    # the speedup bar only means something with real cores behind BLAS
    if not cpu_limited:
        assert speedup >= MIN_SPEEDUP, payload
