"""Experiment context: builds and caches everything the benches share.

One :class:`ExperimentContext` holds the world, corpus, datasets, triple
stores (constructed + per-extractor), indexes, the trained Triple-Fact
Retrieval system and the trained baselines. Building the trained models is
expensive (minutes of CPU fine-tuning), so the context is lazy — each
component is built on first use — and module-cached so every benchmark in
one pytest session reuses the same trained system.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:
``small`` (default, minutes) or ``full`` (tens of minutes, closer shape
fidelity).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.golden_retriever import GoldEnRetriever
from repro.baselines.hop_retriever import HopRetrieverBaseline
from repro.baselines.lexical import LexicalRetriever
from repro.baselines.mdr import MDRRetriever
from repro.baselines.path_retriever import PathRetrieverBaseline, PathRetrieverConfig
from repro.baselines.dense_base import DenseConfig
from repro.baselines.tprr import TPRRRetriever
from repro.data.corpus import Corpus
from repro.data.documents import build_corpus
from repro.data.hotpot import HotpotDataset, build_hotpot_dataset
from repro.data.world import World, WorldConfig
from repro.encoder.minibert import EncoderConfig, MiniBertEncoder
from repro.index.entity_index import EntityIndex
from repro.oie.minie import MinIEExtractor
from repro.oie.pattern import PatternExtractor
from repro.oie.union import UnionExtractor
from repro.pipeline.framework import FrameworkConfig, TripleFactRetrieval
from repro.pipeline.multihop import MultiHopConfig
from repro.pipeline.path_ranker import PathRankerConfig
from repro.retriever.negatives import mine_training_examples
from repro.retriever.store import TripleStore, build_triple_store
from repro.retriever.trainer import TrainerConfig
from repro.text.tokenize import tokenize
from repro.text.vocab import Vocab
from repro.updater.updater import UpdaterConfig


@dataclass
class ExperimentScale:
    """Sizing of one benchmark run."""

    name: str
    world: WorldConfig
    comparison_per_kind: int
    descriptive_prob: float = 0.45
    partial_name_prob: float = 0.2
    retriever_epochs: int = 3
    retriever_lr: float = 3e-4
    baseline_epochs: int = 2
    n_eval: int = 150
    encoder: EncoderConfig = field(
        default_factory=lambda: EncoderConfig(
            dim=96, n_layers=1, n_heads=4, max_len=40, residual_scale=0.05
        )
    )


SMALL = ExperimentScale(
    name="small",
    world=WorldConfig(
        n_persons=70,
        n_clubs=20,
        n_bands=20,
        n_cities=25,
        n_countries=6,
        n_companies=10,
        n_films=14,
        n_universities=8,
        n_awards=6,
        seed=13,
    ),
    comparison_per_kind=15,
    retriever_epochs=2,
    baseline_epochs=1,
    n_eval=100,
)

FULL = ExperimentScale(
    name="full",
    world=WorldConfig(
        n_persons=150,
        n_clubs=40,
        n_bands=40,
        n_cities=50,
        n_countries=8,
        n_companies=20,
        n_films=30,
        n_universities=15,
        n_awards=10,
        seed=13,
    ),
    comparison_per_kind=30,
    retriever_epochs=3,
    baseline_epochs=2,
    n_eval=150,
)


def current_scale() -> ExperimentScale:
    """The scale selected by REPRO_BENCH_SCALE (small | full)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    return FULL if name == "full" else SMALL


class ExperimentContext:
    """Lazily built, shared experiment state."""

    def __init__(self, scale: Optional[ExperimentScale] = None):
        self.scale = scale or current_scale()
        self._world: Optional[World] = None
        self._corpus: Optional[Corpus] = None
        self._hotpot: Optional[HotpotDataset] = None
        self._linker: Optional[EntityIndex] = None
        self._store: Optional[TripleStore] = None
        self._extractor_stores: Dict[str, TripleStore] = {}
        self._lexical: Optional[LexicalRetriever] = None
        self._system: Optional[TripleFactRetrieval] = None
        self._baselines: Dict[str, object] = {}

    # -- data ------------------------------------------------------------
    @property
    def world(self) -> World:
        if self._world is None:
            self._world = World(self.scale.world)
        return self._world

    @property
    def corpus(self) -> Corpus:
        if self._corpus is None:
            self._corpus = build_corpus(self.world)
        return self._corpus

    @property
    def hotpot(self) -> HotpotDataset:
        if self._hotpot is None:
            self._hotpot = build_hotpot_dataset(
                self.world,
                self.corpus,
                comparison_per_kind=self.scale.comparison_per_kind,
                descriptive_prob=self.scale.descriptive_prob,
                partial_name_prob=self.scale.partial_name_prob,
            )
        return self._hotpot

    @property
    def eval_questions(self):
        return self.hotpot.test[: self.scale.n_eval]

    @property
    def train_sample(self):
        return self.hotpot.train[: self.scale.n_eval]

    @property
    def linker(self) -> EntityIndex:
        if self._linker is None:
            self._linker = EntityIndex(self.corpus.titles())
            for document in self.corpus:
                self._linker.add_document(document.doc_id, document.text)
        return self._linker

    @property
    def store(self) -> TripleStore:
        """The constructed triple store (Algorithm 1 over pattern ∪ MinIE)."""
        if self._store is None:
            self._store = build_triple_store(self.corpus, linker=self.linker)
        return self._store

    def extractor_store(self, which: str) -> TripleStore:
        """Raw single-extractor stores for Table III.

        ``which``: "minie" or "stanford" — the un-minimized extraction of
        one tool (no Algorithm 1), as the paper's MinIE-TFS / StanfordIE-TFS
        columns use the tools' own outputs.
        """
        if which not in self._extractor_stores:
            extractor = MinIEExtractor() if which == "minie" else PatternExtractor()
            store = TripleStore(self.corpus)
            for document in self.corpus:
                triples = extractor.extract_document(
                    document.text,
                    title=document.title,
                    entity_kind=document.entity.kind,
                )
                store.put(document.doc_id, triples)
            self._extractor_stores[which] = store
        return self._extractor_stores[which]

    @property
    def lexical(self) -> LexicalRetriever:
        """BM25 over text + constructed-TFS + per-extractor fields."""
        if self._lexical is None:
            extra = {
                "minie_triples": {
                    d.doc_id: self.extractor_store("minie").field_text(d.doc_id)
                    for d in self.corpus
                },
                "stanford_triples": {
                    d.doc_id: self.extractor_store("stanford").field_text(d.doc_id)
                    for d in self.corpus
                },
            }
            self._lexical = LexicalRetriever(
                self.corpus, store=self.store, extra_fields=extra
            )
        return self._lexical

    # -- trained systems ------------------------------------------------------
    @property
    def system(self) -> TripleFactRetrieval:
        """The trained Triple-Fact Retrieval system (cached)."""
        if self._system is None:
            scale = self.scale
            config = FrameworkConfig(
                encoder=scale.encoder,
                retriever=TrainerConfig(
                    epochs=scale.retriever_epochs, lr=scale.retriever_lr
                ),
                updater=UpdaterConfig(epochs=3),
                ranker=PathRankerConfig(epochs=3),
                multihop=MultiHopConfig(k_hop1=8, k_hop2=4, k_paths=8),
                max_ranker_questions=min(150, len(self.hotpot.train)),
                verbose=bool(os.environ.get("REPRO_VERBOSE")),
            )
            system = TripleFactRetrieval(config)
            system.fit(self.corpus, self.hotpot)
            self._system = system
        return self._system

    def _shared_vocab(self) -> Vocab:
        texts = [d.text for d in self.corpus] + [
            q.text for q in self.hotpot.train
        ]
        return Vocab.from_texts(texts, tokenize)

    def _new_encoder(self, seed: int) -> MiniBertEncoder:
        config = EncoderConfig(**{**self.scale.encoder.__dict__, "seed": seed})
        encoder = MiniBertEncoder(self._shared_vocab(), config)
        encoder.fit_idf([self.store.field_text(d.doc_id) for d in self.corpus])
        return encoder

    def baseline(self, name: str):
        """Trained baseline retrievers, built on demand.

        Names: "tprr", "mdr", "hop", "path", "golden".
        """
        if name in self._baselines:
            return self._baselines[name]
        scale = self.scale
        # dense baselines: lr 3e-4 measurably degrades the full-text
        # bi-encoders below their untrained quality; 1e-4 is their stable
        # regime on this corpus
        dense_config = DenseConfig(epochs=scale.baseline_epochs, lr=1e-4)
        if name == "golden":
            instance = GoldEnRetriever(self.corpus, linker=self.linker)
        elif name == "tprr":
            instance = TPRRRetriever(
                self._new_encoder(seed=41), self.corpus, dense_config
            )
            instance.train(self._mined_examples())
        elif name == "mdr":
            instance = MDRRetriever(
                self._new_encoder(seed=42), self.corpus, dense_config
            )
            instance.train(self._mined_examples())
        elif name == "hop":
            instance = HopRetrieverBaseline(
                self._new_encoder(seed=43),
                self.corpus,
                linker=self.linker,
                config=dense_config,
            )
            instance.train(self._mined_examples())
        elif name == "path":
            instance = PathRetrieverBaseline(
                self._new_encoder(seed=44),
                self.corpus,
                config=PathRetrieverConfig(epochs=scale.baseline_epochs),
            )
            instance.train(self.hotpot.train)
        else:
            raise ValueError(f"unknown baseline {name!r}")
        self._baselines[name] = instance
        return instance

    def _mined_examples(self):
        if not hasattr(self, "_examples_cache"):
            self._examples_cache = mine_training_examples(
                self.hotpot.train, self.corpus, self.store
            )
        return self._examples_cache


_CONTEXT: Optional[ExperimentContext] = None


def shared_context() -> ExperimentContext:
    """The process-wide experiment context (built once per pytest run)."""
    global _CONTEXT
    if _CONTEXT is None:
        _CONTEXT = ExperimentContext()
    return _CONTEXT
