"""Tests for ``repro.nn.infer``: the graph-free fused inference engine.

The load-bearing claims:

* fused forwards match the autograd graph path to <= 1e-6 in float64
  mode (in practice ~1e-12) across layer counts, head counts and ragged
  batches, and to float32 rounding in the default mode;
* the fused kernels (layer norm, softmax, GELU) match straightforward
  numpy references on arbitrary inputs (hypothesis);
* length-bucketed ``encode_numpy`` returns embeddings in the original
  text order regardless of batch size or input ordering;
* sessions detect weight replacement (``stale()``) and the encoder
  rebakes, so optimizer steps and ``load_weights`` are never served
  from a stale snapshot;
* downstream top-k retrieval is byte-identical whether the store was
  encoded by the graph path or the fused path, unsharded and at
  1/2/4 shards.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoder.minibert import EncoderConfig, MiniBertEncoder
from repro.nn import SGD, InferenceSession, Module, TransformerEncoder
from repro.nn.infer import fused_gelu, fused_layer_norm, fused_softmax
from repro.nn.serialize import load_weights, save_weights
from repro.precision import F32, F64
from repro.retriever.single import SingleRetriever
from repro.text.vocab import Vocab

SENTENCES = [
    "the club was founded in 1885",
    "the band was formed in 1991 in the city",
    "the city lies on the river",
    "the striker played for the club",
    "the",
    "the historian wrote about the club and the band and the river",
]


def _model(n_layers=2, n_heads=2, dim=16, seed=3):
    return TransformerEncoder(
        vocab_size=40, dim=dim, n_layers=n_layers, n_heads=n_heads,
        max_len=12, seed=seed,
    ).eval()


def _ragged_ids(rng, rows=5, width=9, vocab_size=40):
    ids = rng.randint(1, vocab_size, size=(rows, width))
    for row in range(rows):
        ids[row, rng.randint(2, width) :] = 0  # pad tails of varying length
    return ids


# ---------------------------------------------------------------------------
# fused kernels vs references (hypothesis)
# ---------------------------------------------------------------------------

finite_rows = st.integers(min_value=1, max_value=6)
finite_cols = st.integers(min_value=2, max_value=12)


class TestFusedKernels:
    @settings(max_examples=40, deadline=None)
    @given(
        rows=finite_rows,
        cols=finite_cols,
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        scale=st.floats(min_value=1e-3, max_value=1e3),
    )
    def test_layer_norm_matches_two_pass_reference(
        self, rows, cols, seed, scale
    ):
        rng = np.random.RandomState(seed)
        x = rng.randn(rows, cols) * scale
        gamma = rng.randn(cols)
        beta = rng.randn(cols)
        eps = 1e-5
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        reference = centered / np.sqrt(variance + eps) * gamma + beta
        fused = fused_layer_norm(x, gamma, beta, eps)
        np.testing.assert_allclose(fused, reference, rtol=1e-7, atol=1e-9)

    def test_layer_norm_out_buffer_and_alias_guard(self):
        x = np.random.RandomState(0).randn(3, 8)
        out = np.empty_like(x)
        result = fused_layer_norm(x, np.ones(8), np.zeros(8), 1e-5, out=out)
        assert result is out
        with pytest.raises(ValueError):
            fused_layer_norm(x, np.ones(8), np.zeros(8), 1e-5, out=x)

    def test_layer_norm_constant_rows_stay_finite(self):
        # E[x^2] - mean^2 cancels to (tiny negative) zero on constant
        # rows; the clamp keeps the output finite and beta-valued
        x = np.full((2, 6), 3.7)
        fused = fused_layer_norm(x, np.ones(6), np.zeros(6), 1e-5)
        assert np.isfinite(fused).all()
        np.testing.assert_allclose(fused, 0.0, atol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(
        rows=finite_rows,
        cols=finite_cols,
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        shift=st.floats(min_value=-500.0, max_value=500.0),
    )
    def test_softmax_matches_reference_and_normalizes(
        self, rows, cols, seed, shift
    ):
        rng = np.random.RandomState(seed)
        scores = rng.randn(rows, cols) * 10.0 + shift
        shifted = scores - scores.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        reference = exp / exp.sum(axis=-1, keepdims=True)
        fused = fused_softmax(scores.copy())
        np.testing.assert_allclose(fused, reference, rtol=1e-12, atol=1e-15)
        np.testing.assert_allclose(fused.sum(axis=-1), 1.0, rtol=1e-12)

    def test_softmax_masked_lanes_are_exact_zero(self):
        from repro.precision import mask_bias_value

        scores = np.array([[1.0, 2.0, mask_bias_value(F64)]])
        fused = fused_softmax(scores.copy())
        assert fused[0, 2] == 0.0
        scores32 = np.array([[1.0, 2.0, mask_bias_value(F32)]], dtype=F32)
        assert fused_softmax(scores32.copy())[0, 2] == 0.0

    def test_gelu_matches_graph_formula(self):
        rng = np.random.RandomState(1)
        x = rng.randn(4, 7) * 3.0
        reference = x * (0.5 * (1.0 + _erf_ref(x / np.sqrt(2.0))))
        fused = fused_gelu(x.copy())
        np.testing.assert_array_equal(fused, reference)  # bitwise


def _erf_ref(x):
    from scipy.special import erf

    return erf(x)


# ---------------------------------------------------------------------------
# session parity vs the graph path
# ---------------------------------------------------------------------------


class TestSessionParity:
    @pytest.mark.parametrize("n_layers", [1, 2, 3])
    @pytest.mark.parametrize("n_heads", [1, 2, 4])
    def test_float64_within_1e6_of_graph(self, n_layers, n_heads):
        model = _model(n_layers=n_layers, n_heads=n_heads)
        ids = _ragged_ids(np.random.RandomState(n_layers * 7 + n_heads))
        mask = (ids != 0).astype(F64)
        graph = model(ids, mask=mask).numpy()
        fused = InferenceSession(model, dtype=F64).forward(ids, mask=mask)
        assert fused.dtype == F64
        np.testing.assert_allclose(fused, graph, atol=1e-6)
        # the gate in practice is far tighter than the contract
        assert np.abs(fused - graph).max() < 1e-9

    def test_float32_within_rounding_of_graph(self):
        model = _model()
        ids = _ragged_ids(np.random.RandomState(11))
        mask = (ids != 0).astype(F64)
        graph = model(ids, mask=mask).numpy()
        fused = InferenceSession(model, dtype=F32).forward(
            ids, mask=mask.astype(F32)
        )
        assert fused.dtype == F32
        np.testing.assert_allclose(fused, graph, rtol=1e-4, atol=1e-5)

    def test_mask_defaults_to_pad_id(self):
        model = _model()
        ids = _ragged_ids(np.random.RandomState(2))
        session = InferenceSession(model, dtype=F64)
        explicit = session.forward(ids, mask=(ids != 0).astype(F64))
        np.testing.assert_array_equal(session.forward(ids), explicit)

    def test_encode_cls_matches_graph(self):
        model = _model()
        ids = _ragged_ids(np.random.RandomState(4))
        mask = (ids != 0).astype(F64)
        graph = model.encode_cls(ids, mask=mask).numpy()
        fused = InferenceSession(model, dtype=F64).encode_cls(ids, mask=mask)
        np.testing.assert_allclose(fused, graph, atol=1e-9)

    def test_max_len_enforced(self):
        model = _model()
        session = InferenceSession(model, dtype=F64)
        with pytest.raises(ValueError):
            session.forward(np.ones((1, model.max_len + 1), dtype=np.int64))

    def test_unknown_module_refuses_to_bake(self):
        model = _model()

        class Mystery(Module):
            pass

        model.register_module("mystery", Mystery())
        with pytest.raises(TypeError):
            InferenceSession(model, dtype=F64)

    def test_stale_after_optimizer_step_and_load(self, tmp_path):
        model = _model(n_layers=1)
        session = InferenceSession(model, dtype=F64)
        assert not session.stale()
        save_weights(model, tmp_path / "weights.npz")
        optimizer = SGD(model.parameters(), lr=0.1)
        ids = _ragged_ids(np.random.RandomState(5))
        model.train()
        loss = (model(ids) * model(ids)).sum()
        loss.backward()
        optimizer.step()
        assert session.stale()
        fresh = InferenceSession(model.eval(), dtype=F64)
        assert not fresh.stale()
        load_weights(model, tmp_path / "weights.npz")
        assert fresh.stale()


# ---------------------------------------------------------------------------
# encoder integration: bucketing, rebake, dtype modes
# ---------------------------------------------------------------------------


@pytest.fixture()
def bucketing_encoder():
    vocab = Vocab.from_tokens(" ".join(SENTENCES).split())
    return MiniBertEncoder(
        vocab, EncoderConfig(dim=16, n_layers=2, n_heads=2, max_len=16)
    )


class TestLengthBucketing:
    def test_results_come_back_in_input_order(self, bucketing_encoder):
        # shuffled lengths force the bucket sort to permute the batch;
        # every row must still hold its own text's embedding
        texts = sorted(SENTENCES, key=len, reverse=True)
        batched = bucketing_encoder.encode_numpy(texts, batch_size=2)
        for row, text in enumerate(texts):
            single = bucketing_encoder.encode_numpy([text])[0]
            np.testing.assert_allclose(
                batched[row], single, rtol=1e-4, atol=1e-6,
                err_msg=f"row {row} ({text!r}) not in input order",
            )

    def test_order_regression_against_reversal(self, bucketing_encoder):
        forward = bucketing_encoder.encode_numpy(SENTENCES, batch_size=2)
        backward = bucketing_encoder.encode_numpy(SENTENCES[::-1], batch_size=2)
        np.testing.assert_allclose(
            forward, backward[::-1], rtol=1e-4, atol=1e-6
        )

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 5, 64])
    def test_bucket_boundaries_consistent(self, bucketing_encoder, batch_size):
        texts = SENTENCES * 2
        reference = bucketing_encoder.encode_numpy(texts, batch_size=64)
        bucketed = bucketing_encoder.encode_numpy(texts, batch_size=batch_size)
        np.testing.assert_allclose(bucketed, reference, atol=1e-10)

    @pytest.mark.parametrize("mode", ["float64", "float32"])
    def test_matches_graph_reference_path(self, mode):
        vocab = Vocab.from_tokens(" ".join(SENTENCES).split())
        encoder = MiniBertEncoder(
            vocab,
            EncoderConfig(dim=16, n_layers=2, n_heads=2, max_len=16),
            precision=mode,
        )
        fused = encoder.encode_numpy(SENTENCES, batch_size=3)
        graph = encoder.encode_numpy_graph(SENTENCES, batch_size=3)
        assert fused.dtype == graph.dtype
        if mode == "float64":
            np.testing.assert_allclose(fused, graph, atol=1e-6)
        else:
            np.testing.assert_allclose(fused, graph, rtol=1e-4, atol=1e-5)

    def test_cls_pooling_through_fused_path(self):
        vocab = Vocab.from_tokens(" ".join(SENTENCES).split())
        encoder = MiniBertEncoder(
            vocab,
            EncoderConfig(
                dim=16, n_layers=1, n_heads=2, max_len=16, pooling="cls"
            ),
            precision="float64",
        )
        fused = encoder.encode_numpy(SENTENCES, batch_size=2)
        graph = encoder.encode_numpy_graph(SENTENCES, batch_size=2)
        np.testing.assert_allclose(fused, graph, atol=1e-6)

    def test_session_rebakes_after_fit_idf_weight_change(
        self, bucketing_encoder
    ):
        before = bucketing_encoder.encode_numpy(SENTENCES)
        session_before = bucketing_encoder._infer_session
        bucketing_encoder.fit_idf(SENTENCES)  # pooling change, same weights
        after_idf = bucketing_encoder.encode_numpy(SENTENCES)
        assert not np.allclose(before, after_idf)  # idf reweights pooling
        parameter = bucketing_encoder.model.final_norm.gamma
        parameter.data = parameter.data * 1.5
        bucketing_encoder.encode_numpy(SENTENCES)
        assert bucketing_encoder._infer_session is not session_before

    def test_empty_input(self, bucketing_encoder):
        out = bucketing_encoder.encode_numpy([])
        assert out.shape == (0, 16)
        assert out.dtype == bucketing_encoder.precision.dtype

    def test_counts_tokens(self, bucketing_encoder):
        from repro.perf import COUNTERS

        before = COUNTERS.encoder_throughput()
        bucketing_encoder.encode_numpy(SENTENCES)
        after = COUNTERS.encoder_throughput()
        expected = sum(
            len(bucketing_encoder.text_to_ids(t)) for t in SENTENCES
        )
        assert after["tokens"] - before["tokens"] == expected
        assert after["seconds"] >= before["seconds"]


# ---------------------------------------------------------------------------
# downstream byte-identity: graph-encoded vs fused-encoded stores
# ---------------------------------------------------------------------------

QUESTIONS = [
    "Where was the first person born ?",
    "Which club does the historian play for ?",
    "What is linked to the novelist ?",
]


def _twin_encoders(vocab, store, corpus):
    """Two identically-initialized encoders (same seed, same idf fit)."""
    pair = []
    for _ in range(2):
        encoder = MiniBertEncoder(
            vocab, EncoderConfig(dim=24, n_layers=1, n_heads=2, max_len=32)
        )
        encoder.fit_idf([store.field_text(d.doc_id) for d in corpus])
        pair.append(encoder)
    return pair


class TestDownstreamTopkParity:
    @pytest.mark.parametrize("n_shards", [0, 1, 2, 4])
    def test_topk_identical_graph_vs_fused(
        self, vocab, store, corpus, n_shards
    ):
        graph_encoder, fused_encoder = _twin_encoders(vocab, store, corpus)
        # force the reference path on one retriever's encoder
        graph_encoder.encode_numpy = graph_encoder.encode_numpy_graph
        graph_retriever = SingleRetriever(graph_encoder, store)
        graph_retriever.refresh_embeddings()
        fused_retriever = SingleRetriever(fused_encoder, store)
        fused_retriever.refresh_embeddings()
        if n_shards:
            graph_retriever.build_shards(n_shards, mode="range")
            fused_retriever.build_shards(n_shards, mode="range")
        for question in QUESTIONS:
            graph_docs = graph_retriever.retrieve(question, k=5)
            fused_docs = fused_retriever.retrieve(question, k=5)
            assert [d.doc_id for d in graph_docs] == [
                d.doc_id for d in fused_docs
            ]
            assert [str(d.matched_triple) for d in graph_docs] == [
                str(d.matched_triple) for d in fused_docs
            ]
