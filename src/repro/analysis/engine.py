"""The two-phase lint driver: incremental, parallel, deterministic.

**Phase 1** visits every requested Python file once: read, hash, parse,
run the file-local rules, record the suppression map, and summarize the
module for the project model (:func:`repro.analysis.project.
summarize_module`). Each file's phase-1 output is pure in (content,
ruleset, config), so it caches per file (:mod:`repro.analysis.cache`)
and fans out over a process pool (``jobs > 1``) — ``Executor.map``
returns results in submission order, so the merged findings list is
byte-identical to a sequential run regardless of worker scheduling.

**Phase 2** always runs in the parent process: it assembles the
:class:`~repro.analysis.project.ProjectModel` from the phase-1 summaries
(cached or fresh — a warm run never re-parses, yet project rules still
see the whole project) and runs every selected
:class:`~repro.analysis.project_rules.ProjectRule`. Project findings
pass through the same per-line suppressions and per-rule ``allow``
filters as file-local ones.

Rules that must reason about the *whole* project (``dead-symbol``) are
told whether this run actually covers every configured lint path; on a
partial run (one file, one subtree) they stay silent rather than report
"never referenced" about references they never looked for.
"""

from __future__ import annotations

import ast
import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.cache import LintCache, run_fingerprint
from repro.analysis.config import LintConfig
from repro.analysis.core import (
    PARSE_ERROR,
    FileContext,
    Finding,
    LintReport,
    Rule,
    _is_allowed,
    _is_suppressed,
    _relativize,
    _resolve_rules,
    iter_python_files,
    suppressed_lines,
)
from repro.analysis.project import (
    ModuleSummary,
    build_project_model,
    summarize_module,
)
from repro.analysis.project_rules import ProjectRule

_FINDING_ORDER = lambda f: (f.path, f.line, f.col, f.rule_id)  # noqa: E731


@dataclass
class FileResult:
    """Everything phase 1 learned about one file."""

    rel_path: str
    findings: List[Finding] = field(default_factory=list)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    summary: Optional[ModuleSummary] = None
    cached: bool = False


def _error_result(rel_path: str, line: int, col: int, message: str) -> FileResult:
    return FileResult(
        rel_path=rel_path,
        findings=[Finding(PARSE_ERROR, rel_path, line, col, message)],
    )


def _analyze_file(
    path: Path,
    rules: Sequence[Rule],
    config: LintConfig,
    cache: Optional[LintCache],
) -> FileResult:
    """Phase 1 for one file: cache lookup, else parse + rules + summary."""
    rel_path = _relativize(path, config.root)
    try:
        raw = path.read_bytes()
    except OSError as error:
        return _error_result(rel_path, 1, 0, f"unreadable file: {error}")
    content_sha = hashlib.sha256(raw).hexdigest()
    if cache is not None:
        hit = cache.load(rel_path, content_sha)
        if hit is not None:
            findings, suppressions, summary = hit
            return FileResult(
                rel_path=rel_path,
                findings=findings,
                suppressions=suppressions,
                summary=summary,
                cached=True,
            )
    try:
        source = raw.decode("utf-8")
    except UnicodeDecodeError as error:
        return _error_result(rel_path, 1, 0, f"unreadable file: {error}")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return _error_result(
            rel_path,
            error.lineno or 1,
            (error.offset or 1) - 1,
            f"syntax error: {error.msg}",
        )
    ctx = FileContext(path=path, rel_path=rel_path, source=source, tree=tree)
    suppressions = suppressed_lines(source)
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if _is_suppressed(finding, suppressions):
                continue
            if _is_allowed(finding, config):
                continue
            findings.append(finding)
    findings.sort(key=_FINDING_ORDER)
    summary = summarize_module(ctx)
    if cache is not None:
        # parse errors never reach this point, so only complete results
        # are ever persisted
        cache.store(rel_path, content_sha, findings, suppressions, summary)
    return FileResult(
        rel_path=rel_path,
        findings=findings,
        suppressions=suppressions,
        summary=summary,
    )


# -- process-pool plumbing -------------------------------------------------
# Workers rebuild their rule instances from the (picklable) id lists via
# an initializer, so rule objects never cross the process boundary.

_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
    config: LintConfig,
    cache_dir: Optional[str],
    fingerprint: str,
) -> None:
    rules = [
        rule
        for rule in _resolve_rules(select, ignore)
        if not isinstance(rule, ProjectRule)
    ]
    _WORKER_STATE["rules"] = rules
    _WORKER_STATE["config"] = config
    _WORKER_STATE["cache"] = (
        LintCache(cache_dir, fingerprint) if cache_dir else None
    )


def _analyze_in_worker(path_str: str) -> FileResult:
    return _analyze_file(
        Path(path_str),
        _WORKER_STATE["rules"],  # type: ignore[arg-type]
        _WORKER_STATE["config"],  # type: ignore[arg-type]
        _WORKER_STATE["cache"],  # type: ignore[arg-type]
    )


def _contains(parent: Path, child: Path) -> bool:
    try:
        child.relative_to(parent)
    except ValueError:
        return False
    return True


def _is_full_run(requested: Sequence[Path], config: LintConfig) -> bool:
    """Whether ``requested`` covers every *existing* configured path.

    Configured paths that do not exist are vacuously covered — a config
    naming ``src``/``tests`` does not make a run over a temp directory
    "partial" when those directories are not there at all.
    """
    base = config.root if config.root is not None else Path.cwd()
    resolved = [Path(path).resolve() for path in requested]
    for configured in config.paths:
        target = Path(configured)
        if not target.is_absolute():
            target = base / target
        if not target.exists():
            continue
        target = target.resolve()
        if not any(
            target == candidate or _contains(candidate, target)
            for candidate in resolved
        ):
            return False
    return True


def run_lint(
    paths: Iterable[Union[str, Path]],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with the selected rules.

    ``select``/``ignore`` override the config's own lists when given;
    unknown rule ids raise ``ValueError`` so typos fail loudly.
    ``jobs > 1`` fans phase 1 over a process pool; ``cache_dir`` enables
    the per-file result cache there. Both are pure accelerations: the
    report is byte-identical to a sequential, uncached run.
    """
    config = config if config is not None else LintConfig()
    select = select if select is not None else (config.select or None)
    ignore = ignore if ignore is not None else (config.ignore or None)
    rules = _resolve_rules(select, ignore)
    local_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    requested = [Path(path) for path in paths]
    files = list(iter_python_files(requested))

    fingerprint = run_fingerprint(config, [rule.id for rule in rules])
    cache = LintCache(cache_dir, fingerprint) if cache_dir else None

    jobs = max(1, int(jobs))
    results: List[FileResult]
    if jobs == 1 or len(files) < 2:
        results = [
            _analyze_file(path, local_rules, config, cache) for path in files
        ]
    else:
        select_ids = list(select) if select is not None else None
        ignore_ids = list(ignore) if ignore is not None else None
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(
                select_ids,
                ignore_ids,
                config,
                str(cache_dir) if cache_dir else None,
                fingerprint,
            ),
        ) as pool:
            # map() yields in submission order: the merge is ordered and
            # deterministic no matter which worker finished first
            chunksize = max(1, len(files) // (jobs * 4))
            results = list(
                pool.map(
                    _analyze_in_worker,
                    [str(path) for path in files],
                    chunksize=chunksize,
                )
            )

    findings: List[Finding] = []
    for result in results:
        findings.extend(result.findings)

    if project_rules:
        summaries = [r.summary for r in results if r.summary is not None]
        model = build_project_model(
            summaries, full_project=_is_full_run(requested, config)
        )
        suppressions_by_path = {r.rel_path: r.suppressions for r in results}
        for rule in project_rules:
            for finding in rule.check_project(model, config):
                if _is_suppressed(
                    finding, suppressions_by_path.get(finding.path, {})
                ):
                    continue
                if _is_allowed(finding, config):
                    continue
                findings.append(finding)

    findings.sort(key=_FINDING_ORDER)
    return LintReport(
        findings=findings,
        files_scanned=len(files),
        files_cached=sum(1 for result in results if result.cached),
    )
