"""Unit tests for triple-set construction: relatedness, canopies,
set cover, sibling fusion, Algorithm 1 and the HAC baseline."""

import pytest

from repro.index.entity_index import EntityIndex
from repro.oie.triple import Triple
from repro.triples.canopy import build_canopies
from repro.triples.construct import ConstructionConfig, TripleSetConstructor
from repro.triples.hac import hac_cluster, hac_construct
from repro.triples.relatedness import prune_noise, relatedness
from repro.triples.setcover import covers, find_mother_child_pairs, greedy_cover
from repro.triples.sibling import (
    find_sibling_pairs,
    fuse_pair,
    fuse_siblings,
    sibling_similarity,
)

LYND = [
    Triple("Lynd", "is", "an American"),
    Triple("Lynd", "is", "American conscientious objector"),
    Triple("Lynd", "is", "Quaker"),
    Triple("Lynd", "is", "peace activist"),
    Triple("Lynd", "won", "a national prize"),
    Triple("civil rights activist", "is", "historian"),
]


class TestRelatedness:
    def _linker(self):
        linker = EntityIndex(["Lynd", "Howard Zinn"])
        return linker

    def test_related_triple_scores_positive(self):
        linker = self._linker()
        score = relatedness(LYND[0], ["Lynd", "Howard Zinn"], linker)
        assert score == 0.5

    def test_noise_triple_scores_zero(self):
        linker = self._linker()
        assert relatedness(LYND[5], ["Lynd"], linker) == 0.0

    def test_prune_noise_drops_unrelated(self):
        linker = self._linker()
        kept, scores = prune_noise(LYND, ["Lynd"], linker)
        assert LYND[5] not in kept
        assert len(kept) == len(scores) == 5

    def test_prune_keeps_everything_when_all_zero(self):
        linker = EntityIndex(["Nobody"])
        kept, _ = prune_noise(LYND, ["Nobody"], linker)
        assert len(kept) == len(LYND)

    def test_empty_doc_entities(self):
        linker = self._linker()
        assert relatedness(LYND[0], [], linker) == 0.0


class TestCanopy:
    def test_subject_predicate_canopy(self):
        canopies = build_canopies(LYND[:4])
        sp = [c for c in canopies if c.level == "subject-predicate"]
        assert len(sp) == 1 and len(sp[0]) == 4

    def test_union_of_canopies_is_input(self):
        canopies = build_canopies(LYND)
        total = sum(len(c) for c in canopies)
        assert total == len(LYND)

    def test_singletons_form_subject_canopies(self):
        canopies = build_canopies([LYND[4], LYND[5]])
        assert all(c.level == "subject" for c in canopies)

    def test_empty(self):
        assert build_canopies([]) == []


class TestSetCover:
    def test_covers_detects_subset(self):
        assert covers(LYND[1], LYND[0])
        assert not covers(LYND[0], LYND[1])

    def test_covers_requires_same_subject(self):
        a = Triple("X", "is", "great thing")
        b = Triple("Y", "is", "great")
        assert not covers(a, b)

    def test_find_pairs(self):
        pairs = find_mother_child_pairs(LYND[:2])
        assert (0, 1) in pairs

    def test_greedy_cover_removes_children(self):
        survivors = greedy_cover(LYND[:2])
        assert survivors == [LYND[1]]

    def test_greedy_cover_no_pairs_keeps_all(self):
        survivors = greedy_cover([LYND[2], LYND[3]])
        assert len(survivors) == 2

    def test_no_mother_child_in_result(self):
        survivors = greedy_cover(LYND)
        assert not find_mother_child_pairs(survivors)

    def test_singleton(self):
        assert greedy_cover([LYND[0]]) == [LYND[0]]


class TestSibling:
    def test_same_subject_predicate_are_siblings(self):
        assert sibling_similarity(LYND[2], LYND[3]) >= 0.75

    def test_different_predicate_below_threshold(self):
        assert sibling_similarity(LYND[2], LYND[4]) < 0.75

    def test_fuse_pair_merges_objects(self):
        fused = fuse_pair(LYND[2], LYND[3])
        assert fused.object == "Quaker"
        assert "peace activist" in fused.extra_objects
        assert fused.source == "fusion"

    def test_fuse_pair_drops_subsumed_objects(self):
        a = Triple("A", "was established", "in 1885")
        b = Triple("A", "was established", "1885")
        fused = fuse_pair(a, b)
        assert fused.extra_objects == ()

    def test_fuse_siblings_reduces_count(self):
        out = fuse_siblings(LYND[1:4])
        assert len(out) < 3

    def test_find_pairs_threshold(self):
        assert find_sibling_pairs([LYND[2], LYND[4]], alpha=0.75) == []


class TestConstruct:
    def test_respects_threshold_size(self):
        constructor = TripleSetConstructor(ConstructionConfig(threshold_size=2))
        result = constructor.construct(LYND)
        assert len(result.triples) <= 2

    def test_complete_when_budget_allows(self):
        constructor = TripleSetConstructor(ConstructionConfig(threshold_size=40))
        result = constructor.construct(LYND)
        text = " ".join(t.flatten() for t in result.triples)
        for triple in (LYND[1], LYND[2], LYND[3]):
            assert triple.object in text

    def test_noise_pruned_with_linker(self):
        linker = EntityIndex(["Lynd"])
        constructor = TripleSetConstructor(linker=linker)
        result = constructor.construct(LYND, doc_entities=["Lynd"])
        assert result.pruned_noise >= 1
        assert all(t.subject == "Lynd" for t in result.triples)

    def test_children_removed(self):
        constructor = TripleSetConstructor()
        result = constructor.construct(LYND)
        flattened = [t.flatten() for t in result.triples]
        assert "Lynd is an American" not in flattened

    def test_empty_input(self):
        result = TripleSetConstructor().construct([])
        assert result.triples == [] and result.union_size == 0

    def test_max_chars_clipping(self):
        config = ConstructionConfig(max_triple_chars=30)
        constructor = TripleSetConstructor(config)
        long_triples = [
            Triple("S", "is", "x" * 10),
            Triple("S", "is", "y" * 10),
            Triple("S", "is", "z" * 10),
        ]
        result = constructor.construct(long_triples)
        assert all(len(t.flatten()) <= 30 for t in result.triples)

    def test_counters_consistent(self):
        result = TripleSetConstructor().construct(LYND)
        assert result.union_size == len(LYND)
        assert result.removed_children >= 1
        assert result.fused >= 1

    def test_from_text(self, corpus):
        doc = next(d for d in corpus if d.entity.kind == "club")
        constructor = TripleSetConstructor()
        result = constructor.construct_from_text(
            doc.text, title=doc.title, entity_kind="club"
        )
        assert result.triples
        assert any(doc.title in t.subject for t in result.triples)


class TestHAC:
    def test_cluster_count(self):
        clusters = hac_cluster(LYND, 3)
        assert len(clusters) == 3
        assert sum(len(c) for c in clusters) == len(LYND)

    def test_similar_triples_cluster_together(self):
        clusters = hac_cluster(LYND[:4], 2)
        sizes = sorted(len(c) for c in clusters)
        assert sizes[-1] >= 2

    def test_construct_size(self):
        out = hac_construct(LYND, 3)
        assert len(out) == 3

    def test_construct_loses_information(self):
        # HAC keeps one representative per cluster: with 1 cluster only one
        # triple survives, demonstrating the information loss Algorithm 1
        # avoids via fusion.
        out = hac_construct(LYND[:4], 1)
        assert len(out) == 1

    def test_empty(self):
        assert hac_construct([], 3) == []

    def test_invalid_cluster_count(self):
        with pytest.raises(ValueError):
            hac_cluster(LYND, 0)
