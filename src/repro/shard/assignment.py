"""Document-to-shard assignment: contiguous ranges or coarse centroids.

Two modes, both deterministic:

* ``range`` — near-equal contiguous doc-id chunks. Zero-cost to compute,
  shard matrices stay *views* into the stacked embedding matrix, and the
  shard concatenation preserves ascending doc order. The right default
  when queries must stay exact (``nprobe = n_shards``).
* ``centroid`` — seeded spherical k-means over per-document mean
  embeddings, the IVF-style coarse quantization layer. Documents cluster
  around semantic centroids, so pruning to the ``nprobe`` closest shards
  keeps recall high. This plays the role the canopy/HAC machinery in
  :mod:`repro.triples` plays for triples — coarse groups first, fine
  scoring only inside the groups a query can plausibly hit.

Every tie (equal centroid distances, equal scores) breaks toward the
lower index, so the assignment is a pure function of its inputs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.precision import ACCUM_DTYPE
from repro.retriever.strategies import l2_normalize_rows

MODES = ("range", "centroid")

#: k-means refinement passes; fixed (not convergence-tested) so the
#: assignment is deterministic and O(iterations * n_docs * n_shards).
_KMEANS_ITERATIONS = 10


def segment_means(
    matrix: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """Per-document mean of embedding rows (zero rows for empty docs)."""
    # assignment math always accumulates in the (float64) accumulator
    # dtype regardless of the store dtype: shard labels must not change
    # when the precision policy does
    matrix = np.asarray(matrix, dtype=ACCUM_DTYPE)
    offsets = np.asarray(offsets, dtype=np.int64)
    n_docs = offsets.shape[0]
    dim = matrix.shape[1] if matrix.ndim == 2 else 0
    means = np.zeros((n_docs, dim), dtype=ACCUM_DTYPE)
    if n_docs == 0 or matrix.shape[0] == 0:
        return means
    stops = np.concatenate([offsets[1:], [matrix.shape[0]]])
    lengths = stops - offsets
    nonempty = lengths > 0
    if not nonempty.any():
        return means
    sums = np.add.reduceat(matrix, offsets[nonempty], axis=0)
    # reduceat over non-empty starts only: consecutive non-empty starts
    # bracket exactly one document's rows (see aggregate_segments)
    means[nonempty] = sums / lengths[nonempty, None]
    return means


def assign_range(n_docs: int, n_shards: int) -> np.ndarray:
    """Shard label per document position: contiguous near-equal chunks."""
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    labels = np.zeros(n_docs, dtype=np.int64)
    if n_docs == 0:
        return labels
    bounds = np.linspace(0, n_docs, n_shards + 1).astype(np.int64)
    for shard_id in range(n_shards):
        labels[bounds[shard_id] : bounds[shard_id + 1]] = shard_id
    return labels


def assign_centroid(
    doc_vectors: np.ndarray, n_shards: int
) -> Tuple[np.ndarray, np.ndarray]:
    """(labels, centroids) from seeded spherical k-means over documents.

    Initial centroids are the normalized vectors of ``n_shards`` evenly
    spaced documents (deterministic — no RNG), refined for a fixed number
    of passes. Nearest-centroid ties break toward the lower centroid id;
    a centroid that loses all members keeps its previous position.
    """
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    vectors = l2_normalize_rows(np.asarray(doc_vectors, dtype=ACCUM_DTYPE))
    n_docs = vectors.shape[0]
    if n_docs == 0:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros((n_shards, doc_vectors.shape[1]), dtype=ACCUM_DTYPE),
        )
    seeds = np.linspace(0, n_docs - 1, min(n_shards, n_docs)).astype(
        np.int64
    )
    centroids = np.zeros((n_shards, vectors.shape[1]), dtype=ACCUM_DTYPE)
    centroids[: seeds.shape[0]] = vectors[seeds]
    labels = np.zeros(n_docs, dtype=np.int64)
    for _ in range(_KMEANS_ITERATIONS):
        # cosine similarity against unit centroids; argmax returns the
        # FIRST maximal index, i.e. ties already break toward low ids
        similarity = vectors @ centroids.T
        labels = np.argmax(similarity, axis=1).astype(np.int64)
        for shard_id in range(n_shards):
            members = vectors[labels == shard_id]
            if members.shape[0] == 0:
                continue
            mean = members.mean(axis=0)
            norm = np.linalg.norm(mean)
            if norm > 0.0:
                centroids[shard_id] = mean / norm
    return labels, centroids


def assign_documents(
    mode: str,
    n_docs: int,
    n_shards: int,
    doc_vectors: np.ndarray = None,
) -> np.ndarray:
    """Shard label per document position under ``mode``."""
    if mode not in MODES:
        raise ValueError(f"unknown shard mode {mode!r} (expected {MODES})")
    if mode == "range" or n_shards == 1:
        return assign_range(n_docs, n_shards)
    if doc_vectors is None:
        raise ValueError("centroid assignment needs per-document vectors")
    labels, _ = assign_centroid(doc_vectors, n_shards)
    return labels
