"""Warm-start regression suite: loading persisted embeddings must cost
zero encoder calls and retrieve identically to the system that saved
them. Guards against the old behaviour where ``TripleFactRetrieval.load``
unconditionally re-encoded the whole corpus.
"""

import numpy as np
import pytest

from repro.encoder.minibert import EncoderConfig, MiniBertEncoder
from repro.ingest import EmbeddingStore
from repro.pipeline.framework import FrameworkConfig, TripleFactRetrieval
from repro.pipeline.multihop import MultiHopConfig
from repro.pipeline.path_ranker import PathRankerConfig
from repro.retriever.single import SingleRetriever
from repro.retriever.trainer import TrainerConfig
from repro.serve.service import RetrievalService, ServiceConfig
from repro.updater.updater import UpdaterConfig


@pytest.fixture
def encode_calls(monkeypatch):
    """Count every MiniBertEncoder.encode_numpy invocation (any instance)."""
    calls = []
    original = MiniBertEncoder.encode_numpy

    def counting(self, texts, *args, **kwargs):
        calls.append(len(list(texts)))
        return original(self, texts, *args, **kwargs)

    monkeypatch.setattr(MiniBertEncoder, "encode_numpy", counting)
    return calls


class TestRetrieverWarmStart:
    def test_attach_then_refresh_encodes_nothing(
        self, encoder, store, retriever, tmp_path, encode_calls
    ):
        retriever.export_embeddings().save(tmp_path)
        warm = SingleRetriever(encoder, store)
        adopted = warm.attach_embeddings(EmbeddingStore.open(tmp_path))
        assert adopted == store.total_triples()
        encode_calls.clear()
        assert warm.refresh_embeddings() == 0
        assert encode_calls == []

    def test_warm_retrieval_matches_original(
        self, encoder, store, retriever, tmp_path
    ):
        retriever.export_embeddings().save(tmp_path)
        warm = SingleRetriever(encoder, store)
        warm.attach_embeddings(EmbeddingStore.open(tmp_path))
        warm.refresh_embeddings()
        question = "Which club was founded in the same city?"
        original = [
            (r.doc_id, r.score) for r in retriever.retrieve(question, k=5)
        ]
        restored = [
            (r.doc_id, r.score) for r in warm.retrieve(question, k=5)
        ]
        assert [d for d, _ in original] == [d for d, _ in restored]
        assert np.allclose(
            [s for _, s in original], [s for _, s in restored]
        )

    def test_detach_then_refresh_reencodes(
        self, encoder, store, retriever, tmp_path, encode_calls
    ):
        retriever.export_embeddings().save(tmp_path)
        warm = SingleRetriever(encoder, store)
        warm.attach_embeddings(EmbeddingStore.open(tmp_path))
        warm.detach_embeddings()
        encode_calls.clear()
        assert warm.refresh_embeddings() == store.total_triples()
        assert sum(encode_calls) == store.total_triples()


class TestFrameworkWarmStart:
    @pytest.fixture(scope="class")
    def trained(self, corpus, hotpot):
        config = FrameworkConfig(
            encoder=EncoderConfig(dim=20, n_layers=1, n_heads=2, max_len=28),
            retriever=TrainerConfig(epochs=1, lr=2e-4),
            updater=UpdaterConfig(epochs=1),
            ranker=PathRankerConfig(epochs=1),
            multihop=MultiHopConfig(k_hop1=3, k_hop2=2, k_paths=4),
            max_train_questions=15,
            max_ranker_questions=6,
        )
        return TripleFactRetrieval(config).fit(corpus, hotpot), config

    def test_load_makes_zero_encoder_calls(
        self, trained, corpus, tmp_path, encode_calls
    ):
        system, config = trained
        system.save(tmp_path / "model")
        encode_calls.clear()
        TripleFactRetrieval.load(tmp_path / "model", corpus, config=config)
        assert encode_calls == []

    def test_warm_load_retrieves_identically(
        self, trained, corpus, hotpot, tmp_path
    ):
        system, config = trained
        system.save(tmp_path / "model")
        restored = TripleFactRetrieval.load(
            tmp_path / "model", corpus, config=config
        )
        question = hotpot.test[0].text
        original = [r.doc_id for r in system.retrieve_documents(question, k=5)]
        loaded = [r.doc_id for r in restored.retrieve_documents(question, k=5)]
        assert original == loaded

    def test_missing_embeddings_falls_back_to_reencode(
        self, trained, corpus, hotpot, tmp_path, encode_calls
    ):
        system, config = trained
        system.save(tmp_path / "model")
        for artifact in (tmp_path / "model" / "embeddings").iterdir():
            artifact.unlink()
        encode_calls.clear()
        restored = TripleFactRetrieval.load(
            tmp_path / "model", corpus, config=config
        )
        assert sum(encode_calls) > 0  # cold path: full re-encode
        question = hotpot.test[0].text
        original = [r.doc_id for r in system.retrieve_documents(question, k=5)]
        loaded = [r.doc_id for r in restored.retrieve_documents(question, k=5)]
        assert original == loaded

    def test_tampered_manifest_falls_back_to_reencode(
        self, trained, corpus, tmp_path, encode_calls
    ):
        system, config = trained
        system.save(tmp_path / "model")
        manifest = tmp_path / "model" / "embeddings" / "manifest.json"
        manifest.write_text("{corrupt")
        encode_calls.clear()
        TripleFactRetrieval.load(tmp_path / "model", corpus, config=config)
        assert sum(encode_calls) > 0


class TestServeWarmStart:
    def test_start_builds_matrices(self, encoder, store):
        retriever = SingleRetriever(encoder, store)
        service = RetrievalService(retriever, config=ServiceConfig())
        assert retriever._stacked is None
        with service:
            assert retriever._stacked is not None

    def test_cold_start_defers_build(self, encoder, store):
        retriever = SingleRetriever(encoder, store)
        service = RetrievalService(
            retriever, config=ServiceConfig(warm_start=False)
        )
        with service:
            assert retriever._stacked is None
            service.retrieve("Which club was founded first?", k=3)
            assert retriever._stacked is not None

    def test_attached_retriever_serves_without_encoding(
        self, encoder, store, retriever, tmp_path, encode_calls
    ):
        retriever.export_embeddings().save(tmp_path)
        warm = SingleRetriever(encoder, store)
        warm.attach_embeddings(EmbeddingStore.open(tmp_path))
        encode_calls.clear()
        with RetrievalService(warm, config=ServiceConfig()):
            pass  # warm start happens inside start()
        assert encode_calls == []  # matrices built from the memmap alone