"""Wire protocol of the networked serving subsystem.

Frames are 4-byte big-endian length prefixes followed by a UTF-8 JSON
body. JSON is always rendered *canonically* (sorted keys, fixed
separators) so two processes serializing the same result produce the
same bytes — the property the byte-identity acceptance tests compare,
and the reason responses can be diffed across worker generations at all.
Python's ``repr``-shortest float serialization round-trips every IEEE
double exactly, so scores survive the JSON hop bit-for-bit.

The codec maps the retrieval result dataclasses
(:class:`~repro.retriever.single.RetrievedDocument`,
:class:`~repro.pipeline.multihop.DocumentPath`,
:class:`~repro.oie.triple.Triple`) to plain dicts and back;
``triple_scores`` (a per-request numpy debug artifact, ``None`` on every
serving path) is deliberately not carried.

Both sync (worker/supervisor/client threads) and asyncio (front door)
frame helpers live here so every component speaks from one definition.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, List, Optional, Sequence

from repro.oie.triple import Triple
from repro.pipeline.multihop import DocumentPath
from repro.retriever.single import RetrievedDocument

#: Frame bodies beyond this are a protocol violation, not a big request.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """Malformed frame: bad length, oversized body, or invalid JSON."""


def canonical_json(obj: Any) -> bytes:
    """The one JSON rendering every component uses (byte-stable)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def encode_frame(obj: Any) -> bytes:
    """Length-prefixed canonical-JSON frame for ``obj``."""
    body = canonical_json(obj)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body {len(body)} bytes exceeds cap")
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"invalid frame body: {error}") from error


# -- sync framing (worker / supervisor / client threads) -----------------


def send_frame(sock: socket.socket, obj: Any) -> None:
    sock.sendall(encode_frame(obj))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(n - len(chunks))
        if not chunk:
            if chunks:
                raise ProtocolError("connection closed mid-frame")
            return None
        chunks.extend(chunk)
    return bytes(chunks)


def recv_frame(sock: socket.socket) -> Optional[Any]:
    """Next decoded frame from ``sock``; None on clean EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds cap")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between header and body")
    return decode_body(body)


# -- asyncio framing (front door) ----------------------------------------


async def read_frame_async(reader: asyncio.StreamReader) -> Optional[Any]:
    """Next decoded frame from an asyncio stream; None on clean EOF."""
    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if error.partial:
            raise ProtocolError("connection closed mid-frame") from error
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds cap")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            "connection closed between header and body"
        ) from error
    return decode_body(body)


async def write_frame_async(writer: asyncio.StreamWriter, obj: Any) -> None:
    writer.write(encode_frame(obj))
    await writer.drain()


# -- result codec --------------------------------------------------------


def triple_to_wire(triple: Optional[Triple]) -> Optional[Dict[str, Any]]:
    if triple is None:
        return None
    return {
        "subject": triple.subject,
        "predicate": triple.predicate,
        "object": triple.object,
        "extra_objects": list(triple.extra_objects),
        "source": triple.source,
        "sentence_index": triple.sentence_index,
        "confidence": triple.confidence,
    }


def wire_to_triple(payload: Optional[Dict[str, Any]]) -> Optional[Triple]:
    if payload is None:
        return None
    return Triple(
        subject=payload["subject"],
        predicate=payload["predicate"],
        object=payload["object"],
        extra_objects=tuple(payload.get("extra_objects") or ()),
        source=payload.get("source", ""),
        sentence_index=int(payload.get("sentence_index", -1)),
        confidence=float(payload.get("confidence", 1.0)),
    )


def document_to_wire(doc: RetrievedDocument) -> Dict[str, Any]:
    return {
        "doc_id": doc.doc_id,
        "title": doc.title,
        "score": doc.score,
        "matched_triple": triple_to_wire(doc.matched_triple),
    }


def wire_to_document(payload: Dict[str, Any]) -> RetrievedDocument:
    return RetrievedDocument(
        doc_id=int(payload["doc_id"]),
        title=payload["title"],
        score=float(payload["score"]),
        matched_triple=wire_to_triple(payload.get("matched_triple")),
    )


def path_to_wire(path: DocumentPath) -> Dict[str, Any]:
    return {
        "doc_ids": list(path.doc_ids),
        "titles": list(path.titles),
        "score": path.score,
        "hop_scores": list(path.hop_scores),
        "clue": triple_to_wire(path.clue),
        "matched_triples": [
            triple_to_wire(t) for t in path.matched_triples
        ],
        "updated_question": path.updated_question,
    }


def wire_to_path(payload: Dict[str, Any]) -> DocumentPath:
    return DocumentPath(
        doc_ids=tuple(int(d) for d in payload["doc_ids"]),
        titles=tuple(payload["titles"]),
        score=float(payload["score"]),
        hop_scores=tuple(float(s) for s in payload.get("hop_scores") or ()),
        clue=wire_to_triple(payload.get("clue")),
        matched_triples=tuple(
            wire_to_triple(t) for t in payload.get("matched_triples") or ()
        ),
        updated_question=payload.get("updated_question"),
    )


def results_to_wire(mode: str, results: Sequence[Any]) -> List[Dict[str, Any]]:
    """Encode one request's result list for its ``mode``."""
    if mode == "paths":
        return [path_to_wire(p) for p in results]
    return [document_to_wire(d) for d in results]


def wire_to_results(mode: str, payload: Sequence[Dict[str, Any]]) -> List[Any]:
    """Decode a wire result list back into result dataclasses."""
    if mode == "paths":
        return [wire_to_path(p) for p in payload]
    return [wire_to_document(d) for d in payload]
