"""Fixture-driven tests for the ``repro.analysis`` rule catalog.

Every rule is exercised three ways: a seeded violation fires, a
``# lint: ignore[rule-id]`` comment on the offending line suppresses it,
and a compliant rewrite produces no finding at all. Framework behaviour
(suppression semantics, allow-lists, config parsing, reporters, parse
errors) gets its own targeted tests below.
"""

import ast
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    LintConfig,
    all_rule_ids,
    lint_file,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.config import _fallback_parse, parse_config
from repro.analysis.core import PARSE_ERROR, REGISTRY, _resolve_rules

MARKER = "##HERE##"

# rule id -> (relative path, source with MARKER on the offending line).
# Scoped rules (missing-perf-counter, unnormalized-matmul) need a hot-path
# directory in the fixture path and a non-test filename.
VIOLATIONS = {
    "falsy-zero-default": (
        "mod.py",
        """
        def pick(k=None):
            k = k or 10  ##HERE##
            return k
        """,
    ),
    "mutable-default-arg": (
        "mod.py",
        """
        def add(item, bucket=[]):  ##HERE##
            bucket.append(item)
            return bucket
        """,
    ),
    "bare-except": (
        "mod.py",
        """
        def guard(fn):
            try:
                return fn()
            except:  ##HERE##
                return None
        """,
    ),
    "except-pass": (
        "mod.py",
        """
        def guard(fn):
            try:
                return fn()
            except ValueError:
                pass  ##HERE##
        """,
    ),
    "missing-perf-counter": (
        "retriever/hot.py",
        """
        def refresh(encoder, texts):
            matrix = encoder.encode_numpy(texts)  ##HERE##
            return matrix
        """,
    ),
    "legacy-path-call": (
        "mod.py",
        """
        def lookup(retriever, vec):
            return retriever.retrieve_by_vector_legacy(vec, k=3)  ##HERE##
        """,
    ),
    "unnormalized-matmul": (
        "retriever/scoring.py",
        """
        def rank(queries, docs):
            scores = queries @ docs.T  ##HERE##
            return scores
        """,
    ),
    "unordered-topk": (
        "retriever/merge.py",
        """
        import numpy as np


        def top_k(scores, k):
            part = np.argpartition(-scores, k - 1)  ##HERE##
            return part[:k]
        """,
    ),
    "shadowed-builtin-id": (
        "mod.py",
        """
        def first(values):
            id = values[0]  ##HERE##
            return id
        """,
    ),
    "dict-iteration-mutation": (
        "mod.py",
        """
        def prune(table):
            for key in table:
                if key < 0:
                    table.pop(key)  ##HERE##
            return table
        """,
    ),
    "wall-clock-timing": (
        "serve/timing.py",
        """
        import time


        def stamp():
            return time.time()  ##HERE##
        """,
    ),
    "nonatomic-artifact-write": (
        "pipeline/save.py",
        """
        import json


        def persist(report, out_dir):
            (out_dir / "report.json").write_text(json.dumps(report))  ##HERE##
        """,
    ),
    "unlocked-shared-state": (
        "serve/state.py",
        """
        import threading


        class Tracker:
            def __init__(self):
                self._lock = threading.Lock()
                self._hits = 0

            def record(self):
                with self._lock:
                    self._hits += 1

            def snapshot(self):
                return self._hits  ##HERE##
        """,
    ),
    "lock-order-cycle": (
        "serve/locks.py",
        """
        import threading


        class Source:
            def __init__(self):
                self._lock = threading.Lock()
                self.sink = Sink(self)

            def push(self):
                with self._lock:
                    self.sink.accept()  ##HERE##


        class Sink:
            def __init__(self, source):
                self._lock = threading.Lock()
                self.source: Source = source

            def accept(self):
                with self._lock:
                    return True

            def flush(self):
                with self._lock:
                    self.source.push()
        """,
    ),
    "layering-violation": (
        "src/repro/nn/hotpath.py",
        """
        from repro.serve.service import RetrievalService  ##HERE##


        def warm(service):
            return service.running
        """,
    ),
    "dead-symbol": (
        "pkg/leftover.py",
        """
        def orphan_helper():  ##HERE##
            return 1
        """,
    ),
    "hardcoded-dtype": (
        "shard/quant.py",
        """
        import numpy as np


        def pack(matrix):
            return matrix.astype(np.float32)  ##HERE##
        """,
    ),
    "blocking-in-async": (
        "net/flow.py",
        """
        import time


        async def pause():
            time.sleep(0.1)  ##HERE##
        """,
    ),
    "graph-in-inference": (
        "nn/infer.py",
        """
        from repro.nn.tensor import Tensor


        def forward(ids):
            return Tensor(ids)  ##HERE##
        """,
    ),
}

# rule id -> extra LintConfig kwargs a fixture needs (e.g. the layer DAG
# for layering-violation); merged into the per-test config.
RULE_CONFIGS = {
    "layering-violation": dict(
        layers_order=("foundation", "serving"),
        layers={"foundation": ("repro.nn",), "serving": ("repro.serve",)},
    ),
}

# rule id -> compliant rewrite of the same logic; must produce no finding.
COMPLIANT = {
    "falsy-zero-default": (
        "mod.py",
        """
        def pick(k=None):
            k = k if k is not None else 10
            return k
        """,
    ),
    "mutable-default-arg": (
        "mod.py",
        """
        def add(item, bucket=None):
            bucket = bucket if bucket is not None else []
            bucket.append(item)
            return bucket
        """,
    ),
    "bare-except": (
        "mod.py",
        """
        def guard(fn):
            try:
                return fn()
            except ValueError:
                return None
        """,
    ),
    "except-pass": (
        "mod.py",
        """
        def guard(fn, log):
            try:
                return fn()
            except ValueError as error:
                log(error)
                return None
        """,
    ),
    "missing-perf-counter": (
        "retriever/hot.py",
        """
        from repro.perf import COUNTERS


        def refresh(encoder, texts):
            COUNTERS.record_encode(len(texts))
            matrix = encoder.encode_numpy(texts)
            return matrix
        """,
    ),
    "legacy-path-call": (
        "mod.py",
        """
        def lookup(retriever, vec):
            return retriever.retrieve_by_vector(vec, k=3)
        """,
    ),
    "unnormalized-matmul": (
        "retriever/scoring.py",
        """
        from repro.retriever.strategies import l2_normalize_rows


        def rank(queries, docs):
            queries_normed = l2_normalize_rows(queries)
            docs_normed = l2_normalize_rows(docs)
            scores = queries_normed @ docs_normed.T
            return scores
        """,
    ),
    "unordered-topk": (
        "retriever/merge.py",
        """
        import numpy as np


        def top_k(scores, k):
            part = np.argpartition(-scores, k - 1)[:k]
            order = np.lexsort((part, -scores[part]))
            return part[order]
        """,
    ),
    "shadowed-builtin-id": (
        "mod.py",
        """
        def first(values):
            first_value = values[0]
            return first_value
        """,
    ),
    "dict-iteration-mutation": (
        "mod.py",
        """
        def prune(table):
            for key in list(table):
                if key < 0:
                    table.pop(key)
            return table
        """,
    ),
    "wall-clock-timing": (
        "serve/timing.py",
        """
        import time


        def stamp():
            return time.perf_counter()
        """,
    ),
    "nonatomic-artifact-write": (
        "pipeline/save.py",
        """
        from repro.storage.atomic import atomic_write_json


        def persist(report, out_dir):
            atomic_write_json(out_dir / "report.json", report)
        """,
    ),
    "unlocked-shared-state": (
        "serve/state.py",
        """
        import threading


        class Tracker:
            def __init__(self):
                self._lock = threading.Lock()
                self._hits = 0

            def record(self):
                with self._lock:
                    self._hits += 1

            def snapshot(self):
                with self._lock:
                    return self._hits
        """,
    ),
    "lock-order-cycle": (
        "serve/locks.py",
        """
        import threading


        class Source:
            def __init__(self):
                self._lock = threading.Lock()
                self.sink = Sink(self)

            def push(self):
                with self._lock:
                    self.sink.accept()


        class Sink:
            def __init__(self, source):
                self._lock = threading.Lock()
                self.source: Source = source

            def accept(self):
                with self._lock:
                    return True

            def flush(self):
                # calls back into Source *without* holding own lock, so
                # both paths acquire in the same global order
                self.source.push()
        """,
    ),
    "layering-violation": (
        "src/repro/serve/front.py",
        """
        from repro.nn.layers import Linear


        def build():
            return Linear()
        """,
    ),
    "dead-symbol": (
        "pkg/used.py",
        """
        def helper():
            return 1


        RESULT = helper()
        """,
    ),
    "hardcoded-dtype": (
        "shard/quant.py",
        """
        from repro.precision import ACCUM_DTYPE


        def pack(matrix):
            return matrix.astype(ACCUM_DTYPE)
        """,
    ),
    "blocking-in-async": (
        "net/flow.py",
        """
        import asyncio


        async def pause():
            await asyncio.sleep(0.1)
        """,
    ),
    "graph-in-inference": (
        "nn/infer.py",
        """
        import numpy as np


        def forward(ids, table):
            return table[np.asarray(ids)]
        """,
    ),
}


def _render(source, suppression):
    """(source text, 1-based line of MARKER) with MARKER replaced."""
    lines = []
    marker_line = None
    for index, line in enumerate(textwrap.dedent(source).strip("\n").splitlines()):
        if MARKER in line:
            marker_line = index + 1
            line = line.replace(MARKER, suppression).rstrip()
        lines.append(line)
    return "\n".join(lines) + "\n", marker_line


def _lint(tmp_path, rel, source, select=None, config=None):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    cfg = config if config is not None else LintConfig(root=tmp_path)
    return run_lint([path], select=select, config=cfg)


def _config_for(rule_id, tmp_path):
    return LintConfig(root=tmp_path, **RULE_CONFIGS.get(rule_id, {}))


class TestEachRule:
    @pytest.mark.parametrize("rule_id", sorted(VIOLATIONS))
    def test_violation_fires(self, tmp_path, rule_id):
        rel, raw = VIOLATIONS[rule_id]
        source, marker_line = _render(raw, "")
        report = _lint(
            tmp_path, rel, source, select=[rule_id],
            config=_config_for(rule_id, tmp_path),
        )
        assert [f.rule_id for f in report.findings] == [rule_id]
        assert report.findings[0].line == marker_line
        assert report.findings[0].message

    @pytest.mark.parametrize("rule_id", sorted(VIOLATIONS))
    def test_suppression_suppresses(self, tmp_path, rule_id):
        rel, raw = VIOLATIONS[rule_id]
        source, _ = _render(raw, f"# lint: ignore[{rule_id}]")
        report = _lint(
            tmp_path, rel, source, select=[rule_id],
            config=_config_for(rule_id, tmp_path),
        )
        assert report.findings == []

    @pytest.mark.parametrize("rule_id", sorted(COMPLIANT))
    def test_compliant_rewrite_is_clean(self, tmp_path, rule_id):
        rel, source = COMPLIANT[rule_id]
        report = _lint(
            tmp_path, rel, textwrap.dedent(source).strip("\n") + "\n",
            select=[rule_id],
            config=_config_for(rule_id, tmp_path),
        )
        assert report.findings == []

    def test_catalog_has_at_least_eight_rules(self):
        assert len(all_rule_ids()) >= 8
        assert set(VIOLATIONS) == set(all_rule_ids())


class TestExceptPassVariants:
    """Satellite shapes of except-pass: Ellipsis body, bare continue."""

    def test_ellipsis_body_fires(self, tmp_path):
        source = textwrap.dedent(
            """
            def guard(fn):
                try:
                    return fn()
                except ValueError:
                    ...
            """
        ).strip("\n") + "\n"
        report = _lint(tmp_path, "mod.py", source, select=["except-pass"])
        assert [f.rule_id for f in report.findings] == ["except-pass"]
        assert report.findings[0].line == 5

    def test_ellipsis_body_suppressible(self, tmp_path):
        source = textwrap.dedent(
            """
            def guard(fn):
                try:
                    return fn()
                except ValueError:
                    ...  # lint: ignore[except-pass]
            """
        ).strip("\n") + "\n"
        report = _lint(tmp_path, "mod.py", source, select=["except-pass"])
        assert report.findings == []

    def test_bare_except_continue_in_loop_fires(self, tmp_path):
        source = textwrap.dedent(
            """
            def drain(items, fn):
                for item in items:
                    try:
                        fn(item)
                    except:
                        continue
            """
        ).strip("\n") + "\n"
        report = _lint(tmp_path, "mod.py", source, select=["except-pass"])
        assert [f.rule_id for f in report.findings] == ["except-pass"]
        assert report.findings[0].line == 6

    def test_bare_except_continue_suppressible(self, tmp_path):
        source = textwrap.dedent(
            """
            def drain(items, fn):
                for item in items:
                    try:
                        fn(item)
                    except:
                        continue  # lint: ignore[except-pass]
            """
        ).strip("\n") + "\n"
        report = _lint(tmp_path, "mod.py", source, select=["except-pass"])
        assert report.findings == []

    def test_typed_except_continue_is_allowed(self, tmp_path):
        # skipping bad items with a *named* exception type is the
        # sanctioned idiom (e.g. _relativize's ValueError skip)
        source = textwrap.dedent(
            """
            def drain(items, fn):
                out = []
                for item in items:
                    try:
                        out.append(fn(item))
                    except ValueError:
                        continue
                return out
            """
        ).strip("\n") + "\n"
        report = _lint(tmp_path, "mod.py", source, select=["except-pass"])
        assert report.findings == []


class TestProjectRuleSemantics:
    """Cross-file behaviour the single-file fixtures cannot express."""

    def test_dead_symbol_sees_references_from_other_files(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "lib.py").write_text(
            "def helper():\n    return 1\n", encoding="utf-8"
        )
        (tmp_path / "pkg" / "app.py").write_text(
            "from pkg.lib import helper\n\nVALUE = helper()\n",
            encoding="utf-8",
        )
        report = run_lint(
            [tmp_path / "pkg"], select=["dead-symbol"],
            config=LintConfig(root=tmp_path),
        )
        assert report.findings == []

    def test_dead_symbol_silent_on_partial_runs(self, tmp_path):
        # config declares a second path that exists but is not scanned:
        # the rule cannot prove the symbol is unreferenced
        (tmp_path / "pkg").mkdir()
        (tmp_path / "other").mkdir()
        (tmp_path / "other" / "mod.py").write_text("X = 1\n", encoding="utf-8")
        (tmp_path / "pkg" / "lib.py").write_text(
            "def orphan():\n    return 1\n", encoding="utf-8"
        )
        config = LintConfig(paths=("pkg", "other"), root=tmp_path)
        partial = run_lint(
            [tmp_path / "pkg"], select=["dead-symbol"], config=config
        )
        assert partial.findings == []
        full = run_lint(
            [tmp_path / "pkg", tmp_path / "other"],
            select=["dead-symbol"], config=config,
        )
        assert [f.rule_id for f in full.findings] == ["dead-symbol"]

    def test_dead_symbol_allow_list(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "lib.py").write_text(
            "def entry_point():\n    return 1\n", encoding="utf-8"
        )
        config = LintConfig(
            root=tmp_path, dead_symbol_allow=("pkg.lib.entry_*",)
        )
        report = run_lint(
            [tmp_path / "pkg"], select=["dead-symbol"], config=config
        )
        assert report.findings == []

    def test_dead_symbol_keeps_decorated_and_dunder_defs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "lib.py").write_text(
            textwrap.dedent(
                """
                import atexit


                @atexit.register
                def cleanup():
                    return None


                def __getattr__(name):
                    raise AttributeError(name)
                """
            ).strip("\n") + "\n",
            encoding="utf-8",
        )
        report = run_lint(
            [tmp_path / "pkg"], select=["dead-symbol"],
            config=LintConfig(root=tmp_path),
        )
        assert report.findings == []

    def test_import_cycle_across_files(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "alpha.py").write_text(
            "import pkg.beta\n\nA = 1\n", encoding="utf-8"
        )
        (tmp_path / "pkg" / "beta.py").write_text(
            "import pkg.alpha\n\nB = 2\n", encoding="utf-8"
        )
        report = run_lint(
            [tmp_path / "pkg"], select=["layering-violation"],
            config=LintConfig(root=tmp_path),
        )
        assert [f.rule_id for f in report.findings] == ["layering-violation"]
        assert "import cycle" in report.findings[0].message

    def test_deferred_import_breaks_cycle(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "alpha.py").write_text(
            "import pkg.beta\n\nA = 1\n", encoding="utf-8"
        )
        (tmp_path / "pkg" / "beta.py").write_text(
            "def late():\n    import pkg.alpha\n    return pkg.alpha.A\n",
            encoding="utf-8",
        )
        report = run_lint(
            [tmp_path / "pkg"], select=["layering-violation"],
            config=LintConfig(root=tmp_path),
        )
        assert report.findings == []

    def test_unlocked_shared_state_ignores_immutable_config(self, tmp_path):
        # attributes only ever assigned in __init__ are read-only
        # configuration; reading them unlocked is fine
        source = textwrap.dedent(
            """
            import threading


            class Sized:
                def __init__(self, capacity):
                    self._lock = threading.Lock()
                    self.capacity = capacity
                    self._items = []

                def add(self, item):
                    with self._lock:
                        self._items.append(item)

                def limit(self):
                    return self.capacity
            """
        ).strip("\n") + "\n"
        report = _lint(
            tmp_path, "serve/sized.py", source,
            select=["unlocked-shared-state"],
        )
        assert report.findings == []

    def test_unlocked_shared_state_flags_container_mutation(self, tmp_path):
        source = textwrap.dedent(
            """
            import threading


            class Bag:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, item):
                    self._items.append(item)
            """
        ).strip("\n") + "\n"
        report = _lint(
            tmp_path, "ingest/bag.py", source,
            select=["unlocked-shared-state"],
        )
        assert [f.rule_id for f in report.findings] == [
            "unlocked-shared-state"
        ]

    def test_unlocked_shared_state_scoped_to_concurrent_dirs(self, tmp_path):
        _, raw = VIOLATIONS["unlocked-shared-state"]
        source, _ = _render(raw, "")
        report = _lint(
            tmp_path, "retriever/state.py", source,
            select=["unlocked-shared-state"],
        )
        assert report.findings == []

    def test_lock_order_consistent_ordering_is_clean(self, tmp_path):
        # both methods take the locks in the same order: no cycle
        source = textwrap.dedent(
            """
            import threading


            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            return 1

                def two(self):
                    with self._a:
                        with self._b:
                            return 2
            """
        ).strip("\n") + "\n"
        report = _lint(
            tmp_path, "serve/pair.py", source, select=["lock-order-cycle"]
        )
        assert report.findings == []

    def test_lock_order_nested_inversion_fires(self, tmp_path):
        source = textwrap.dedent(
            """
            import threading


            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            return 1

                def two(self):
                    with self._b:
                        with self._a:
                            return 2
            """
        ).strip("\n") + "\n"
        report = _lint(
            tmp_path, "serve/pair.py", source, select=["lock-order-cycle"]
        )
        assert [f.rule_id for f in report.findings] == ["lock-order-cycle"]


class TestSuppressionSemantics:
    def test_bare_ignore_suppresses_every_rule(self, tmp_path):
        rel, raw = VIOLATIONS["shadowed-builtin-id"]
        source, _ = _render(raw, "# lint: ignore")
        # reference the fixture's def so the (unsuppressed, line-1)
        # dead-symbol pass has nothing to say either
        source += "\nUSE = first\n"
        report = _lint(tmp_path, rel, source)
        assert report.findings == []

    def test_ignoring_a_different_rule_does_not_suppress(self, tmp_path):
        rel, raw = VIOLATIONS["shadowed-builtin-id"]
        source, _ = _render(raw, "# lint: ignore[bare-except]")
        report = _lint(tmp_path, rel, source, select=["shadowed-builtin-id"])
        assert [f.rule_id for f in report.findings] == ["shadowed-builtin-id"]

    def test_suppression_on_other_line_does_not_suppress(self, tmp_path):
        source = (
            "# lint: ignore[shadowed-builtin-id]\n"
            "def first(values):\n"
            "    id = values[0]\n"
            "    return id\n"
        )
        report = _lint(tmp_path, "mod.py", source, select=["shadowed-builtin-id"])
        assert len(report.findings) == 1


class TestScoping:
    def test_missing_perf_counter_only_in_hot_dirs(self, tmp_path):
        _, raw = VIOLATIONS["missing-perf-counter"]
        source, _ = _render(raw, "")
        report = _lint(tmp_path, "mod.py", source, select=["missing-perf-counter"])
        assert report.findings == []

    @pytest.mark.parametrize("name", ["test_hot.py", "conftest.py"])
    def test_scoped_rules_exempt_test_files(self, tmp_path, name):
        _, raw = VIOLATIONS["missing-perf-counter"]
        source, _ = _render(raw, "")
        report = _lint(
            tmp_path, f"retriever/{name}", source,
            select=["missing-perf-counter"],
        )
        assert report.findings == []

    def test_unnormalized_matmul_traces_assignments(self, tmp_path):
        source = textwrap.dedent(
            """
            from repro.retriever.strategies import l2_normalize_rows


            def rank(queries, docs):
                q = l2_normalize_rows(queries)
                d = l2_normalize_rows(docs)
                scores = q @ d.T
                return scores
            """
        ).strip("\n") + "\n"
        report = _lint(
            tmp_path, "retriever/scoring.py", source,
            select=["unnormalized-matmul"],
        )
        assert report.findings == []

    def test_unordered_topk_covers_the_shard_dir(self, tmp_path):
        _, raw = VIOLATIONS["unordered-topk"]
        source, _ = _render(raw, "")
        report = _lint(
            tmp_path, "shard/merge.py", source, select=["unordered-topk"]
        )
        assert [f.rule_id for f in report.findings] == ["unordered-topk"]
        elsewhere = _lint(tmp_path, "mod.py", source, select=["unordered-topk"])
        assert elsewhere.findings == []

    def test_unordered_topk_accepts_the_shared_helper(self, tmp_path):
        source = textwrap.dedent(
            """
            import numpy as np

            from repro.shard.merge import topk_doc_order


            def rank(scores, doc_ids, k):
                part = np.argpartition(-scores, k - 1)[:k]
                return topk_doc_order(scores, doc_ids, k), part
            """
        ).strip("\n") + "\n"
        report = _lint(
            tmp_path, "retriever/rank.py", source, select=["unordered-topk"]
        )
        assert report.findings == []

    def test_wall_clock_timing_only_in_timing_dirs(self, tmp_path):
        _, raw = VIOLATIONS["wall-clock-timing"]
        source, _ = _render(raw, "")
        report = _lint(tmp_path, "mod.py", source, select=["wall-clock-timing"])
        assert report.findings == []

    def test_wall_clock_timing_covers_benchmark_test_files(self, tmp_path):
        # unlike the hot-path rules, no test-file exemption: the
        # benchmark test modules are the heaviest timing users
        _, raw = VIOLATIONS["wall-clock-timing"]
        source, _ = _render(raw, "")
        report = _lint(
            tmp_path, "benchmarks/test_bench.py", source,
            select=["wall-clock-timing"],
        )
        assert [f.rule_id for f in report.findings] == ["wall-clock-timing"]

    def test_wall_clock_timing_catches_from_import_alias(self, tmp_path):
        source = textwrap.dedent(
            """
            from time import time as now


            def stamp():
                return now()
            """
        ).strip("\n") + "\n"
        report = _lint(
            tmp_path, "perf/clock.py", source, select=["wall-clock-timing"]
        )
        assert [f.rule_id for f in report.findings] == ["wall-clock-timing"]

    def test_wall_clock_timing_ignores_other_time_attrs(self, tmp_path):
        source = textwrap.dedent(
            """
            import time
            import datetime


            def ok():
                t = time.monotonic() + time.perf_counter()
                moment = datetime.time()
                return t, moment
            """
        ).strip("\n") + "\n"
        report = _lint(
            tmp_path, "serve/clock.py", source, select=["wall-clock-timing"]
        )
        assert report.findings == []

    def test_hardcoded_dtype_scoped_to_matrix_dirs(self, tmp_path):
        _, raw = VIOLATIONS["hardcoded-dtype"]
        source, _ = _render(raw, "")
        for rel in ("ingest/pack.py", "nn/tensor.py", "serve/keys.py"):
            report = _lint(tmp_path, rel, source, select=["hardcoded-dtype"])
            assert [f.rule_id for f in report.findings] == ["hardcoded-dtype"]
        # outside the embedding layers, in test files, and in the policy
        # module itself the literal is legitimate
        for rel in (
            "pipeline/pack.py",
            "shard/test_quant.py",
            "encoder/precision.py",
        ):
            report = _lint(tmp_path, rel, source, select=["hardcoded-dtype"])
            assert report.findings == []

    def test_hardcoded_dtype_catches_string_literals(self, tmp_path):
        source = textwrap.dedent(
            """
            import numpy as np


            def pack(matrix):
                low = matrix.astype("float32")
                return np.zeros(3, dtype="float64"), low
            """
        ).strip("\n") + "\n"
        report = _lint(
            tmp_path, "retriever/pack.py", source, select=["hardcoded-dtype"]
        )
        assert [f.rule_id for f in report.findings] == ["hardcoded-dtype"] * 2

    def test_hardcoded_dtype_catches_from_import_alias(self, tmp_path):
        source = textwrap.dedent(
            """
            from numpy import float64 as f8


            def pack(matrix):
                return matrix.astype(f8)
            """
        ).strip("\n") + "\n"
        report = _lint(
            tmp_path, "encoder/pack.py", source, select=["hardcoded-dtype"]
        )
        assert [f.rule_id for f in report.findings] == ["hardcoded-dtype"]

    def test_hardcoded_dtype_ignores_category_checks(self, tmp_path):
        source = textwrap.dedent(
            """
            import numpy as np

            from repro.precision import ACCUM_DTYPE


            def widen(matrix):
                if np.issubdtype(matrix.dtype, np.floating):
                    return matrix
                return matrix.astype(ACCUM_DTYPE)
            """
        ).strip("\n") + "\n"
        report = _lint(
            tmp_path, "retriever/widen.py", source, select=["hardcoded-dtype"]
        )
        assert report.findings == []

    def test_nonatomic_write_exempts_ordinary_test_files(self, tmp_path):
        _, raw = VIOLATIONS["nonatomic-artifact-write"]
        source, _ = _render(raw, "")
        report = _lint(
            tmp_path, "tests/test_save.py", source,
            select=["nonatomic-artifact-write"],
        )
        assert report.findings == []

    def test_nonatomic_write_covers_benchmark_test_files(self, tmp_path):
        # benchmark test modules are exactly the BENCH_*.json writers
        _, raw = VIOLATIONS["nonatomic-artifact-write"]
        source, _ = _render(raw, "")
        report = _lint(
            tmp_path, "benchmarks/test_bench.py", source,
            select=["nonatomic-artifact-write"],
        )
        assert [f.rule_id for f in report.findings] == [
            "nonatomic-artifact-write"
        ]

    def test_nonatomic_write_exempts_the_atomic_helper(self, tmp_path):
        _, raw = VIOLATIONS["nonatomic-artifact-write"]
        source, _ = _render(raw, "")
        report = _lint(
            tmp_path, "storage/atomic.py", source,
            select=["nonatomic-artifact-write"],
        )
        assert report.findings == []

    def test_nonatomic_write_traces_module_level_path_constant(self, tmp_path):
        source = textwrap.dedent(
            """
            from pathlib import Path

            OUT_PATH = Path("reports") / "BENCH_x.json"


            def persist(payload):
                OUT_PATH.write_bytes(payload)
            """
        ).strip("\n") + "\n"
        report = _lint(
            tmp_path, "perf/report.py", source,
            select=["nonatomic-artifact-write"],
        )
        assert [f.rule_id for f in report.findings] == [
            "nonatomic-artifact-write"
        ]

    def test_nonatomic_write_allows_buffer_np_save(self, tmp_path):
        source = textwrap.dedent(
            """
            import io

            import numpy as np


            def serialize(array):
                buffer = io.BytesIO()
                np.save(buffer, array)
                return buffer.getvalue()
            """
        ).strip("\n") + "\n"
        report = _lint(
            tmp_path, "encoder/weights.py", source,
            select=["nonatomic-artifact-write"],
        )
        assert report.findings == []

    def test_falsy_zero_exempts_container_annotations(self, tmp_path):
        source = textwrap.dedent(
            """
            from typing import Optional, Set


            def subset(values, exclude: Optional[Set[int]] = None):
                excluded = set(exclude or ())
                return [v for v in values if v not in excluded]
            """
        ).strip("\n") + "\n"
        report = _lint(tmp_path, "mod.py", source, select=["falsy-zero-default"])
        assert report.findings == []

    def test_shadowed_builtin_exempts_class_body_fields(self, tmp_path):
        source = textwrap.dedent(
            """
            from dataclasses import dataclass


            @dataclass
            class Edge:
                object: str
                type: str = "related"
            """
        ).strip("\n") + "\n"
        report = _lint(tmp_path, "mod.py", source, select=["shadowed-builtin-id"])
        assert report.findings == []


class TestFramework:
    def test_allow_list_exempts_matching_paths(self, tmp_path):
        rel, raw = VIOLATIONS["legacy-path-call"]
        source, _ = _render(raw, "")
        allowing = LintConfig(
            allow={"legacy-path-call": ("parity/*.py",)}, root=tmp_path
        )
        allowed = _lint(
            tmp_path, "parity/check.py", source,
            select=["legacy-path-call"], config=allowing,
        )
        assert allowed.findings == []
        elsewhere = _lint(
            tmp_path, "prod/check.py", source,
            select=["legacy-path-call"], config=allowing,
        )
        assert [f.rule_id for f in elsewhere.findings] == ["legacy-path-call"]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            _resolve_rules(["no-such-rule"], None)

    def test_ignore_removes_rule(self, tmp_path):
        rel, raw = VIOLATIONS["bare-except"]
        source, _ = _render(raw, "")
        report = _lint(tmp_path, rel, source, select=None, config=LintConfig(
            ignore=("bare-except",), root=tmp_path,
        ))
        assert "bare-except" not in {f.rule_id for f in report.findings}

    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n", encoding="utf-8")
        rules = _resolve_rules(None, None)
        findings = lint_file(path, rules, LintConfig(root=tmp_path))
        assert [f.rule_id for f in findings] == [PARSE_ERROR]

    def test_registry_descriptions_populated(self):
        for rule_id, rule_cls in REGISTRY.items():
            assert rule_cls.id == rule_id
            assert rule_cls.description

    def test_report_counts(self, tmp_path):
        rel, raw = VIOLATIONS["bare-except"]
        source, _ = _render(raw, "")
        report = _lint(tmp_path, rel, source, select=["bare-except"])
        assert report.counts == {"bare-except": 1}
        assert report.files_scanned == 1


class TestReporters:
    def _report(self, tmp_path):
        rel, raw = VIOLATIONS["shadowed-builtin-id"]
        source, _ = _render(raw, "")
        return _lint(tmp_path, rel, source, select=["shadowed-builtin-id"])

    def test_text_lists_location_and_summary(self, tmp_path):
        report = self._report(tmp_path)
        text = render_text(report)
        finding = report.findings[0]
        assert finding.location() in text
        assert "1 finding(s)" in text

    def test_text_clean_summary(self):
        from repro.analysis.core import LintReport

        text = render_text(LintReport(findings=[], files_scanned=3))
        assert text == "clean: 0 findings in 3 file(s) scanned"

    def test_json_schema(self, tmp_path):
        report = self._report(tmp_path)
        payload = json.loads(render_json(report))
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {"shadowed-builtin-id": 1}
        entry = payload["findings"][0]
        assert set(entry) == {"rule", "path", "line", "col", "message"}


class TestConfig:
    SAMPLE = textwrap.dedent(
        """
        [tool.other]
        noise = ["x"]

        [tool.repro.lint]
        paths = ["src", "tests"]
        ignore = ["bare-except"]

        [tool.repro.lint.allow]
        legacy-path-call = [
            "tests/test_retriever_vectorized.py",
            "benchmarks/test_retrieval_throughput.py",
        ]
        """
    ).strip("\n")

    def test_parse_config(self, tmp_path):
        config = parse_config(self.SAMPLE, root=tmp_path)
        assert config.paths == ("src", "tests")
        assert config.ignore == ("bare-except",)
        assert config.allow["legacy-path-call"] == (
            "tests/test_retriever_vectorized.py",
            "benchmarks/test_retrieval_throughput.py",
        )
        assert config.root == tmp_path

    def test_fallback_parser_matches_tomllib(self):
        tomllib = pytest.importorskip("tomllib")
        data = tomllib.loads(self.SAMPLE)
        tables = _fallback_parse(self.SAMPLE)
        lint_table = data["tool"]["repro"]["lint"]
        assert tables["tool.repro.lint"]["paths"] == tuple(lint_table["paths"])
        assert tables["tool.repro.lint"]["ignore"] == tuple(lint_table["ignore"])
        assert tables["tool.repro.lint.allow"]["legacy-path-call"] == tuple(
            lint_table["allow"]["legacy-path-call"]
        )

    def test_repo_pyproject_parses_with_fallback(self):
        repo_root = Path(__file__).resolve().parents[1]
        text = (repo_root / "pyproject.toml").read_text(encoding="utf-8")
        tables = _fallback_parse(text)
        assert "tool.repro.lint" in tables
        assert "legacy-path-call" in tables["tool.repro.lint.allow"]

    def test_fixture_sources_parse(self):
        # guard the fixtures themselves: a typo here would silently test
        # nothing (a parse-error finding instead of the rule's own)
        for table in (VIOLATIONS, COMPLIANT):
            for rule_id, (_, raw) in table.items():
                source, _ = _render(raw, "")
                ast.parse(source, filename=rule_id)
