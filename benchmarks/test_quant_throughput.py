"""Micro-benchmark: int8-quantized coarse scoring + exact rescore at 100k.

Builds the same clustered 100k-document embedding world as the sharded
benchmark and runs one query set through two 16-shard plans probed in
full (no centroid pruning, so the comparison isolates the precision
policy):

* **exact** — float64 shard matrices, full float scoring per query (the
  ``Precision(mode="float64")`` cost model), and
* **quantized** — float32 matrices with the int8 sidecar copy: per query
  a chunked int8 coarse pass (~1 byte of DRAM traffic per matrix
  element), top-``RESCORE_WIDTH`` documents under the deterministic
  total order, then one exact float matmul over the survivors.

The store-size leg persists a quantized sharded store and compares the
on-disk sidecar bytes to the float64-equivalent matrix bytes.

Gates (the acceptance bars from the precision-policy issue):

* int8 sidecar bytes <= 0.3x the float64 matrix bytes,
* quantized recall@10 >= 0.99x exact,
* quantized+rescore p50 latency strictly below the float64 exact p50.

Writes ``BENCH_quant.json`` next to this file. Marked ``perf`` +
``quant``; tier-1 (``testpaths = tests``) never collects it.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.ingest.embedding_store import EmbeddingStore
from repro.precision import F32, F64
from repro.retriever.strategies import ScoreStrategy, l2_normalize_rows
from repro.shard import (
    ShardedEmbeddingStore,
    ShardPlan,
    recall_at_k,
    topk_doc_order,
)
from repro.storage.atomic import atomic_write_json

pytestmark = [pytest.mark.perf, pytest.mark.quant]

N_DOCS = 100_000
DIM = 32
N_CENTERS = 64
N_SHARDS = 16
RESCORE_WIDTH = 128
N_QUERIES = 64
K = 10
SEED = 47
OUT_PATH = Path(__file__).parent / "BENCH_quant.json"

MAX_SIDECAR_RATIO = 0.3
MIN_RECALL_RATIO = 0.99


@pytest.fixture(scope="module")
def bench_setup():
    """(normalized doc matrix, normalized query matrix), clustered."""
    rng = np.random.RandomState(SEED)
    centers = l2_normalize_rows(rng.randn(N_CENTERS, DIM))
    labels = rng.randint(N_CENTERS, size=N_DOCS)
    docs = l2_normalize_rows(
        centers[labels] + 0.18 * rng.randn(N_DOCS, DIM)
    )
    anchors = rng.randint(N_DOCS, size=N_QUERIES)
    queries = l2_normalize_rows(
        docs[anchors] + 0.08 * rng.randn(N_QUERIES, DIM)
    )
    return docs, queries


def _run_exact(plan, queries, strategy):
    top_ids = []
    latencies = []
    for query in queries:
        start = time.perf_counter()
        result = plan.search(query[None, :], strategy)[0]
        order = topk_doc_order(result.scores, result.doc_ids, K)
        latencies.append(time.perf_counter() - start)
        top_ids.append(result.doc_ids[order])
    return top_ids, np.asarray(latencies)


def _run_quantized(plan, queries, strategy):
    top_ids = []
    latencies = []
    for query in queries:
        start = time.perf_counter()
        result = plan.search_quantized(
            query[None, :], strategy, RESCORE_WIDTH
        )[0]
        order = topk_doc_order(result.scores, result.doc_ids, K)
        latencies.append(time.perf_counter() - start)
        top_ids.append(result.doc_ids[order])
    return top_ids, np.asarray(latencies)


def _sidecar_bytes(docs, tmp_path):
    """On-disk int8 sidecar bytes of a quantized 16-shard store."""
    n_docs = docs.shape[0]
    store = EmbeddingStore(
        matrix=docs.astype(F32),
        doc_ids=list(range(n_docs)),
        offsets=list(range(n_docs)),
        row_hashes={d: "" for d in range(n_docs)},
        encoder_fingerprint="bench",
    )
    sharded = ShardedEmbeddingStore.split(store, N_SHARDS)
    out_dir = tmp_path / "quant_store"
    sharded.save(out_dir, quantize=True)
    return sum(
        sidecar.stat().st_size
        for sidecar in out_dir.glob("*/quant.npz")
    )


def test_quantized_rescore_speedup_recall_and_size(bench_setup, tmp_path):
    docs, queries = bench_setup
    doc_ids = np.arange(N_DOCS, dtype=np.int64)
    offsets = np.arange(N_DOCS, dtype=np.int64)  # one triple row per doc
    strategy = ScoreStrategy()

    exact_plan = ShardPlan.build(
        docs.astype(F64), doc_ids, offsets, N_SHARDS, mode="centroid"
    )
    quant_plan = ShardPlan.build(
        docs.astype(F32),
        doc_ids,
        offsets,
        N_SHARDS,
        mode="centroid",
        quantize=True,
    )
    assert quant_plan.quantized

    # warm both paths (first-touch page faults, BLAS thread spin-up)
    _run_exact(exact_plan, queries[:2], strategy)
    _run_quantized(quant_plan, queries[:2], strategy)

    exact_ids, exact_lat = _run_exact(exact_plan, queries, strategy)
    quant_ids, quant_lat = _run_quantized(quant_plan, queries, strategy)

    recalls = [
        recall_at_k(approx, exact)
        for approx, exact in zip(quant_ids, exact_ids)
    ]
    mean_recall = float(np.mean(recalls))
    exact_p50 = float(np.percentile(exact_lat, 50))
    quant_p50 = float(np.percentile(quant_lat, 50))

    sidecar_bytes = _sidecar_bytes(docs, tmp_path)
    float64_bytes = N_DOCS * DIM * F64.itemsize
    sidecar_ratio = sidecar_bytes / float64_bytes

    payload = {
        "n_docs": N_DOCS,
        "dim": DIM,
        "n_shards": N_SHARDS,
        "rescore_width": RESCORE_WIDTH,
        "n_queries": N_QUERIES,
        "k": K,
        "mean_recall_at_k": mean_recall,
        "min_recall_at_k": float(np.min(recalls)),
        "exact_p50_ms": exact_p50 * 1e3,
        "quant_p50_ms": quant_p50 * 1e3,
        "speedup_p50": exact_p50 / quant_p50 if quant_p50 else 0.0,
        "sidecar_bytes": int(sidecar_bytes),
        "float64_bytes": int(float64_bytes),
        "sidecar_ratio": sidecar_ratio,
    }
    atomic_write_json(OUT_PATH, payload, indent=2)
    print(
        f"\nquantized retrieval @ {N_DOCS} docs: float64 exact p50 "
        f"{exact_p50 * 1e3:.2f} ms, int8+rescore(R={RESCORE_WIDTH}) p50 "
        f"{quant_p50 * 1e3:.2f} ms ({payload['speedup_p50']:.1f}x), "
        f"recall@{K} {mean_recall:.3f}, sidecar "
        f"{sidecar_ratio:.2f}x float64 bytes"
    )
    # acceptance bars from the precision-policy issue
    assert sidecar_ratio <= MAX_SIDECAR_RATIO, payload
    assert mean_recall >= MIN_RECALL_RATIO * 1.0, payload
    assert quant_p50 < exact_p50, payload
