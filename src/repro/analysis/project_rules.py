"""Phase 2: rules that reason over the whole-project model.

File-local rules (:mod:`repro.analysis.rules`) see one AST at a time;
the rules here consume the :class:`~repro.analysis.project.ProjectModel`
that phase 1 of the engine assembles from every scanned file. Each one
encodes a cross-file bug class this repo has actually hit or is about to
grow into (ROADMAP: multiprocess shard workers, hot index swap):

* ``unlocked-shared-state`` — the ResultCache/EmbeddingStore bug class:
  a class owns a lock, establishes mutable state in ``__init__``, then a
  public method touches that state without holding any lock.
* ``lock-order-cycle`` — the acquired-while-held graph has a cycle, the
  static signature of a potential AB/BA deadlock.
* ``layering-violation`` — an import contradicts the layer DAG declared
  in ``[tool.repro.lint.layers]``, or a module-level import cycle exists.
* ``dead-symbol`` — a module-level def/class no file in the project ever
  references.

Project rules subclass :class:`ProjectRule`: they opt out of the
per-file phase (``applies_to`` is ``False``) and implement
:meth:`ProjectRule.check_project` instead. The engine still applies
per-line ``# lint: ignore[...]`` suppressions and per-rule ``allow``
path patterns to their findings, so the escape hatches are uniform
across both phases.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.config import LintConfig
from repro.analysis.core import FileContext, Finding, Rule, register
from repro.analysis.project import ClassSummary, ModuleSummary, ProjectModel

#: Directories whose shared-state discipline the lock rules police. The
#: concurrency lives in serving, ingestion, sharding and storage; hot
#: math paths (retriever/nn) are lock-free by design and stay exempt.
SHARED_STATE_DIRS = frozenset({"serve", "ingest", "shard", "storage"})


class ProjectRule(Rule):
    """A rule that runs once over the project model, not per file."""

    def applies_to(self, ctx: FileContext) -> bool:
        return False  # phase 1 never runs project rules

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError


def _tarjan_sccs(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components, iteratively (no recursion limit).

    ``graph`` maps every node to its successor set; successors absent
    from the key set are ignored. Deterministic: nodes are visited in
    sorted order, so SCC discovery order is stable across runs.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = 0
    for start in sorted(graph):
        if start in index:
            continue
        index[start] = lowlink[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        work: List[Tuple[str, Iterator[str]]] = [
            (start, iter(sorted(graph[start])))
        ]
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in graph:
                    continue
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


@register
class UnlockedSharedState(ProjectRule):
    id = "unlocked-shared-state"
    description = (
        "attribute established in __init__ of a lock-owning class is "
        "accessed in a public method without holding any lock"
    )

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterator[Finding]:
        for module in sorted(model.modules):
            summary = model.modules[module]
            if summary.is_test:
                continue
            if not (summary.dir_parts & SHARED_STATE_DIRS):
                continue
            for cls in summary.classes:
                yield from self._check_class(summary, cls)

    def _check_class(
        self, summary: ModuleSummary, cls: ClassSummary
    ) -> Iterator[Finding]:
        if not cls.lock_attrs:
            return
        # shared mutable state: established in __init__, mutated after
        # it. Attributes only ever assigned at construction are
        # immutable configuration and safe to read unlocked.
        shared = (
            set(cls.mutated_attrs) & set(cls.init_attrs)
        ) - set(cls.lock_attrs)
        if not shared:
            return
        locks = ", ".join(f"self.{attr}" for attr in cls.lock_attrs)
        for method in cls.methods:
            if method.is_init or not method.is_public:
                # private methods are presumed called with a lock held
                # by their public callers; the public surface is the gate
                continue
            for access in method.accesses:
                if access.attr not in shared or access.held:
                    continue
                verb = "written" if access.is_write else "read"
                yield Finding(
                    rule_id=self.id,
                    path=summary.rel_path,
                    line=access.line,
                    col=access.col,
                    message=(
                        f"'{access.attr}' is shared mutable state of "
                        f"lock-owning class '{cls.name}' but is {verb} in "
                        f"public method '{method.name}' without holding "
                        f"any of its locks ({locks})"
                    ),
                )


@register
class LockOrderCycle(ProjectRule):
    id = "lock-order-cycle"
    description = (
        "locks are acquired in conflicting orders across methods "
        "(potential deadlock)"
    )

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterator[Finding]:
        # method key -> locks that method acquires, transitively through
        # calls with resolvable receivers
        acquired: Dict[Tuple[str, str, str], Set[str]] = {}
        methods: Dict[
            Tuple[str, str, str], Tuple[ModuleSummary, ClassSummary, object]
        ] = {}
        for module in sorted(model.modules):
            summary = model.modules[module]
            if summary.is_test:
                continue
            for cls in summary.classes:
                for method in cls.methods:
                    key = (module, cls.name, method.name)
                    methods[key] = (summary, cls, method)
                    acquired[key] = {
                        self._lock_id(module, cls.name, acq.attr)
                        for acq in method.acquires
                    }

        def resolve_callee(
            module: str, cls: ClassSummary, receiver: str, name: str
        ) -> Optional[Tuple[str, str, str]]:
            if receiver == "":
                key = (module, cls.name, name)
                return key if key in methods else None
            target_class = cls.attr_types.get(receiver)
            if target_class is None:
                return None
            candidates = model.class_index.get(target_class, ())
            if len(candidates) != 1:
                return None  # ambiguous class name: refuse to guess
            target_module, target_summary = candidates[0]
            key = (target_module, target_summary.name, name)
            return key if key in methods else None

        # fixpoint: propagate acquired-lock sets through resolved calls
        changed = True
        while changed:
            changed = False
            for key, (summary, cls, method) in methods.items():
                module = key[0]
                for call in method.calls:
                    callee = resolve_callee(
                        module, cls, call.receiver, call.method
                    )
                    if callee is None:
                        continue
                    extra = acquired[callee] - acquired[key]
                    if extra:
                        acquired[key] |= extra
                        changed = True

        # the acquired-while-held graph, each edge with its best anchor
        edges: Dict[Tuple[str, str], Tuple[str, int, int]] = {}

        def add_edge(
            held_id: str, taken_id: str, anchor: Tuple[str, int, int]
        ) -> None:
            if held_id == taken_id:
                # re-entrant self-acquire: legal for RLock/Condition and
                # a different bug class for Lock; not an order cycle
                return
            key = (held_id, taken_id)
            if key not in edges or anchor < edges[key]:
                edges[key] = anchor

        for key, (summary, cls, method) in methods.items():
            module = key[0]
            for acq in method.acquires:
                taken = self._lock_id(module, cls.name, acq.attr)
                for held_attr in acq.held:
                    add_edge(
                        self._lock_id(module, cls.name, held_attr),
                        taken,
                        (summary.rel_path, acq.line, acq.col),
                    )
            for call in method.calls:
                if not call.held:
                    continue
                callee = resolve_callee(module, cls, call.receiver, call.method)
                if callee is None:
                    continue
                for taken in acquired[callee]:
                    for held_attr in call.held:
                        add_edge(
                            self._lock_id(module, cls.name, held_attr),
                            taken,
                            (summary.rel_path, call.line, call.col),
                        )

        graph: Dict[str, Set[str]] = {}
        for (src, dst) in edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        for component in _tarjan_sccs(graph):
            if len(component) < 2:
                continue
            members = sorted(component)
            member_set = set(members)
            anchor = min(
                anchor
                for (src, dst), anchor in edges.items()
                if src in member_set and dst in member_set
            )
            yield Finding(
                rule_id=self.id,
                path=anchor[0],
                line=anchor[1],
                col=anchor[2],
                message=(
                    "lock-order cycle (potential deadlock): "
                    + " <-> ".join(members)
                    + "; impose one global acquisition order"
                ),
            )

    @staticmethod
    def _lock_id(module: str, class_name: str, attr: str) -> str:
        return f"{class_name}.{attr}" if module else attr


@register
class LayeringViolation(ProjectRule):
    id = "layering-violation"
    description = (
        "import contradicts the declared layer DAG, or a module-level "
        "import cycle exists"
    )

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterator[Finding]:
        yield from self._check_layers(model, config)
        yield from self._check_cycles(model)

    def _check_layers(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterator[Finding]:
        prefixes: List[Tuple[str, int, str]] = []
        for rank, layer in enumerate(config.layers_order):
            for prefix in config.layers.get(layer, ()):
                prefixes.append((prefix, rank, layer))

        def layer_of(name: str) -> Optional[Tuple[str, int, str]]:
            best: Optional[Tuple[str, int, str]] = None
            for entry in prefixes:
                prefix = entry[0]
                if name == prefix or name.startswith(prefix + "."):
                    if best is None or len(prefix) > len(best[0]):
                        best = entry
            return best

        # NB: layer matching works on the *dotted import target*, not on
        # resolved project modules, so a foundation module importing
        # repro.serve is flagged even when serve/ was not scanned
        for module in sorted(model.modules):
            summary = model.modules[module]
            if summary.is_test:
                continue
            own = layer_of(module)
            if own is None:
                continue
            for edge in summary.imports:
                target = layer_of(edge.target)
                if target is None or target[1] <= own[1]:
                    continue
                yield Finding(
                    rule_id=self.id,
                    path=summary.rel_path,
                    line=edge.line,
                    col=edge.col,
                    message=(
                        f"module '{module}' (layer '{own[2]}') imports "
                        f"'{edge.target}' (layer '{target[2]}'): lower "
                        f"layers must not depend on higher layers"
                    ),
                )

    def _check_cycles(self, model: ProjectModel) -> Iterator[Finding]:
        # only module-level imports participate: a deferred import
        # inside a function body is the sanctioned way to break a cycle,
        # because it runs after both modules finished initializing
        graph: Dict[str, Set[str]] = {}
        edges: Dict[Tuple[str, str], Tuple[str, int, int]] = {}
        for module, summary in model.modules.items():
            graph.setdefault(module, set())
            for edge in summary.imports:
                if edge.deferred:
                    continue
                resolved = model.resolve_import(edge.target)
                if resolved is None or resolved == module:
                    continue
                graph[module].add(resolved)
                graph.setdefault(resolved, set())
                key = (module, resolved)
                anchor = (summary.rel_path, edge.line, edge.col)
                if key not in edges or anchor < edges[key]:
                    edges[key] = anchor
        for component in _tarjan_sccs(graph):
            if len(component) < 2:
                continue
            members = sorted(component)
            member_set = set(members)
            anchor = min(
                anchor
                for (src, dst), anchor in edges.items()
                if src in member_set and dst in member_set
            )
            yield Finding(
                rule_id=self.id,
                path=anchor[0],
                line=anchor[1],
                col=anchor[2],
                message=(
                    "module-level import cycle: "
                    + " <-> ".join(members)
                    + "; defer one import into the function that needs it"
                ),
            )


@register
class DeadSymbol(ProjectRule):
    id = "dead-symbol"
    description = (
        "module-level def/class is never referenced anywhere in the "
        "project"
    )

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterator[Finding]:
        if not model.full_project:
            # a partial run cannot prove absence of references: the use
            # could live in any unscanned configured path
            return
        referenced: Set[str] = set()
        for summary in model.modules.values():
            referenced.update(summary.references)
        allow = config.dead_symbol_allow
        for module in sorted(model.modules):
            summary = model.modules[module]
            if summary.is_test:
                continue  # test helpers answer to pytest, not to us
            for symbol in summary.defs:
                name = symbol.name
                if symbol.decorated:
                    continue  # registered/dispatched via the decorator
                if name.startswith("__") and name.endswith("__"):
                    continue
                if name in referenced:
                    continue
                qualified = f"{module}.{name}"
                if any(
                    fnmatch(name, pattern) or fnmatch(qualified, pattern)
                    for pattern in allow
                ):
                    continue
                yield Finding(
                    rule_id=self.id,
                    path=summary.rel_path,
                    line=symbol.line,
                    col=symbol.col,
                    message=(
                        f"{symbol.kind} '{name}' is never referenced "
                        f"anywhere in the project; delete it or add it "
                        f"to dead-symbol-allow"
                    ),
                )
