"""Text and JSON reporters for analyzer runs."""

from __future__ import annotations

import json

from repro.analysis.core import LintReport

#: Schema version of the JSON report (bump on breaking changes).
JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [
        f"{finding.location()}: {finding.rule_id}: {finding.message}"
        for finding in report.findings
    ]
    cached = (
        f", {report.files_cached} cached" if report.files_cached else ""
    )
    if report.findings:
        by_rule = ", ".join(
            f"{rule_id}={count}" for rule_id, count in sorted(report.counts.items())
        )
        lines.append(
            f"{len(report.findings)} finding(s) in "
            f"{report.files_scanned} file(s) scanned{cached} ({by_rule})"
        )
    else:
        lines.append(
            f"clean: 0 findings in {report.files_scanned} "
            f"file(s) scanned{cached}"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (stable schema, consumed by tooling)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": report.files_scanned,
        "files_cached": report.files_cached,
        "counts": report.counts,
        "findings": [
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in report.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
