"""Micro-benchmark: the offline ingestion path.

Two questions, answered against a synthetic generated world:

* does fanning extraction out over 4 workers beat the sequential path
  (while staying byte-identical to it)?
* does warm-starting :meth:`TripleFactRetrieval.load` from the persisted
  embedding store beat a cold ``fit``?

Writes ``BENCH_ingest.json`` next to this file. Marked ``perf`` +
``ingest``; tier-1 (``testpaths = tests``) never collects it.

The parallel-speedup bar (>= 2x at 4 workers) is only *asserted* when
the machine actually exposes >= 4 CPUs — on a smaller box the numbers
are still measured and recorded, with ``cpu_limited`` set so readers
don't mistake scheduler round-robin for a regression. The byte-identity
check runs unconditionally; determinism doesn't depend on core count.
"""

import os
import time
from pathlib import Path

import pytest

from repro.data import World, WorldConfig, build_corpus, build_hotpot_dataset
from repro.encoder.minibert import EncoderConfig
from repro.ingest import extract_corpus_triples
from repro.perf import COUNTERS
from repro.pipeline.framework import FrameworkConfig, TripleFactRetrieval
from repro.pipeline.multihop import MultiHopConfig
from repro.pipeline.path_ranker import PathRankerConfig
from repro.retriever.store import TripleStore
from repro.retriever.trainer import TrainerConfig
from repro.storage.atomic import atomic_write_json
from repro.updater.updater import UpdaterConfig

pytestmark = [pytest.mark.perf, pytest.mark.ingest]

OUT_PATH = Path(__file__).parent / "BENCH_ingest.json"
BENCH_WORLD = WorldConfig(
    n_persons=48,
    n_clubs=12,
    n_bands=12,
    n_cities=10,
    n_countries=4,
    n_companies=8,
    n_films=8,
    n_universities=4,
    n_awards=4,
    seed=11,
)


@pytest.fixture(scope="module")
def bench_world():
    world = World(BENCH_WORLD)
    return world, build_corpus(world)


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _store_bytes(corpus, triples, tmp_path, name) -> bytes:
    store = TripleStore(corpus)
    for doc_id in sorted(triples):
        store.put(doc_id, triples[doc_id])
    path = tmp_path / name
    store.save(path)
    return path.read_bytes()


def test_ingest_throughput(bench_world, tmp_path):
    world, corpus = bench_world
    cpus = _cpus()
    cpu_limited = cpus < 4

    # -- parallel extraction: timing + byte parity ----------------------
    COUNTERS.reset()
    sequential_s = _time(lambda: extract_corpus_triples(corpus, workers=1))
    parallel_s = _time(lambda: extract_corpus_triples(corpus, workers=4))
    extract_speedup = sequential_s / parallel_s
    sequential = extract_corpus_triples(corpus, workers=1)
    parallel = extract_corpus_triples(corpus, workers=4)
    assert _store_bytes(corpus, sequential, tmp_path, "seq.json") == (
        _store_bytes(corpus, parallel, tmp_path, "par.json")
    )

    # -- warm start vs cold fit -----------------------------------------
    hotpot = build_hotpot_dataset(world, corpus, comparison_per_kind=4)
    config = FrameworkConfig(
        encoder=EncoderConfig(dim=24, n_layers=1, n_heads=2, max_len=32),
        retriever=TrainerConfig(epochs=1, lr=2e-4),
        updater=UpdaterConfig(epochs=1),
        ranker=PathRankerConfig(epochs=1),
        multihop=MultiHopConfig(k_hop1=3, k_hop2=2, k_paths=4),
        max_train_questions=20,
        max_ranker_questions=8,
    )
    cold_start = time.perf_counter()
    system = TripleFactRetrieval(config).fit(corpus, hotpot)
    cold_fit_s = time.perf_counter() - cold_start
    model_dir = tmp_path / "model"
    system.save(model_dir)
    warm_s = _time(
        lambda: TripleFactRetrieval.load(model_dir, corpus, config=config)
    )
    warm_speedup = cold_fit_s / warm_s

    # warm load must answer like the system that produced the artifacts
    question = hotpot.test[0].text
    restored = TripleFactRetrieval.load(model_dir, corpus, config=config)
    assert [r.doc_id for r in system.retrieve_documents(question, k=5)] == (
        [r.doc_id for r in restored.retrieve_documents(question, k=5)]
    )

    payload = {
        "n_docs": len(corpus),
        "n_triples": sum(len(t) for t in sequential.values()),
        "cpus": cpus,
        "cpu_limited": cpu_limited,
        "extract_sequential_seconds": sequential_s,
        "extract_parallel4_seconds": parallel_s,
        "extract_speedup_4workers": extract_speedup,
        "cold_fit_seconds": cold_fit_s,
        "warm_load_seconds": warm_s,
        "warm_start_speedup": warm_speedup,
        "counters": COUNTERS.snapshot(),
    }
    atomic_write_json(OUT_PATH, payload, indent=2)
    print(
        f"\ningest throughput: extract seq {sequential_s * 1e3:.0f} ms, "
        f"4 workers {parallel_s * 1e3:.0f} ms ({extract_speedup:.2f}x, "
        f"{cpus} cpu(s)); cold fit {cold_fit_s:.2f} s, "
        f"warm load {warm_s * 1e3:.0f} ms ({warm_speedup:.0f}x)"
    )
    assert warm_speedup >= 10.0, payload
    if not cpu_limited:
        # acceptance bar from the issue; meaningless on a <4-core box
        assert extract_speedup >= 2.0, payload
