"""Evaluation: the paper's metrics and per-table experiment harnesses."""

from repro.eval.metrics import (
    paragraph_recall,
    paragraph_exact_match,
    path_exact_match,
    RetrievalScorecard,
)
from repro.eval.harness import (
    ExperimentContext,
    ExperimentScale,
    SMALL,
    FULL,
    current_scale,
    shared_context,
)
from repro.eval.tables import format_table, row_from_scorecard

__all__ = [
    "paragraph_recall",
    "paragraph_exact_match",
    "path_exact_match",
    "RetrievalScorecard",
    "ExperimentContext",
    "ExperimentScale",
    "SMALL",
    "FULL",
    "current_scale",
    "shared_context",
    "format_table",
    "row_from_scorecard",
]
