"""Score-calculation strategies (paper Sec. III-B and Table IV).

Given the cosine scores of a question against one document's triple facts:

* ``one_fact`` — Eq. 2: the maximum ("One Fact" hypothesis),
* ``top_k`` — Eq. 6: the mean of the k best,
* ``mean`` — Eq. 7: the mean over all (simulating full-text compression).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

ONE_FACT = "one_fact"
TOP_K = "top_k"
MEAN = "mean"


@dataclass(frozen=True)
class ScoreStrategy:
    """A named strategy with its parameter (k for top-k)."""

    name: str = ONE_FACT
    k: int = 2

    def aggregate(self, scores: np.ndarray) -> float:
        """Collapse per-triple scores into one document score."""
        if scores.size == 0:
            return -1.0  # cosine lower bound: a document with no triples
        if self.name == ONE_FACT:
            return float(scores.max())
        if self.name == TOP_K:
            k = min(self.k, scores.size)
            top = np.partition(scores, -k)[-k:]
            return float(top.mean())
        if self.name == MEAN:
            return float(scores.mean())
        raise ValueError(f"unknown strategy {self.name!r}")

    def matched_index(self, scores: np.ndarray) -> int:
        """Index of the explaining triple (argmax) — the paper's
        explainability hook; -1 when the document has no triples."""
        if scores.size == 0:
            return -1
        return int(scores.argmax())


def cosine_matrix(query_vec: np.ndarray, triple_matrix: np.ndarray,
                  eps: float = 1e-8) -> np.ndarray:
    """Cosine of one query vector against rows of ``triple_matrix``."""
    if triple_matrix.size == 0:
        return np.zeros(0)
    q_norm = np.linalg.norm(query_vec) + eps
    t_norms = np.linalg.norm(triple_matrix, axis=1) + eps
    return (triple_matrix @ query_vec) / (t_norms * q_norm)


def score_documents(
    query_vec: np.ndarray,
    doc_triple_matrices: Dict[int, np.ndarray],
    strategy: ScoreStrategy,
) -> Dict[int, float]:
    """Score every document by its aggregated triple-fact similarity."""
    return {
        doc_id: strategy.aggregate(cosine_matrix(query_vec, matrix))
        for doc_id, matrix in doc_triple_matrices.items()
    }
