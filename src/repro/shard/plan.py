"""The sharded scoring plan: per-shard top-k with an exact global merge.

A :class:`ShardPlan` splits one stacked, L2-normalized triple matrix
into N shards (each document's triples live wholly in one shard) plus a
coarse-quantization layer: one unit centroid per shard. A query scores
the centroids first and prunes to the ``nprobe`` closest shards before
any triple matmul runs — the IVF structure that decouples query cost
from total corpus size.

Exactness contract: per-document scores are plain dot products against
the same normalized rows, so they are bitwise identical to the
unsharded path, and the global merge orders by ``(score desc, doc id
asc)`` — a total order. With ``nprobe = n_shards`` (no pruning) sharded
retrieval is therefore *provably byte-identical* to exact top-k; with
``nprobe < n_shards`` it trades recall for a proportional cut in matmul
work. The 1/2/4-shard parity tests pin the first property, the
recall-monotonicity property tests the second.

A plan built with ``quantize=True`` additionally carries a symmetric
per-row int8 copy of every shard matrix (one float32 scale per row —
8x smaller than float64, what makes millions of docs fit in RAM).
:meth:`ShardPlan.search_quantized` scores the int8 copy *coarsely*,
keeps the top ``rescore_width`` documents per query under the same
``(score desc, doc id asc)`` total order, then rescores exactly those
documents' float rows. Because the survivor set is a prefix of the
coarse total order, widening ``rescore_width`` can only add documents —
recall@k is monotone in the rescore width, and equals exact recall once
every true top-k document survives the coarse cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.precision import (
    ACCUM_DTYPE,
    coarse_scores,
    ensure_float,
    quantize_rows,
)
from repro.retriever.strategies import (
    ScoreStrategy,
    aggregate_segments,
)
from repro.shard.assignment import (
    MODES,
    assign_documents,
    segment_means,
)
from repro.shard.merge import topk_doc_order


@dataclass
class Shard:
    """One shard: a doc subset, their triple rows, and a coarse centroid."""

    shard_id: int
    doc_ids: np.ndarray  # (n_docs,) int64, ascending
    offsets: np.ndarray  # (n_docs,) int64 shard-local segment starts
    matrix: np.ndarray  # (n_rows, dim) L2-normalized triple rows
    centroid: np.ndarray  # (dim,) unit centroid (zero when empty)
    q_matrix: Optional[np.ndarray] = None  # (n_rows, dim) int8 rows
    q_scales: Optional[np.ndarray] = None  # (n_rows,) float32 row scales

    @property
    def n_rows(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def quantized(self) -> bool:
        return self.q_matrix is not None

    def __len__(self) -> int:
        return int(self.doc_ids.shape[0])


class QueryShardScores:
    """One query's scored shards, mergeable into a global ranking.

    Concatenates the per-shard per-document aggregates in probe order;
    :meth:`triple_scores` recovers the flat per-triple scores of one
    ranked document (the explanation path) without re-scoring.
    """

    __slots__ = (
        "doc_ids",
        "scores",
        "matched",
        "n_triples",
        "_bounds",
        "_flats",
        "_offsets",
    )

    def __init__(self) -> None:
        self.doc_ids = np.zeros(0, dtype=np.int64)
        self.scores = np.zeros(0, dtype=ACCUM_DTYPE)
        self.matched = np.zeros(0, dtype=np.int64)
        self.n_triples = 0
        self._bounds: List[int] = [0]
        self._flats: List[np.ndarray] = []
        self._offsets: List[np.ndarray] = []

    def add_shard(
        self,
        shard: Shard,
        flat_scores: np.ndarray,
        aggregated: np.ndarray,
        matched: np.ndarray,
    ) -> None:
        self.doc_ids = np.concatenate([self.doc_ids, shard.doc_ids])
        self.scores = np.concatenate([self.scores, aggregated])
        self.matched = np.concatenate([self.matched, matched])
        self.n_triples += int(flat_scores.shape[0])
        self._bounds.append(int(self.doc_ids.shape[0]))
        self._flats.append(flat_scores)
        self._offsets.append(shard.offsets)

    def triple_scores(self, position: int) -> np.ndarray:
        """Flat triple scores of the document at merged ``position``."""
        bounds = self._bounds
        shard_index = (
            int(np.searchsorted(bounds, position, side="right")) - 1
        )
        local = position - bounds[shard_index]
        offsets = self._offsets[shard_index]
        flat = self._flats[shard_index]
        start = int(offsets[local])
        stop = (
            int(offsets[local + 1])
            if local + 1 < offsets.shape[0]
            else flat.shape[0]
        )
        return flat[start:stop].copy()


class QueryDocScores:
    """One query's quantized-search result, merge-compatible with
    :class:`QueryShardScores`.

    Holds only the documents that survived the coarse int8 cut, with
    their *exact* rescored aggregates; :meth:`triple_scores` recovers
    the exact flat per-triple scores of one surviving document.
    """

    __slots__ = (
        "doc_ids",
        "scores",
        "matched",
        "n_triples",
        "_flat",
        "_offsets",
    )

    def __init__(
        self,
        doc_ids: np.ndarray,
        scores: np.ndarray,
        matched: np.ndarray,
        flat: np.ndarray,
        offsets: np.ndarray,
    ) -> None:
        self.doc_ids = doc_ids
        self.scores = scores
        self.matched = matched
        self.n_triples = int(flat.shape[0])
        self._flat = flat
        self._offsets = offsets

    def triple_scores(self, position: int) -> np.ndarray:
        """Exact flat triple scores of the document at ``position``."""
        offsets = self._offsets
        start = int(offsets[position])
        stop = (
            int(offsets[position + 1])
            if position + 1 < offsets.shape[0]
            else self._flat.shape[0]
        )
        return self._flat[start:stop].copy()


class ShardPlan:
    """N shards over one stacked matrix + the centroid pruning layer."""

    def __init__(
        self,
        shards: List[Shard],
        mode: str,
        assignment: Dict[int, int],
        quantized: bool = False,
    ):
        self.shards = shards
        self.mode = mode
        self.assignment = assignment  # doc_id -> shard_id
        self.quantized = quantized
        self.centroids = (
            np.stack([s.centroid for s in shards])
            if shards
            else np.zeros((0, 0), dtype=ACCUM_DTYPE)
        )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def total_rows(self) -> int:
        return sum(shard.n_rows for shard in self.shards)

    @property
    def total_docs(self) -> int:
        return sum(len(shard) for shard in self.shards)

    # -- construction ----------------------------------------------------
    @classmethod
    def build(
        cls,
        normed_matrix: np.ndarray,
        doc_ids: Sequence[int],
        offsets: Sequence[int],
        n_shards: int,
        mode: str = "range",
        assignment: Optional[Dict[int, int]] = None,
        quantize: bool = False,
    ) -> "ShardPlan":
        """Split a stacked normalized matrix into a scoring plan.

        ``doc_ids``/``offsets`` describe the segment layout exactly as
        :class:`~repro.ingest.embedding_store.EmbeddingStore` does. An
        explicit ``assignment`` (doc_id -> shard_id, e.g. from a persisted
        sharded manifest) wins over recomputing one; it must cover every
        document. ``quantize`` additionally derives the per-shard int8
        copies that :meth:`search_quantized` scores.
        """
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if mode not in MODES:
            raise ValueError(
                f"unknown shard mode {mode!r} (expected {MODES})"
            )
        # dtype-preserving: the precision policy chose the matrix dtype
        # upstream; sharding must not silently widen a float32 corpus
        normed_matrix = ensure_float(normed_matrix)
        doc_id_arr = np.asarray(list(doc_ids), dtype=np.int64)
        offset_arr = np.asarray(list(offsets), dtype=np.int64)
        n_docs = doc_id_arr.shape[0]
        total = normed_matrix.shape[0]
        stops = (
            np.concatenate([offset_arr[1:], [total]])
            if n_docs
            else np.zeros(0, dtype=np.int64)
        )
        if assignment is not None and all(
            int(d) in assignment for d in doc_id_arr
        ):
            labels = np.asarray(
                [assignment[int(d)] for d in doc_id_arr], dtype=np.int64
            )
        elif mode == "centroid":
            labels = assign_documents(
                mode,
                n_docs,
                n_shards,
                doc_vectors=segment_means(normed_matrix, offset_arr),
            )
        else:
            labels = assign_documents(mode, n_docs, n_shards)
        shards: List[Shard] = []
        contiguous = _labels_are_contiguous(labels)
        for shard_id in range(n_shards):
            positions = np.nonzero(labels == shard_id)[0]
            if positions.size == 0:
                dim = normed_matrix.shape[1] if normed_matrix.ndim == 2 else 0
                shards.append(
                    Shard(
                        shard_id=shard_id,
                        doc_ids=np.zeros(0, dtype=np.int64),
                        offsets=np.zeros(0, dtype=np.int64),
                        matrix=np.zeros((0, dim), dtype=normed_matrix.dtype),
                        centroid=np.zeros(dim, dtype=normed_matrix.dtype),
                    )
                )
                continue
            lengths = stops[positions] - offset_arr[positions]
            local_offsets = np.concatenate(
                [[0], np.cumsum(lengths)[:-1]]
            ).astype(np.int64)
            if contiguous:
                # contiguous doc chunk -> the shard matrix is a zero-copy
                # view into the stacked matrix
                row_start = int(offset_arr[positions[0]])
                row_stop = int(stops[positions[-1]])
                matrix = normed_matrix[row_start:row_stop]
            else:
                pieces = [
                    normed_matrix[offset_arr[p] : stops[p]]
                    for p in positions
                ]
                matrix = (
                    np.concatenate(pieces)
                    if pieces
                    else np.zeros(
                        (0, normed_matrix.shape[1]),
                        dtype=normed_matrix.dtype,
                    )
                )
            if matrix.shape[0]:
                mean = np.asarray(matrix).mean(axis=0)
                norm = np.linalg.norm(mean)
                centroid = mean / norm if norm > 0.0 else mean
            else:
                centroid = np.zeros(
                    normed_matrix.shape[1], dtype=normed_matrix.dtype
                )
            shards.append(
                Shard(
                    shard_id=shard_id,
                    doc_ids=doc_id_arr[positions],
                    offsets=local_offsets,
                    matrix=matrix,
                    centroid=centroid,
                )
            )
        mapping = {
            int(doc_id_arr[i]): int(labels[i]) for i in range(n_docs)
        }
        plan = cls(shards=shards, mode=mode, assignment=mapping)
        if quantize:
            plan.quantize()
        return plan

    def quantize(self) -> "ShardPlan":
        """Derive the int8 copy of every shard matrix (idempotent).

        Quantization is deterministic — re-quantizing the same float rows
        yields byte-identical int8/scale arrays — so a plan rebuilt from
        a persisted store and one carrying the store's persisted sidecar
        score identically.
        """
        for shard in self.shards:
            if shard.q_matrix is None:
                shard.q_matrix, shard.q_scales = quantize_rows(shard.matrix)
        self.quantized = True
        return self

    # -- query path ------------------------------------------------------
    def probe(
        self, queries_normed: np.ndarray, nprobe: Optional[int] = None
    ) -> List[np.ndarray]:
        """Per-query shard ids to score, closest centroid first.

        ``nprobe`` of None (or >= ``n_shards``) probes everything — the
        no-pruning, provably exact configuration. Centroid ties break
        toward the lower shard id so probing is deterministic.
        """
        n_shards = self.n_shards
        nprobe = n_shards if nprobe is None else max(1, int(nprobe))
        nprobe = min(nprobe, n_shards)
        queries_normed = np.atleast_2d(queries_normed)
        if nprobe >= n_shards:
            every = np.arange(n_shards, dtype=np.int64)
            return [every for _ in range(queries_normed.shape[0])]
        centroid_scores = queries_normed @ self.centroids.T
        shard_ids = np.arange(n_shards, dtype=np.int64)
        out: List[np.ndarray] = []
        for row in centroid_scores:
            order = np.lexsort((shard_ids, -row))
            out.append(order[:nprobe].astype(np.int64))
        return out

    def search(
        self,
        queries_normed: np.ndarray,
        strategy: ScoreStrategy,
        nprobe: Optional[int] = None,
    ) -> List[QueryShardScores]:
        """Score every query against its probed shards (shard-major).

        Executes one matmul per (shard, queries-probing-it) group so a
        batch pays each shard's matrix at most once, then aggregates per
        document with the same segment reductions as the unsharded path.
        """
        queries_normed = np.atleast_2d(ensure_float(queries_normed))
        probed = self.probe(queries_normed, nprobe)
        results = [QueryShardScores() for _ in range(len(probed))]
        by_shard: Dict[int, List[int]] = {}
        for query_index, shard_ids in enumerate(probed):
            for shard_id in shard_ids:
                by_shard.setdefault(int(shard_id), []).append(query_index)
        for shard_id in sorted(by_shard):
            shard = self.shards[shard_id]
            if len(shard) == 0:
                continue
            query_indices = by_shard[shard_id]
            flat_block = queries_normed[query_indices] @ shard.matrix.T
            for row, query_index in enumerate(query_indices):
                flat = flat_block[row]
                aggregated, matched = aggregate_segments(
                    flat, shard.offsets, strategy
                )
                results[query_index].add_shard(
                    shard, flat, aggregated, matched
                )
        return results

    def search_quantized(
        self,
        queries_normed: np.ndarray,
        strategy: ScoreStrategy,
        rescore_width: int,
        nprobe: Optional[int] = None,
    ) -> List[QueryDocScores]:
        """Coarse int8 scoring, then an exact rescore of the survivors.

        Per probed shard the int8 copy is scored chunk-wise (~1 byte of
        DRAM traffic per matrix element) and aggregated per document;
        the global top-``rescore_width`` documents per query — under the
        same ``(score desc, doc id asc)`` total order as every other
        ranking site — then have their *float* rows re-scored with one
        exact matmul. Survivors form a prefix of the coarse total order,
        so recall@k is monotone in ``rescore_width``.
        """
        if not self.quantized:
            raise ValueError(
                "plan has no int8 copy; build with quantize=True or "
                "call plan.quantize() first"
            )
        queries_normed = np.atleast_2d(ensure_float(queries_normed))
        rescore_width = max(1, int(rescore_width))
        n_queries = queries_normed.shape[0]
        dim = queries_normed.shape[1]
        probed = self.probe(queries_normed, nprobe)
        by_shard: Dict[int, List[int]] = {}
        for query_index, shard_ids in enumerate(probed):
            for shard_id in shard_ids:
                by_shard.setdefault(int(shard_id), []).append(query_index)
        # per-query parallel accumulators over every probed shard's docs:
        # coarse aggregate + enough layout to find the float rows again
        acc_docs: List[List[np.ndarray]] = [[] for _ in range(n_queries)]
        acc_scores: List[List[np.ndarray]] = [[] for _ in range(n_queries)]
        acc_shards: List[List[np.ndarray]] = [[] for _ in range(n_queries)]
        acc_starts: List[List[np.ndarray]] = [[] for _ in range(n_queries)]
        acc_stops: List[List[np.ndarray]] = [[] for _ in range(n_queries)]
        for shard_id in sorted(by_shard):
            shard = self.shards[shard_id]
            if len(shard) == 0:
                continue
            query_indices = by_shard[shard_id]
            coarse = coarse_scores(
                shard.q_matrix,
                shard.q_scales,
                queries_normed[query_indices],
            )
            stops = np.concatenate(
                [shard.offsets[1:], [shard.n_rows]]
            ).astype(np.int64)
            marks = np.full(len(shard), shard_id, dtype=np.int64)
            for column, query_index in enumerate(query_indices):
                aggregated, _ = aggregate_segments(
                    coarse[:, column], shard.offsets, strategy
                )
                acc_docs[query_index].append(shard.doc_ids)
                acc_scores[query_index].append(aggregated)
                acc_shards[query_index].append(marks)
                acc_starts[query_index].append(shard.offsets)
                acc_stops[query_index].append(stops)
        results: List[QueryDocScores] = []
        for query_index in range(n_queries):
            if acc_docs[query_index]:
                doc_ids = np.concatenate(acc_docs[query_index])
                coarse_agg = np.concatenate(acc_scores[query_index])
                shard_ids = np.concatenate(acc_shards[query_index])
                starts = np.concatenate(acc_starts[query_index])
                stops = np.concatenate(acc_stops[query_index])
            else:
                doc_ids = np.zeros(0, dtype=np.int64)
                coarse_agg = np.zeros(0, dtype=ACCUM_DTYPE)
                shard_ids = np.zeros(0, dtype=np.int64)
                starts = np.zeros(0, dtype=np.int64)
                stops = np.zeros(0, dtype=np.int64)
            survivors = topk_doc_order(coarse_agg, doc_ids, rescore_width)
            pieces = [
                self.shards[int(shard_ids[pos])].matrix[
                    int(starts[pos]) : int(stops[pos])
                ]
                for pos in survivors
            ]
            rescore_matrix = (
                np.concatenate(pieces)
                if pieces
                else np.zeros((0, dim), dtype=queries_normed.dtype)
            )
            lengths = np.asarray(
                [piece.shape[0] for piece in pieces], dtype=np.int64
            )
            offsets = np.concatenate(
                [[0], np.cumsum(lengths)[:-1]]
            ).astype(np.int64) if pieces else np.zeros(0, dtype=np.int64)
            flat = rescore_matrix @ queries_normed[query_index]
            aggregated, matched = aggregate_segments(
                flat, offsets, strategy
            )
            results.append(
                QueryDocScores(
                    doc_ids=doc_ids[survivors],
                    scores=aggregated,
                    matched=matched,
                    flat=flat,
                    offsets=offsets,
                )
            )
        return results


def _labels_are_contiguous(labels: np.ndarray) -> bool:
    """True when equal labels occupy one contiguous run (range layout)."""
    if labels.shape[0] <= 1:
        return True
    return bool(np.all(np.diff(labels) >= 0))
