"""Shared dense bi-encoder machinery for the learned baselines.

TPRR, MDR and HopRetriever all encode *full document text* into a single
vector (the design the paper contrasts with triple-level matching). This
module provides the common pieces: a document-embedding matrix, MIPS-style
scoring, and listwise fine-tuning on the same mined (1 positive + 9
negative) examples the triple retriever trains on — so the comparison
isolates the representation, not the training recipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.corpus import Corpus
from repro.encoder.minibert import EncoderConfig, MiniBertEncoder
from repro.nn.losses import cosine_similarity
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.perf import COUNTERS, time_block
from repro.retriever.negatives import TrainingExample
from repro.retriever.strategies import l2_normalize_rows, l2_normalize_vec


@dataclass
class DenseConfig:
    """Dense-baseline training knobs."""

    epochs: int = 2
    lr: float = 3e-4
    logit_scale: float = 4.0
    max_doc_tokens: int = 46  # document text truncation before encoding
    clip_norm: float = 5.0
    seed: int = 31
    freeze_embeddings: bool = True


class DenseRetriever:
    """A full-text dense bi-encoder over a corpus.

    Subclasses override :meth:`document_text` to change what gets encoded
    (e.g. HopRetriever appends entity mentions).
    """

    def __init__(
        self,
        encoder: MiniBertEncoder,
        corpus: Corpus,
        config: Optional[DenseConfig] = None,
    ):
        self.encoder = encoder
        self.corpus = corpus
        self.config = config or DenseConfig()
        self._doc_normed: Optional[np.ndarray] = None
        self._rng = np.random.RandomState(self.config.seed)

    # -- representation ----------------------------------------------------
    def document_text(self, doc_id: int) -> str:
        """The text encoded for one document (truncate to max length)."""
        text = self.corpus[doc_id].text
        tokens = text.split()
        return " ".join(tokens[: self.config.max_doc_tokens])

    def refresh_embeddings(self, batch_size: int = 128) -> None:
        """(Re-)encode every document into the MIPS matrix."""
        texts = [self.document_text(d.doc_id) for d in self.corpus]
        matrix = self.encoder.encode_numpy(texts, batch_size=batch_size)
        COUNTERS.record_encode(len(texts))
        self._doc_normed = l2_normalize_rows(matrix)

    def _ensure_fresh(self) -> None:
        if self._doc_normed is None:
            self.refresh_embeddings()

    # -- retrieval ----------------------------------------------------------
    def encode_query(self, query: str) -> np.ndarray:
        """Normalized query embedding."""
        COUNTERS.record_encode(1)
        return l2_normalize_vec(self.encoder.encode_numpy([query])[0])

    def encode_queries(self, queries: Sequence[str]) -> np.ndarray:
        """Row-normalized query embeddings, one encoder pass."""
        if not queries:
            return np.zeros((0, self.encoder.config.dim))
        COUNTERS.record_encode(len(queries))
        return l2_normalize_rows(self.encoder.encode_numpy(list(queries)))

    def retrieve(
        self, query: str, k: int = 10, exclude: Optional[Sequence[int]] = None
    ) -> List[Tuple[int, float]]:
        """Top-k (doc_id, cosine) via maximum inner-product search."""
        return self.retrieve_by_vector(self.encode_query(query), k, exclude)

    def retrieve_by_vector(
        self,
        query_vec: np.ndarray,
        k: int = 10,
        exclude: Optional[Sequence[int]] = None,
    ) -> List[Tuple[int, float]]:
        """MIPS with a precomputed (normalized) query vector."""
        self._ensure_fresh()
        with time_block() as elapsed:
            scores = self._doc_normed @ query_vec
        COUNTERS.record_scoring(
            1, self._doc_normed.shape[0], self._doc_normed.shape[0],
            elapsed(),
        )
        return self._top_k(scores, k, exclude)

    def retrieve_batch(
        self,
        query_matrix: np.ndarray,
        k: int = 10,
        exclude: Optional[Sequence[Optional[Sequence[int]]]] = None,
    ) -> List[List[Tuple[int, float]]]:
        """MIPS for many queries with one ``Q×D`` matmul.

        ``exclude``, when given, holds one exclusion list per query row.
        """
        self._ensure_fresh()
        queries = np.atleast_2d(np.asarray(query_matrix))
        if queries.shape[0] == 0:
            return []
        with time_block() as elapsed:
            score_matrix = queries @ self._doc_normed.T
        COUNTERS.record_scoring(
            queries.shape[0],
            self._doc_normed.shape[0],
            self._doc_normed.shape[0],
            elapsed(),
        )
        return [
            self._top_k(
                row, k, exclude[i] if exclude is not None else None
            )
            for i, row in enumerate(score_matrix)
        ]

    def _top_k(self, scores, k, exclude):
        excluded = set(exclude or ())
        # stable sort on -scores: ties keep input order = ascending doc
        # id, the same (score desc, id asc) total order as topk_doc_order
        order = np.argsort(-scores, kind="stable")
        out: List[Tuple[int, float]] = []
        for index in order:
            doc_id = int(index)
            if doc_id in excluded:
                continue
            out.append((doc_id, float(scores[index])))
            if len(out) == k:
                break
        return out

    def retrieve_titles(self, query: str, k: int = 10) -> List[str]:
        return [self.corpus[d].title for d, _ in self.retrieve(query, k=k)]

    # -- two-hop paths -------------------------------------------------------
    def hop2_query(self, question: str, doc_id: int) -> str:
        """The hop-2 query given a hop-1 document (subclass-specific)."""
        raise NotImplementedError

    def two_hop_paths(
        self,
        question: str,
        k_hop1: int,
        k_hop2: int,
        k_paths: int = 8,
    ) -> List[Tuple[str, ...]]:
        """Beam two-hop retrieval with additive path scores.

        The shared skeleton of the TPRR / MDR / HopRetriever baselines:
        hop-2 queries for the whole hop-1 beam are encoded in one batch
        and scored with a single matmul via :meth:`retrieve_batch`.
        """
        hop1_results = self.retrieve(question, k=k_hop1)
        queries = [
            self.hop2_query(question, doc_id) for doc_id, _ in hop1_results
        ]
        query_matrix = self.encode_queries(queries)
        hop2_lists = self.retrieve_batch(
            query_matrix,
            k=k_hop2,
            exclude=[[doc_id] for doc_id, _ in hop1_results],
        )
        paths: List[Tuple[str, ...]] = []
        scores: List[float] = []
        seen = set()
        for (hop1_id, hop1_score), hop2_results in zip(
            hop1_results, hop2_lists
        ):
            for hop2_id, hop2_score in hop2_results:
                key = (hop1_id, hop2_id)
                if key in seen:
                    continue
                seen.add(key)
                paths.append(
                    (self.corpus[hop1_id].title, self.corpus[hop2_id].title)
                )
                scores.append(hop1_score + hop2_score)
        order = sorted(range(len(paths)), key=lambda i: -scores[i])
        return [paths[i] for i in order[:k_paths]]

    # -- training -----------------------------------------------------------
    def train(
        self, examples: Sequence[TrainingExample], verbose: bool = False
    ) -> List[float]:
        """Listwise fine-tuning on mined 1-pos + 9-neg examples."""
        cfg = self.config
        model = self.encoder.model
        model.train()
        parameters = model.parameters()
        if cfg.freeze_embeddings:
            frozen = {
                id(model.token_embedding.weight),
                id(model.position_embedding.weight),
            }
            parameters = [p for p in parameters if id(p) not in frozen]
        optimizer = Adam(parameters, lr=cfg.lr)
        losses: List[float] = []
        examples = list(examples)
        for epoch in range(cfg.epochs):
            order = self._rng.permutation(len(examples))
            epoch_losses = []
            for i in order:
                example = examples[i]
                doc_ids = [example.positive_doc_id] + list(example.negative_doc_ids)
                texts = [example.question] + [
                    self.document_text(d) for d in doc_ids
                ]
                embeddings = self.encoder.encode(texts)
                scores = cosine_similarity(embeddings[0], embeddings[1:])
                logits = scores * cfg.logit_scale
                loss = -logits.softmax(axis=-1).log()[0]
                model.zero_grad()
                loss.backward()
                optimizer.clip_grad_norm(cfg.clip_norm)
                optimizer.step()
                epoch_losses.append(loss.item())
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
            losses.append(mean_loss)
            if verbose:  # pragma: no cover
                print(f"[dense] epoch {epoch + 1}/{cfg.epochs} loss={mean_loss:.4f}")
        model.eval()
        self.refresh_embeddings()
        return losses
