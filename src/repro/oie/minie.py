"""MinIE-style minimizing extractor.

Reproduces the qualitative profile of Gashteovski et al.'s MinIE as the
paper characterizes it: constituents are *minimized* (determiners and
adverbs dropped), prepositional attachments are split into separate
compact triples ("better extraction ability for the long sentence"), and
coordinated objects become separate minimized triples with no noise
cascade.
"""

from __future__ import annotations

from typing import List

from repro.oie.base import (
    OpenIEExtractor,
    parse_clause,
    split_conjuncts,
    strip_determiners,
)
from repro.oie.triple import Triple


class MinIEExtractor(OpenIEExtractor):
    """Minimizing OIE (MinIE stand-in)."""

    name = "minie"

    def extract_sentence(self, sentence: str, sentence_index: int = 0) -> List[Triple]:
        clause = parse_clause(sentence)
        if clause is None or not clause.segments:
            return []
        subject = clause.subject_text
        verb = clause.verb_text
        triples: List[Triple] = []
        for segment in clause.segments:
            predicate = verb if segment.preposition is None else (
                f"{verb} {segment.preposition}"
            )
            conjuncts = split_conjuncts(segment.tokens)
            if not conjuncts:
                continue
            for conjunct in conjuncts:
                minimized = strip_determiners(conjunct)
                if not minimized:
                    continue
                triples.append(
                    Triple(
                        subject=subject,
                        predicate=predicate,
                        object=" ".join(minimized),
                        source=self.name,
                        sentence_index=sentence_index,
                        confidence=0.9,
                    )
                )
        return triples
