"""TPRR baseline (Zhang et al. 2021): full-text dense encoding + path rank.

"TPRR encodes the complete document plain text and question to dense
representations in a vector space and projects the vector to a scalar
score" — a CLS-style bi-encoder over the whole document, with a path
stage that scores hop-2 candidates against the question concatenated with
the hop-1 document (its global path supervision, approximated forward).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.dense_base import DenseConfig, DenseRetriever
from repro.data.corpus import Corpus
from repro.encoder.minibert import MiniBertEncoder


class TPRRRetriever(DenseRetriever):
    """Full-text dense retriever with two-hop path construction."""

    def __init__(
        self,
        encoder: MiniBertEncoder,
        corpus: Corpus,
        config: Optional[DenseConfig] = None,
        k_hop1: int = 8,
        k_hop2: int = 4,
    ):
        super().__init__(encoder, corpus, config)
        self.k_hop1 = k_hop1
        self.k_hop2 = k_hop2

    def retrieve_documents(self, question: str, k: int = 8) -> List[str]:
        """One-hop retrieval (the Table IV "TPR" row)."""
        return self.retrieve_titles(question, k=k)

    def hop2_query(self, question: str, doc_id: int) -> str:
        """Path query: question ⊕ hop-1 document text (truncated)."""
        return f"{question} {self.document_text(doc_id)}"

    def retrieve_paths(
        self, question: str, k_paths: int = 8
    ) -> List[Tuple[str, ...]]:
        """Two-hop dense path retrieval with additive path scores."""
        return self.two_hop_paths(
            question, self.k_hop1, self.k_hop2, k_paths=k_paths
        )
