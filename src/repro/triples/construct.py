"""Algorithm 1 — partition-based triple-fact set construction.

The paper's main non-neural contribution: build a *complete-minimized*
triple fact set ``T_d`` (|T_d| <= l) from the union extraction ``T_o`` in
O(m^2), via relatedness pruning, canopy partitioning, greedy mother-child
cover and sibling fusion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.index.entity_index import EntityIndex
from repro.oie.triple import Triple
from repro.oie.union import UnionExtractor, dedupe_triples
from repro.triples.canopy import build_canopies
from repro.triples.relatedness import prune_noise, relatedness
from repro.triples.setcover import greedy_cover
from repro.triples.sibling import fuse_siblings


@dataclass
class ConstructionConfig:
    """Knobs of Algorithm 1 (paper defaults: l=40, max length 256)."""

    threshold_size: int = 40  # l: maximum |T_d|
    max_triple_chars: int = 256  # maximum flattened length of one triple
    sibling_alpha: float = 0.75  # sibling similarity threshold
    min_relatedness: float = 1e-9  # Eq. 1 pruning threshold
    min_alpha: float = 0.45  # floor when tightening the budget


@dataclass
class ConstructionResult:
    """The constructed set plus provenance counters (for tests/ablations)."""

    triples: List[Triple]
    union_size: int = 0
    pruned_noise: int = 0
    removed_children: int = 0
    fused: int = 0
    truncated: int = 0


class TripleSetConstructor:
    """Builds ``T_d`` for documents (paper Algorithm 1).

    Parameters
    ----------
    config:
        Algorithm knobs.
    linker:
        Optional :class:`EntityIndex` used for the Eq. 1 relatedness score.
        Without a linker, noise pruning is skipped (every triple scores
        equally) but redundancy removal still runs.
    extractor:
        OIE extractor producing the union set; defaults to
        pattern ∪ MinIE as in the paper.
    """

    def __init__(
        self,
        config: Optional[ConstructionConfig] = None,
        linker: Optional[EntityIndex] = None,
        extractor: Optional[UnionExtractor] = None,
    ):
        self.config = config or ConstructionConfig()
        self.linker = linker
        self.extractor = extractor or UnionExtractor()

    # -- public API ---------------------------------------------------------
    def construct_from_text(
        self,
        text: str,
        title: Optional[str] = None,
        entity_kind: Optional[str] = None,
        doc_entities: Optional[Sequence[str]] = None,
    ) -> ConstructionResult:
        """Extract the union set from raw text, then construct ``T_d``."""
        union = self.extractor.extract_document(
            text, title=title, entity_kind=entity_kind
        )
        return self.construct(union, doc_entities=doc_entities)

    def construct(
        self,
        union_triples: Sequence[Triple],
        doc_entities: Optional[Sequence[str]] = None,
    ) -> ConstructionResult:
        """Run Algorithm 1 over an already-extracted union set ``T_o``."""
        cfg = self.config
        union = dedupe_triples(union_triples)
        result = ConstructionResult(triples=[], union_size=len(union))

        # line 2-3: relatedness pruning
        if self.linker is not None and doc_entities:
            survivors, _scores = prune_noise(
                union, doc_entities, self.linker, cfg.min_relatedness
            )
        else:
            survivors = list(union)
        result.pruned_noise = len(union) - len(survivors)

        # line 4: canopy partition
        canopies = build_canopies(survivors)

        # lines 6-12: inner clustering per canopy, tightening until <= l
        alpha = cfg.sibling_alpha
        constructed = self._one_round(canopies, alpha, result)
        while len(constructed) > cfg.threshold_size and alpha > cfg.min_alpha:
            alpha -= 0.1
            canopies = build_canopies(constructed)
            constructed = self._one_round(canopies, alpha, result)

        # final budget: keep the top-l by (relatedness, confidence, order)
        if len(constructed) > cfg.threshold_size:
            constructed = self._truncate(constructed, doc_entities, result)

        result.triples = [self._clip(t) for t in constructed]
        return result

    # -- internals ---------------------------------------------------------
    def _one_round(self, canopies, alpha: float, result: ConstructionResult):
        constructed: List[Triple] = []
        for canopy in canopies:
            covered = greedy_cover(canopy.triples)
            result.removed_children += len(canopy.triples) - len(covered)
            fused = fuse_siblings(covered, alpha=alpha)
            result.fused += len(covered) - len(fused)
            constructed.extend(fused)
        return constructed

    def _truncate(
        self,
        triples: List[Triple],
        doc_entities: Optional[Sequence[str]],
        result: ConstructionResult,
    ) -> List[Triple]:
        cfg = self.config

        def score(item):
            index, triple = item
            related = 0.0
            if self.linker is not None and doc_entities:
                related = relatedness(triple, doc_entities, self.linker)
            return (-related, -triple.confidence, index)

        ranked = sorted(enumerate(triples), key=score)
        kept = ranked[: cfg.threshold_size]
        result.truncated += len(triples) - len(kept)
        kept.sort(key=lambda item: item[0])  # restore document order
        return [triple for _, triple in kept]

    def _clip(self, triple: Triple) -> Triple:
        """Enforce the 256-char flattened-length budget on fusion triples."""
        max_chars = self.config.max_triple_chars
        if len(triple.flatten()) <= max_chars or not triple.extra_objects:
            return triple
        extras = list(triple.extra_objects)
        while extras:
            extras.pop()
            candidate = Triple(
                subject=triple.subject,
                predicate=triple.predicate,
                object=triple.object,
                extra_objects=tuple(extras),
                source=triple.source,
                sentence_index=triple.sentence_index,
                confidence=triple.confidence,
            )
            if len(candidate.flatten()) <= max_chars:
                return candidate
        return Triple(
            subject=triple.subject,
            predicate=triple.predicate,
            object=triple.object,
            source=triple.source,
            sentence_index=triple.sentence_index,
            confidence=triple.confidence,
        )
