"""Per-table experiment runners (DESIGN.md experiment index).

Each function reproduces one table/figure of the paper's Sec. IV over the
synthetic corpus, returning structured rows; the benchmarks print them and
assert the paper's qualitative *shape*.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.hotpot import BRIDGE, COMPARISON, HotpotQuestion
from repro.eval.harness import ExperimentContext
from repro.eval.metrics import (
    RetrievalScorecard,
    paragraph_exact_match,
    paragraph_recall,
    path_exact_match,
)
from repro.oie.triple import Triple
from repro.retriever.single import SingleRetriever
from repro.retriever.store import TripleStore
from repro.retriever.strategies import MEAN, ONE_FACT, TOP_K, ScoreStrategy
from repro.triples.construct import ConstructionConfig, TripleSetConstructor
from repro.triples.hac import hac_construct


# -- Table I ---------------------------------------------------------------

def run_table1(ctx: ExperimentContext) -> Dict[str, Dict[str, int]]:
    """Dataset statistics (bridge / comparison × train / test)."""
    return ctx.hotpot.statistics()


# -- Tables II / III (non-learning BM25 retrieval on different fields) ------

def _field_text(ctx: ExperimentContext, field: str, doc_id: int,
                max_tokens: int = 60) -> str:
    """The indexed content of one field for query expansion."""
    if field == "text":
        text = ctx.corpus[doc_id].text
    elif field == "triples":
        text = ctx.store.field_text(doc_id)
    elif field == "minie_triples":
        text = ctx.extractor_store("minie").field_text(doc_id)
    elif field == "stanford_triples":
        text = ctx.extractor_store("stanford").field_text(doc_id)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown field {field!r}")
    # de-duplicate expansion terms (order-preserving): repeated subjects in
    # the triple field / repeated names in text would otherwise dominate
    # the expanded query's term frequencies
    seen = set()
    unique: List[str] = []
    for token in text.split():
        key = token.lower()
        if key not in seen:
            seen.add(key)
            unique.append(token)
    return " ".join(unique[:max_tokens])


def _lexical_scorecards(
    ctx: ExperimentContext,
    questions: Sequence[HotpotQuestion],
    fields: Sequence[str],
    k: int = 10,
) -> Dict[str, Dict[str, RetrievalScorecard]]:
    """For each field: hop-1 PR and two-hop PEM scorecards.

    Hop 1 is a plain BM25 query. Hop 2 is iterative: the query is expanded
    with the *field content* of the best hop-1 document (the non-learning
    analogue of the question updater), and PEM is computed over the union
    of the top hop-1 and hop-2 documents. The field being indexed is also
    the field used for expansion, so a noisy field hurts twice — which is
    the comparison Table II makes.
    """
    out: Dict[str, Dict[str, RetrievalScorecard]] = {}
    half = max(k // 2, 1)
    for field in fields:
        pr_card = RetrievalScorecard()
        pem_card = RetrievalScorecard()
        for question in questions:
            hop1 = ctx.lexical.retrieve_titles(question.text, k=k, field=field)
            pr_card.add(
                question.qtype, paragraph_recall(hop1, question.gold_titles)
            )
            retrieved = list(hop1[:half])
            if hop1:
                top_doc = ctx.corpus.by_title(hop1[0])
                expanded = (
                    f"{question.text} "
                    f"{_field_text(ctx, field, top_doc.doc_id)}"
                )
                hop2 = ctx.lexical.retrieve_titles(expanded, k=half, field=field)
                retrieved.extend(hop2)
            pem_card.add(
                question.qtype,
                paragraph_exact_match(retrieved, question.gold_titles),
            )
        out[field] = {"hop1_pr": pr_card, "hop2_pem": pem_card}
    return out


def run_table2(ctx: ExperimentContext, k: int = 10):
    """Text matching vs TFS matching with non-learning BM25 (Table II)."""
    return {
        "train": _lexical_scorecards(
            ctx, ctx.train_sample, ["text", "triples"], k=k
        ),
        "test": _lexical_scorecards(
            ctx, ctx.eval_questions, ["text", "triples"], k=k
        ),
    }


def run_table3(ctx: ExperimentContext, k: int = 10):
    """Constructed TFS vs raw MinIE vs raw StanfordIE fields (Table III)."""
    fields = ["triples", "minie_triples", "stanford_triples"]
    return {
        "train": _lexical_scorecards(ctx, ctx.train_sample, fields, k=k),
        "test": _lexical_scorecards(ctx, ctx.eval_questions, fields, k=k),
    }


# -- Table IV (one-hop retrieval, learned models) ----------------------------

def _one_hop_scorecard(
    titles_fn, questions: Sequence[HotpotQuestion], k: int = 8
) -> RetrievalScorecard:
    card = RetrievalScorecard()
    for question in questions:
        titles = titles_fn(question.text, k)
        card.add(question.qtype, paragraph_recall(titles, question.gold_titles))
    return card


def _batched_scorecard(
    questions: Sequence[HotpotQuestion],
    per_question_titles: Sequence[Sequence[str]],
) -> RetrievalScorecard:
    card = RetrievalScorecard()
    for question, titles in zip(questions, per_question_titles):
        card.add(question.qtype, paragraph_recall(titles, question.gold_titles))
    return card


def run_table4(ctx: ExperimentContext, k: int = 8) -> Dict[str, RetrievalScorecard]:
    """One-hop PR@8: TPR, GoldEn and Triple-Retriever strategies.

    The Triple-Retriever rows run through the batched fast path: all eval
    questions are encoded in one encoder pass and each strategy's scoring
    is one question×triple matmul.
    """
    questions = ctx.eval_questions
    retriever = ctx.system.retriever
    rows: Dict[str, RetrievalScorecard] = {}

    tprr = ctx.baseline("tprr")
    rows["TPR"] = _one_hop_scorecard(
        lambda q, kk: tprr.retrieve_documents(q, k=kk), questions, k
    )
    golden = ctx.baseline("golden")
    rows["GoldEn"] = _one_hop_scorecard(
        lambda q, kk: golden.retrieve_documents(q, k=kk), questions, k
    )

    strategies = {
        "Triple-Retriever-top2": ScoreStrategy(TOP_K, k=2),
        "Triple-Retriever-top5": ScoreStrategy(TOP_K, k=5),
        "Triple-Retriever-mean": ScoreStrategy(MEAN),
        "Triple-Retriever": ScoreStrategy(ONE_FACT),
    }
    query_matrix = retriever.encode_questions([q.text for q in questions])
    for name, strategy in strategies.items():
        result_lists = retriever.retrieve_batch(
            query_matrix, k=k, strategy=strategy
        )
        rows[name] = _batched_scorecard(
            questions,
            [[r.title for r in results] for results in result_lists],
        )
    return rows


def run_table4_union_ablation(
    ctx: ExperimentContext, k: int = 8
) -> RetrievalScorecard:
    """Sec. IV-D note: one-fact retrieval over the raw union set T_o."""
    union_store = TripleStore(ctx.corpus)
    from repro.oie.union import UnionExtractor

    extractor = UnionExtractor()
    for document in ctx.corpus:
        union_store.put(
            document.doc_id,
            extractor.extract_document(
                document.text,
                title=document.title,
                entity_kind=document.entity.kind,
            ),
        )
    retriever = SingleRetriever(ctx.system.encoder, union_store)
    retriever.refresh_embeddings()
    return _one_hop_scorecard(
        lambda q, kk: [r.title for r in retriever.retrieve(q, k=kk)],
        ctx.eval_questions,
        k,
    )


# -- Table V (document-path retrieval) ---------------------------------------

def run_table5(ctx: ExperimentContext, k: int = 8) -> Dict[str, RetrievalScorecard]:
    """Path PEM@8 for every system (Table V)."""
    questions = ctx.eval_questions
    rows: Dict[str, RetrievalScorecard] = {}

    def score_paths(paths_fn) -> RetrievalScorecard:
        card = RetrievalScorecard()
        for question in questions:
            paths = paths_fn(question.text)
            card.add(
                question.qtype, path_exact_match(paths, question.gold_titles)
            )
        return card

    tprr = ctx.baseline("tprr")
    rows["TPRR"] = score_paths(lambda q: tprr.retrieve_paths(q, k_paths=k))
    hop = ctx.baseline("hop")
    rows["HopRetriever"] = score_paths(lambda q: hop.retrieve_paths(q, k_paths=k))
    mdr = ctx.baseline("mdr")
    rows["MDR"] = score_paths(lambda q: mdr.retrieve_paths(q, k_paths=k))
    path_baseline = ctx.baseline("path")
    rows["PathRetriever"] = score_paths(
        lambda q: path_baseline.retrieve_paths(q, k_paths=k)
    )
    system = ctx.system
    rows["Triple-fact Retrieval-base"] = score_paths(
        lambda q: [
            p.titles for p in system.retrieve_paths(q, k=k, rerank=False)
        ]
    )
    rows["Triple-fact Retrieval"] = score_paths(
        lambda q: [p.titles for p in system.retrieve_paths(q, k=k, rerank=True)]
    )
    return rows


# -- Wikihop (the paper's second dataset, Sec. IV-A) --------------------------

def run_wikihop(
    ctx: ExperimentContext, n_queries: int = 80, k: int = 8
) -> Dict[str, float]:
    """Wikihop-style evaluation of the trained system.

    The paper reports Wikihop alongside HotpotQA without a dedicated
    table; we measure hop-1 PR@k and document-path PEM@k over the
    generated (subject, relation, ?) queries.
    """
    from repro.data.wikihop import build_wikihop_dataset

    wikihop = build_wikihop_dataset(
        ctx.world, ctx.corpus, max_queries=n_queries * 5
    )
    queries = wikihop.validation[:n_queries]
    system = ctx.system
    hop1_hits = 0
    pem_hits = 0
    for query in queries:
        hop1 = system.retrieve_documents(query.text, k=k)
        if any(r.title in query.gold_titles for r in hop1):
            hop1_hits += 1
        paths = system.retrieve_paths(query.text, k=k)
        if path_exact_match([p.titles for p in paths], query.gold_titles):
            pem_hits += 1
    n = max(len(queries), 1)
    return {
        "n": float(len(queries)),
        "hop1_pr": hop1_hits / n,
        "path_pem": pem_hits / n,
    }


# -- Ablation A: threshold size l --------------------------------------------

def run_ablation_threshold(
    ctx: ExperimentContext,
    l_values: Sequence[int] = (5, 10, 20, 40),
    k: int = 10,
) -> List[Tuple[int, float, float]]:
    """Sweep Algorithm 1's threshold l: (l, mean |T_d|, BM25-TFS PR@k)."""
    from repro.baselines.lexical import LexicalRetriever

    out = []
    for l_value in l_values:
        store = TripleStore(ctx.corpus)
        constructor = TripleSetConstructor(
            ConstructionConfig(threshold_size=l_value), linker=ctx.linker
        )
        for document in ctx.corpus:
            result = constructor.construct_from_text(
                document.text,
                title=document.title,
                entity_kind=document.entity.kind,
                doc_entities=ctx.linker.entities_of(document.doc_id),
            )
            store.put(document.doc_id, result.triples)
        lexical = LexicalRetriever(ctx.corpus, store=store)
        card = RetrievalScorecard()
        for question in ctx.eval_questions:
            titles = lexical.retrieve_titles(question.text, k=k, field="triples")
            card.add(question.qtype, paragraph_recall(titles, question.gold_titles))
        mean_size = store.total_triples() / max(len(store), 1)
        out.append((l_value, mean_size, card.total))
    return out


# -- Ablation B: HAC O(m^3) vs partition O(m^2) -------------------------------

def _synthetic_triples(m: int, seed: int = 0) -> List[Triple]:
    rng = np.random.RandomState(seed)
    subjects = [f"Entity{i}" for i in range(max(2, m // 6))]
    predicates = ["is", "was", "played for", "won", "founded in"]
    nouns = "club band city award league stadium trophy season".split()
    triples = []
    for _ in range(m):
        subject = subjects[int(rng.randint(len(subjects)))]
        predicate = predicates[int(rng.randint(len(predicates)))]
        length = int(rng.randint(1, 4))
        obj = " ".join(
            nouns[int(rng.randint(len(nouns)))] for _ in range(length)
        )
        triples.append(Triple(subject, predicate, obj))
    return triples


def run_ablation_hac(
    sizes: Sequence[int] = (16, 32, 64, 128), threshold: int = 8
) -> Dict[str, List[Tuple[int, float]]]:
    """Wall-clock of HAC vs Algorithm 1 over growing union sets.

    Returns {"hac": [(m, seconds)], "partition": [(m, seconds)]}. The
    log-log slope of HAC should exceed the partition method's (O(m^3) vs
    O(m^2)).
    """
    timings: Dict[str, List[Tuple[int, float]]] = {"hac": [], "partition": []}
    constructor = TripleSetConstructor(
        ConstructionConfig(threshold_size=threshold)
    )
    for m in sizes:
        triples = _synthetic_triples(m)
        start = time.perf_counter()
        hac_construct(triples, threshold)
        timings["hac"].append((m, time.perf_counter() - start))
        start = time.perf_counter()
        constructor.construct(triples)
        timings["partition"].append((m, time.perf_counter() - start))
    return timings


def loglog_slope(points: Sequence[Tuple[int, float]]) -> float:
    """Least-squares slope of log(time) vs log(m)."""
    xs = np.log([m for m, _ in points])
    ys = np.log([max(t, 1e-9) for _, t in points])
    slope, _ = np.polyfit(xs, ys, 1)
    return float(slope)
