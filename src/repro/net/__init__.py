"""Networked serving: asyncio front door over multiprocess workers.

The process-level answer to the GIL: N worker processes each
memmap-attach the same published :class:`~repro.ingest.embedding_store.
EmbeddingStore` generation (zero encoder calls, zero matrix copies) and
run the in-process micro-batcher; an asyncio front door multiplexes
clients over them; a supervisor health-checks, restarts crashes, and
hot-rolls the fleet onto new store generations mid-traffic::

    from repro.net import Fleet, NetClient, WorkerSpec

    spec = WorkerSpec(
        target="repro.net.bootstrap:synthetic_bundle",
        kwargs={"seed": 7},
        store_dir="artifacts/",          # published by `repro ingest`
    )
    with Fleet(spec, workers=4) as fleet:
        with NetClient(fleet.address) as client:
            docs = client.retrieve("who founded Millwall ?", k=5)
            client.reload("artifacts/")  # hot swap to a new generation
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.net.bootstrap import (
    DyadicEncoder,
    ServingBundle,
    model_dir_bundle,
    publish_store,
    resolve_target,
    synthetic_bundle,
)
from repro.net.client import NetClient, NetRequestError
from repro.net.frontdoor import FrontDoor
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    canonical_json,
    encode_frame,
    read_frame_async,
    recv_frame,
    results_to_wire,
    send_frame,
    wire_to_results,
    write_frame_async,
)
from repro.net.supervisor import (
    Supervisor,
    SupervisorError,
    WorkerHandle,
    worker_control,
)
from repro.net.worker import WorkerRuntime, WorkerSpec, worker_main


class Fleet:
    """Supervisor + front door bundled behind one address."""

    def __init__(
        self,
        spec: WorkerSpec,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        watch_store: bool = False,
        health_interval_s: float = 0.25,
    ):
        self.supervisor = Supervisor(
            spec,
            workers=workers,
            watch_store=watch_store,
            health_interval_s=health_interval_s,
        )
        self.frontdoor = FrontDoor(self.supervisor, host=host, port=port)

    def start(self) -> "Fleet":
        self.supervisor.start()
        try:
            self.frontdoor.start()
        except Exception:
            self.supervisor.stop()
            raise
        return self

    def stop(self) -> None:
        self.frontdoor.stop()
        self.supervisor.stop()

    def __enter__(self) -> "Fleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        return self.frontdoor.address

    def client(self, timeout_s: float = 300.0) -> NetClient:
        return NetClient(self.address, timeout_s=timeout_s)

    def rollout(self, store_dir: Optional[str] = None):
        return self.supervisor.rollout(store_dir)


__all__ = [
    "DyadicEncoder",
    "Fleet",
    "FrontDoor",
    "MAX_FRAME_BYTES",
    "NetClient",
    "NetRequestError",
    "ProtocolError",
    "ServingBundle",
    "Supervisor",
    "SupervisorError",
    "WorkerHandle",
    "WorkerRuntime",
    "WorkerSpec",
    "canonical_json",
    "encode_frame",
    "model_dir_bundle",
    "publish_store",
    "read_frame_async",
    "recv_frame",
    "results_to_wire",
    "resolve_target",
    "send_frame",
    "synthetic_bundle",
    "wire_to_results",
    "worker_control",
    "worker_main",
    "write_frame_async",
]
