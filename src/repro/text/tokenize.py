"""Word tokenization and normalization.

The tokenizer is deliberately simple and deterministic: it lower-cases,
separates punctuation, keeps numbers and hyphenated years intact, and is the
single tokenization used by every component (BM25 index, OIE extractors and
the neural encoder), so that lexical and semantic retrieval operate over the
same token universe.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Set, Tuple

_TOKEN_RE = re.compile(
    r"""
    \d+(?:\.\d+)?          # numbers, incl. decimals
    | [A-Za-z]+(?:'[a-z]+)?  # words, incl. clitics like "it's"
    | [^\sA-Za-z0-9]       # any single punctuation mark
    """,
    re.VERBOSE,
)

_APOSTROPHE_SUFFIXES = {"'s", "'re", "'ve", "'ll", "'d", "'m"}


def normalize(text: str) -> str:
    """Lower-case and collapse whitespace.

    >>> normalize("  The   Quick  Fox ")
    'the quick fox'
    """
    return " ".join(text.lower().split())


def tokenize(text: str, lower: bool = True) -> List[str]:
    """Split ``text`` into word / number / punctuation tokens.

    >>> tokenize("Millwall F.C. was founded in 1885.")
    ['millwall', 'f', '.', 'c', '.', 'was', 'founded', 'in', '1885', '.']
    """
    if lower:
        text = text.lower()
    tokens: List[str] = []
    for match in _TOKEN_RE.finditer(text):
        token = match.group(0)
        # split clitics off: "club's" -> "club", "'s"
        for suffix in _APOSTROPHE_SUFFIXES:
            if token.endswith(suffix) and len(token) > len(suffix):
                tokens.append(token[: -len(suffix)])
                tokens.append(suffix)
                break
        else:
            tokens.append(token)
    return tokens


def content_tokens(text: str) -> List[str]:
    """Tokenize and keep only alphanumeric tokens (drop punctuation)."""
    return [t for t in tokenize(text) if t[0].isalnum()]


def word_shingles(tokens: Iterable[str], n: int = 2) -> Set[Tuple[str, ...]]:
    """Return the set of ``n``-gram shingles over ``tokens``.

    Used by the sibling-triple similarity measure and by the GoldEn-style
    longest-common-subsequence heuristics.
    """
    seq = list(tokens)
    if len(seq) < n:
        return {tuple(seq)} if seq else set()
    return {tuple(seq[i : i + n]) for i in range(len(seq) - n + 1)}


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity between two token collections (as sets)."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = sa | sb
    if not union:
        return 0.0
    return len(sa & sb) / len(union)


def longest_common_subsequence(a: List[str], b: List[str]) -> List[str]:
    """Token-level LCS, the primitive behind GoldEn's heuristic oracle.

    Dynamic programming, O(len(a) * len(b)).

    >>> longest_common_subsequence("a b c d".split(), "b x d".split())
    ['b', 'd']
    """
    if not a or not b:
        return []
    rows = len(a) + 1
    cols = len(b) + 1
    table = [[0] * cols for _ in range(rows)]
    for i in range(1, rows):
        ai = a[i - 1]
        row = table[i]
        prev = table[i - 1]
        for j in range(1, cols):
            if ai == b[j - 1]:
                row[j] = prev[j - 1] + 1
            else:
                row[j] = prev[j] if prev[j] >= row[j - 1] else row[j - 1]
    # backtrack
    out: List[str] = []
    i, j = len(a), len(b)
    while i > 0 and j > 0:
        if a[i - 1] == b[j - 1]:
            out.append(a[i - 1])
            i -= 1
            j -= 1
        elif table[i - 1][j] >= table[i][j - 1]:
            i -= 1
        else:
            j -= 1
    out.reverse()
    return out
