"""Shared fixtures: one tiny world/corpus/store per test session.

Kept deliberately small so the whole suite runs in well under a minute;
quality-sensitive behaviour is exercised by the benchmarks, not here.
"""

import numpy as np
import pytest

from repro.data import World, WorldConfig, build_corpus, build_hotpot_dataset
from repro.encoder import EncoderConfig, MiniBertEncoder
from repro.retriever import SingleRetriever, build_triple_store
from repro.text import Vocab, tokenize

TINY_WORLD = WorldConfig(
    n_persons=16,
    n_clubs=6,
    n_bands=6,
    n_cities=8,
    n_countries=3,
    n_companies=4,
    n_films=4,
    n_universities=3,
    n_awards=3,
    seed=5,
)


@pytest.fixture(scope="session")
def world():
    return World(TINY_WORLD)


@pytest.fixture(scope="session")
def corpus(world):
    return build_corpus(world)


@pytest.fixture(scope="session")
def hotpot(world, corpus):
    return build_hotpot_dataset(world, corpus, comparison_per_kind=4)


@pytest.fixture(scope="session")
def store(corpus):
    return build_triple_store(corpus)


@pytest.fixture(scope="session")
def vocab(corpus, hotpot):
    texts = [d.text for d in corpus] + [q.text for q in hotpot.all_questions]
    return Vocab.from_texts(texts, tokenize)


@pytest.fixture(scope="session")
def encoder(vocab, store, corpus):
    enc = MiniBertEncoder(
        vocab, EncoderConfig(dim=24, n_layers=1, n_heads=2, max_len=32)
    )
    enc.fit_idf([store.field_text(d.doc_id) for d in corpus])
    return enc


@pytest.fixture(scope="session")
def retriever(encoder, store):
    retr = SingleRetriever(encoder, store)
    retr.refresh_embeddings()
    return retr


@pytest.fixture()
def rng():
    return np.random.RandomState(0)
