"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Cell = Union[str, float, int]


def format_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value * 100:.1f}%" if 0 <= value <= 1 else f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned ASCII table (percentages for floats in [0, 1])."""
    rendered = [[format_cell(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(r) for r in rendered)
    return "\n".join(out)


def row_from_scorecard(name: str, card) -> List[Cell]:
    """[name, bridge, comparison, total] from a RetrievalScorecard."""
    return [
        name,
        card.rate("bridge"),
        card.rate("comparison"),
        card.total,
    ]
