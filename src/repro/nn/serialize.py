"""Weight (de)serialization for modules, as compressed .npz archives."""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.precision import TRAINING_DTYPE

from repro.nn.layers import Module
from repro.storage.atomic import atomic_write_npz


def save_weights(module: Module, path: Union[str, Path]) -> None:
    """Write all named parameters of ``module`` to an .npz file (atomic)."""
    arrays = {name: tensor.data for name, tensor in module.named_parameters()}
    atomic_write_npz(path, arrays)


def load_weights(module: Module, path: Union[str, Path]) -> None:
    """Load parameters saved by :func:`save_weights` into ``module``.

    Raises KeyError on missing parameters and ValueError on shape
    mismatches, so silent architecture drift is impossible.
    """
    archive = np.load(str(path))
    for name, tensor in module.named_parameters():
        if name not in archive:
            raise KeyError(f"missing parameter {name!r} in {path}")
        data = archive[name]
        if data.shape != tensor.data.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: file {data.shape}, "
                f"module {tensor.data.shape}"
            )
        tensor.data = data.astype(TRAINING_DTYPE)
