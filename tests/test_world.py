"""Unit tests for the synthetic world generator."""

from repro.data.world import ENTITY_KINDS, RELATION_SCHEMA, World, WorldConfig


class TestWorldGeneration:
    def test_entity_counts_match_config(self, world):
        cfg = world.config
        assert len(world.entities_of_kind("person")) == cfg.n_persons
        assert len(world.entities_of_kind("club")) == cfg.n_clubs
        assert len(world.entities_of_kind("city")) == cfg.n_cities

    def test_unique_names(self, world):
        names = [e.name for e in world.entities]
        assert len(names) == len(set(names))

    def test_deterministic(self):
        a = World(WorldConfig(seed=42))
        b = World(WorldConfig(seed=42))
        assert [e.name for e in a.entities] == [e.name for e in b.entities]
        assert len(a.facts) == len(b.facts)

    def test_different_seeds_differ(self):
        a = World(WorldConfig(seed=1))
        b = World(WorldConfig(seed=2))
        assert [e.name for e in a.entities] != [e.name for e in b.entities]

    def test_every_fact_schema_valid(self, world):
        for fact in world.facts:
            subject_kind, object_kind = RELATION_SCHEMA[fact.relation]
            assert fact.subject.kind == subject_kind
            if fact.value_entity is not None:
                assert fact.value_entity.kind == object_kind
            else:
                assert object_kind.startswith("literal:")

    def test_every_person_has_occupation_and_birth_year(self, world):
        for person in world.entities_of_kind("person"):
            assert world.fact_of(person, "occupation") is not None
            assert world.fact_of(person, "birth_year") is not None

    def test_every_club_has_founded_year(self, world):
        for club in world.entities_of_kind("club"):
            fact = world.fact_of(club, "founded_year")
            assert fact is not None
            assert fact.value_text.isdigit()

    def test_facts_of_indexing(self, world):
        person = world.entities_of_kind("person")[0]
        facts = world.facts_of(person)
        assert facts
        assert all(f.subject.uid == person.uid for f in facts)

    def test_entity_by_name(self, world):
        entity = world.entities[0]
        assert world.entity_by_name(entity.name) is entity
        assert world.entity_by_name("No Such Entity") is None

    def test_facts_with_relation(self, world):
        plays = world.facts_with_relation("plays_for")
        assert all(f.relation == "plays_for" for f in plays)

    def test_all_kinds_generated(self, world):
        for kind in ENTITY_KINDS:
            assert world.entities_of_kind(kind), f"no entities of kind {kind}"
