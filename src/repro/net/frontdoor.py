"""The asyncio front door: one address, N worker processes behind it.

Clients speak the same length-prefixed JSON protocol the workers do; the
front door multiplexes every client request onto per-worker links
(least-pending routing), matches responses by wire id, and measures true
end-to-end latency in its own reservoir — the authoritative p50/p95/p99
for the fleet, since per-worker percentiles cannot be merged exactly.

**Crash recovery.** A lost worker link re-dispatches that link's
in-flight requests onto surviving workers (bounded attempts). Queries
are idempotent reads — the dead worker never answered them, so a retry
can change nothing but latency; a retried request therefore returns the
byte-identical response the dead worker would have produced. Requests
that exhaust their attempts (or find no live worker within the dispatch
window) fail with an explicit ``worker-unavailable`` error rather than
hanging.

Everything network-facing here is a coroutine, and the
``blocking-in-async`` lint rule holds this file to it: no ``time.sleep``,
no synchronous socket calls, no direct file reads inside ``async def`` —
the one blocking operation (the supervisor's rollout, which spawns
processes) runs in the default executor.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.net.protocol import (
    ProtocolError,
    read_frame_async,
    write_frame_async,
)
from repro.net.supervisor import Supervisor, WorkerHandle
from repro.perf import LatencyReservoir
from repro.serve import merge_snapshots


class _Inflight:
    """One client request travelling through (possibly several) links."""

    __slots__ = ("payload", "future", "attempts")

    def __init__(self, payload: Dict[str, Any], future: "asyncio.Future"):
        self.payload = payload
        self.future = future
        self.attempts = 0


def _error_payload(request_id: Any, kind: str, message: str) -> Dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": kind, "message": message},
    }


class _WorkerLink:
    """One multiplexed connection to one worker incarnation."""

    def __init__(self, frontdoor: "FrontDoor", handle: WorkerHandle):
        self.frontdoor = frontdoor
        self.handle = handle
        self.key = (handle.slot, handle.incarnation)
        self.pending: Dict[int, _Inflight] = {}
        self._ids = itertools.count(1)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._task: Optional[asyncio.Task] = None
        self._closed = False

    async def open(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.handle.host, self.handle.port
        )
        self._task = asyncio.create_task(self._read_loop())

    async def send(self, inflight: _Inflight) -> None:
        """Register then transmit; registration first, so a connection
        that dies mid-write still re-dispatches this request."""
        wire_id = next(self._ids)
        self.pending[wire_id] = inflight
        await write_frame_async(
            self._writer, {**inflight.payload, "id": wire_id}
        )

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame_async(self._reader)
                if frame is None:
                    break
                inflight = self.pending.pop(frame.get("id"), None)
                if inflight is not None and not inflight.future.done():
                    inflight.future.set_result(frame)
        except (ProtocolError, ConnectionError, OSError):
            pass  # lint: ignore[except-pass] -- link loss IS the signal; finally redispatches
        finally:
            await self.frontdoor._link_lost(self)

    async def close(self) -> None:
        """Tear down the transport (idempotent); pending stays with the
        caller — ``_link_lost`` decides what to retry."""
        if self._closed:
            return
        self._closed = True
        if self._task is not None and self._task is not asyncio.current_task():
            self._task.cancel()
        if self._writer is not None:
            self._writer.close()

    @property
    def closed(self) -> bool:
        return self._closed


class FrontDoor:
    """Asyncio TCP server routing the protocol to the worker fleet.

    Runs its event loop in a dedicated thread so the synchronous world
    (CLI, tests, the supervisor's health thread) can start/stop it and
    receive fleet-change notifications without owning a loop themselves.
    """

    def __init__(
        self,
        supervisor: Supervisor,
        host: str = "127.0.0.1",
        port: int = 0,
        max_attempts: int = 3,
        dispatch_timeout_s: float = 30.0,
        request_timeout_s: float = 300.0,
    ):
        self.supervisor = supervisor
        self.host = host
        self._requested_port = port
        self.max_attempts = max_attempts
        self.dispatch_timeout_s = dispatch_timeout_s
        self.request_timeout_s = request_timeout_s
        self.latencies = LatencyReservoir()
        # counters are only touched on the loop thread; the lock guards
        # cross-thread snapshot reads
        self._counter_lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._retried = 0
        self._links: Dict[Tuple[int, int], _WorkerLink] = {}
        self._links_changed: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._bound_port: Optional[int] = None
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle (called from the sync world) ---------------------------
    def start(self) -> "FrontDoor":
        self._thread = threading.Thread(
            target=self._run, name="repro-net-frontdoor", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=60.0)
        if self._startup_error is not None:
            raise RuntimeError(
                f"front door failed to start: {self._startup_error}"
            )
        if self._bound_port is None:
            raise RuntimeError("front door did not come up in time")
        # from here on the supervisor pushes fleet changes at us; seed
        # the link set with whatever is alive right now
        self.supervisor.on_change = self._on_workers_changed
        self._on_workers_changed(self.supervisor.handles())
        return self

    def stop(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._request_stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        if self.supervisor.on_change == self._on_workers_changed:
            self.supervisor.on_change = None

    def __enter__(self) -> "FrontDoor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        if self._bound_port is None:
            raise RuntimeError("front door is not running")
        return (self.host, self._bound_port)

    def _on_workers_changed(self, handles: List[WorkerHandle]) -> None:
        """Supervisor callback (arbitrary thread) → loop-thread reconcile."""
        loop = self._loop
        if loop is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self._reconcile(list(handles)), loop
            )

    # -- loop thread ------------------------------------------------------
    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # surfaced by start()
            self._startup_error = error
            self._ready.set()

    def _request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._links_changed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self._requested_port
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            for link in list(self._links.values()):
                await link.close()
            self._links.clear()

    # -- link management --------------------------------------------------
    async def _reconcile(self, handles: List[WorkerHandle]) -> None:
        want = {(h.slot, h.incarnation): h for h in handles}
        for key in [k for k in self._links if k not in want]:
            link = self._links.pop(key)
            await link.close()
            await self._redispatch_orphans(link)
        for key, handle in want.items():
            if key in self._links:
                continue
            link = _WorkerLink(self, handle)
            try:
                await link.open()
            except (ConnectionError, OSError):
                # the worker died between notification and connect; the
                # health loop will respawn it and notify again
                continue
            self._links[key] = link
        self._links_changed.set()

    async def _link_lost(self, link: _WorkerLink) -> None:
        """Reader-loop exit path: drop the link, retry its in-flight."""
        if self._links.get(link.key) is link:
            del self._links[link.key]
        await link.close()
        await self._redispatch_orphans(link)

    async def _redispatch_orphans(self, link: _WorkerLink) -> None:
        orphans = list(link.pending.values())
        link.pending.clear()
        for inflight in orphans:
            if inflight.future.done():
                continue
            with self._counter_lock:
                self._retried += 1
            asyncio.create_task(self._dispatch(inflight))

    def _pick_link(self) -> Optional[_WorkerLink]:
        live = [link for link in self._links.values() if not link.closed]
        if not live:
            return None
        return min(live, key=lambda link: len(link.pending))

    async def _dispatch(self, inflight: _Inflight) -> None:
        """Route one request to a live worker, waiting out restart gaps."""
        if inflight.future.done():
            return
        inflight.attempts += 1
        if inflight.attempts > self.max_attempts:
            inflight.future.set_result(
                _error_payload(
                    None,
                    "worker-unavailable",
                    f"request failed on {self.max_attempts} workers",
                )
            )
            return
        deadline = self._loop.time() + self.dispatch_timeout_s
        while not inflight.future.done():
            link = self._pick_link()
            if link is not None:
                try:
                    await link.send(inflight)
                except (ConnectionError, OSError):
                    # send() registered first, so the loss path owns the
                    # retry; just take the link out of rotation
                    await self._link_lost(link)
                return
            remaining = deadline - self._loop.time()
            if remaining <= 0:
                inflight.future.set_result(
                    _error_payload(
                        None,
                        "worker-unavailable",
                        "no live worker within the dispatch window",
                    )
                )
                return
            self._links_changed.clear()
            try:
                await asyncio.wait_for(
                    self._links_changed.wait(), timeout=remaining
                )
            except asyncio.TimeoutError:
                pass  # lint: ignore[except-pass] -- timeout is the loop's normal tick

    # -- client handling --------------------------------------------------
    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                frame = await read_frame_async(reader)
                if frame is None:
                    break
                task = asyncio.create_task(
                    self._serve_frame(frame, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ProtocolError, ConnectionError, OSError):
            pass  # lint: ignore[except-pass] -- client disconnect ends the loop; finally cancels
        finally:
            for task in list(tasks):
                task.cancel()
            writer.close()

    async def _serve_frame(
        self,
        frame: Any,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        if not isinstance(frame, dict):
            response: Dict[str, Any] = _error_payload(
                None, "ProtocolError", "request frame must be a JSON object"
            )
        else:
            op = frame.get("op", "query")
            client_id = frame.get("id")
            if op == "query":
                response = await self._serve_query(frame)
            elif op == "ping":
                response = {
                    "ok": True,
                    "op": "ping",
                    "workers": len(self._links),
                }
            elif op == "stats":
                response = await self._serve_stats()
            elif op == "reload":
                response = await self._serve_reload(frame)
            else:
                response = _error_payload(
                    client_id, "ProtocolError", f"unknown op {op!r}"
                )
            response["id"] = client_id
        try:
            async with write_lock:
                await write_frame_async(writer, response)
        except (ConnectionError, OSError):
            pass  # lint: ignore[except-pass] -- client went away; nothing to deliver to

    async def _serve_query(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        payload = {
            key: frame[key]
            for key in (
                "op", "question", "mode", "k", "nprobe", "precision",
                "deadline_s", "timeout_s",
            )
            if key in frame
        }
        payload.setdefault("op", "query")
        started = self._loop.time()
        with self._counter_lock:
            self._submitted += 1
        inflight = _Inflight(payload, self._loop.create_future())
        await self._dispatch(inflight)
        try:
            response = await asyncio.wait_for(
                inflight.future, timeout=self.request_timeout_s
            )
        except asyncio.TimeoutError:
            response = _error_payload(
                None, "TimeoutError",
                f"no worker response within {self.request_timeout_s}s",
            )
        self.latencies.record(self._loop.time() - started)
        with self._counter_lock:
            if response.get("ok"):
                self._completed += 1
            else:
                self._failed += 1
        return dict(response)

    async def _serve_stats(self) -> Dict[str, Any]:
        workers = []
        snapshots = []
        for link in list(self._links.values()):
            inflight = _Inflight({"op": "stats"}, self._loop.create_future())
            try:
                await link.send(inflight)
                answer = await asyncio.wait_for(inflight.future, timeout=30.0)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                continue
            if not answer.get("ok"):
                continue
            workers.append({
                "slot": link.handle.slot,
                "incarnation": link.handle.incarnation,
                "pid": answer.get("pid"),
                "generation": answer.get("generation"),
                "pending": answer.get("pending"),
                "stats": answer.get("stats"),
                "encoder": answer.get("encoder"),
            })
            snapshots.append(answer.get("stats") or {})
        return {
            "ok": True,
            "op": "stats",
            "frontdoor": self.stats_snapshot(),
            "workers": sorted(workers, key=lambda w: w["slot"]),
            "aggregate": merge_snapshots(snapshots),
        }

    async def _serve_reload(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        store_dir = frame.get("store_dir")
        try:
            generations = await self._loop.run_in_executor(
                None, self.supervisor.rollout, store_dir
            )
        except Exception as error:
            return _error_payload(None, type(error).__name__, str(error))
        return {"ok": True, "op": "reload", "generations": generations}

    # -- observability (sync-world safe) ----------------------------------
    def stats_snapshot(self) -> Dict[str, Any]:
        with self._counter_lock:
            out = {
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "retried": self._retried,
                "workers_linked": len(self._links),
            }
        out["latency_ms"] = {
            name: seconds * 1e3
            for name, seconds in self.latencies.percentiles().items()
        }
        return out
