"""Unit tests for the inverted index, analyzer, BM25 and TF-IDF."""

import pytest

from repro.index.analyzer import Analyzer
from repro.index.bm25 import BM25Scorer
from repro.index.inverted import InvertedIndex
from repro.index.postings import Field
from repro.index.tfidf import TfidfScorer

DOCS = {
    0: "the football club was founded in 1885",
    1: "the band was formed in 1991 in Boston",
    2: "the city lies on the river and has a large port",
    3: "the football club plays its home games in the city",
}


def _index(scorer=None):
    index = InvertedIndex(scorer=scorer)
    for doc_id, text in DOCS.items():
        index.add_document(doc_id, {"text": text})
    return index


class TestAnalyzer:
    def test_stems_and_drops_stopwords(self):
        analyzer = Analyzer()
        terms = analyzer.analyze("The clubs were founded.")
        assert "club" in terms
        assert "the" not in terms and "." not in terms

    def test_no_stemming_option(self):
        analyzer = Analyzer(use_stemming=False)
        assert "clubs" in analyzer.analyze("the clubs")

    def test_keep_stopwords_option(self):
        analyzer = Analyzer(remove_stopwords=False)
        assert "the" in analyzer.analyze("the clubs")


class TestField:
    def test_statistics(self):
        field = Field("text")
        field.add(0, ["a", "b", "a"])
        field.add(1, ["b"])
        assert field.doc_count == 2
        assert field.doc_length(0) == 3
        assert field.average_length == 2.0
        assert field.doc_freq("a") == 1
        assert field.doc_freq("b") == 2
        assert field.postings("a")[0].term_freq == 2

    def test_double_add_rejected(self):
        field = Field("text")
        field.add(0, ["a"])
        with pytest.raises(ValueError):
            field.add(0, ["b"])

    def test_unknown_term(self):
        field = Field("text")
        assert field.postings("zzz") == []
        assert field.doc_freq("zzz") == 0


class TestBM25:
    def test_exact_match_ranks_first(self):
        index = _index()
        hits = index.search("when was the football club founded", k=4)
        assert hits[0].doc_id == 0

    def test_scores_positive_and_sorted(self):
        index = _index()
        hits = index.search("football club", k=4)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)
        assert all(s > 0 for s in scores)

    def test_idf_zero_for_unseen(self):
        scorer = BM25Scorer()
        field = Field("text")
        field.add(0, ["a"])
        assert scorer.idf(field, "zzz") == 0.0

    def test_rare_terms_weighted_higher(self):
        scorer = BM25Scorer()
        field = Field("text")
        field.add(0, ["rare", "common"])
        field.add(1, ["common"])
        field.add(2, ["common"])
        assert scorer.idf(field, "rare") > scorer.idf(field, "common")

    def test_exclude(self):
        index = _index()
        hits = index.search("football club", k=4, exclude=[0])
        assert all(h.doc_id != 0 for h in hits)


class TestTfidf:
    def test_cosine_in_unit_range(self):
        index = _index(scorer=TfidfScorer())
        hits = index.search("football club founded", k=4)
        assert all(0.0 <= h.score <= 1.0 + 1e-9 for h in hits)

    def test_relevant_doc_first(self):
        index = _index(scorer=TfidfScorer())
        hits = index.search("band formed 1991", k=4)
        assert hits[0].doc_id == 1


class TestInvertedIndex:
    def test_multi_field(self):
        index = InvertedIndex()
        index.add_document(0, {"text": "alpha beta", "triples": "alpha gamma"})
        assert index.search("gamma", field="triples")[0].doc_id == 0
        assert index.search("gamma", field="text") == []

    def test_unknown_field_raises(self):
        index = _index()
        with pytest.raises(KeyError):
            index.search("x", field="nope")

    def test_doc_count(self):
        assert _index().doc_count == len(DOCS)

    def test_k_limits_results(self):
        index = _index()
        assert len(index.search("the club city football", k=2)) == 2
