"""Graph-free fused inference for the transformer encoder stack.

Training wants the autograd graph; inference only wants the numbers.
Routing ``encode_numpy`` through :class:`~repro.nn.tensor.Tensor` made
every encoder call pay the training tax twice over — a grad-closure
allocation per op, and float64 temporaries for all of them regardless of
the precision policy, with the cast to float32 happening only at the
very end. At ingest scale (ROADMAP: encoder tokens/sec is the system's
real ingest ceiling) that tax dominates.

:class:`InferenceSession` removes it, tinygrad-style: walk the module
tree **once**, bake the weights into a flat plan of fused numpy kernels,
then run forwards with no graph, no per-op dispatch, and almost no
temporaries:

* **baked weights** — Q/K/V projections concatenate into one ``(D, 3D)``
  matrix so each layer does a single input matmul; every table is cast
  to the session dtype at bake time, so float32 mode *computes* in
  float32 instead of computing float64 and casting after;
* **fused kernels** — :func:`fused_layer_norm` (single-pass
  ``E[x^2] - mean^2`` variance into a caller-provided out-buffer),
  :func:`fused_gelu` (exact erf GELU in place), :func:`fused_softmax`
  (shift/exp/normalize entirely in place);
* **one padding bias per batch** — computed from the mask once and
  reused by every layer and head, with a dtype-aware magnitude from
  :func:`repro.precision.mask_bias_value` instead of a hardcoded
  ``-1e9``;
* **scratch reuse** — one set of QKV/score/context/projection buffers is
  allocated per forward call and reused across all layers (per-call, so
  concurrent serving threads never share scratch), with residual adds
  done in place.

Sessions are immutable snapshots: :meth:`InferenceSession.stale` reports
when any source parameter's array has been replaced (optimizer steps and
``load_weights`` both *reassign* ``.data``), and the owner builds a
fresh session. Training, autograd, and gradcheck stay on the graph path
untouched — this module must not touch the autograd engine at all,
which the ``graph-in-inference`` lint rule enforces.

Parity: in float64 mode fused [CLS] states match the graph path to
<= 1e-6 (in practice ~1e-12; the only reordered math is the layer-norm
variance and pooling reductions). Float32 mode differs from the float64
graph by ordinary float32 rounding, ~1e-6 relative.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.special import erf as _erf

from repro.precision import TRAINING_DTYPE, mask_bias_value

from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear
from repro.nn.transformer import TransformerEncoder, TransformerEncoderLayer

#: module types the baker knows how to flatten; anything else in the
#: stack means the fused plan would silently diverge, so baking refuses
_BAKEABLE = (
    TransformerEncoder,
    TransformerEncoderLayer,
    MultiHeadSelfAttention,
    LayerNorm,
    Linear,
    Embedding,
    Dropout,
)


# -- fused kernels -----------------------------------------------------------


def fused_layer_norm(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Layer norm over the last axis in one pass over the data.

    The variance comes from ``E[x^2] - mean^2`` (the sum of squares via
    einsum, so no centered ``(..., D)`` temporary is ever formed) and is
    clamped at zero against cancellation — ``eps`` dominates the floor
    either way. ``out`` must not alias ``x``: the centered subtraction
    reads ``x`` while writing ``out``.
    """
    if out is None:
        out = np.empty_like(x)
    elif out is x:
        raise ValueError("fused_layer_norm out-buffer must not alias x")
    mean = x.mean(axis=-1, keepdims=True)
    scale = np.einsum("...d,...d->...", x, x)[..., None]
    scale /= x.shape[-1]
    scale -= mean * mean
    np.maximum(scale, 0.0, out=scale)
    scale += eps
    np.sqrt(scale, out=scale)
    np.subtract(x, mean, out=out)
    out /= scale
    out *= gamma
    out += beta
    return out


def fused_gelu(
    x: np.ndarray, scratch: Optional[np.ndarray] = None
) -> np.ndarray:
    """Exact GELU ``x * Phi(x)`` in place on ``x``.

    Matches the graph path's formula (``Phi`` via the error function,
    argument divided by sqrt(2)) so float64 parity is bitwise. ``scratch``
    holds the cdf and must be shaped/typed like ``x``.
    """
    if scratch is None:
        scratch = np.empty_like(x)
    np.divide(x, np.sqrt(2.0), out=scratch)
    _erf(scratch, out=scratch)
    scratch += 1.0
    scratch *= 0.5
    x *= scratch
    return x


def fused_softmax(scores: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax along the last axis, entirely in place."""
    peak = scores.max(axis=-1, keepdims=True)
    np.subtract(scores, peak, out=scores)
    np.exp(scores, out=scores)
    total = scores.sum(axis=-1, keepdims=True)
    scores /= total
    return scores


# -- the baked plan ----------------------------------------------------------


class _LayerPlan:
    """One encoder layer's weights, flattened for the fused forward."""

    __slots__ = (
        "norm1_gamma", "norm1_beta", "norm1_eps",
        "qkv_weight", "qkv_bias",
        "out_weight", "out_bias",
        "norm2_gamma", "norm2_beta", "norm2_eps",
        "ffn_in_weight", "ffn_in_bias",
        "ffn_out_weight", "ffn_out_bias",
    )


class InferenceSession:
    """An immutable fused-forward snapshot of a :class:`TransformerEncoder`.

    Baking walks the module tree once, validates that every module is of
    a type the flat plan can represent, and casts all weights to the
    session ``dtype`` (the precision policy's compute dtype). The
    session then answers :meth:`forward` / :meth:`encode_cls` with pure
    numpy — no autograd objects anywhere (lint-enforced).

    Weight staleness: optimizers and ``load_weights`` replace parameter
    arrays rather than mutating them, so :meth:`stale` is a set of cheap
    identity checks against the arrays seen at bake time. A stale
    session still computes (with its old weights); owners are expected
    to rebuild when :meth:`stale` reports True.
    """

    def __init__(self, model: TransformerEncoder, dtype=None):
        for name, module in model.named_modules():
            if not isinstance(module, _BAKEABLE):
                raise TypeError(
                    f"InferenceSession cannot bake module "
                    f"{name or '<root>'!r} of type {type(module).__name__}"
                )
        self.dtype = np.dtype(dtype) if dtype is not None else TRAINING_DTYPE
        self.dim = model.dim
        self.max_len = model.max_len
        self.pad_id = model.pad_id
        self.n_heads = model.layers[0].attention.n_heads if model.layers else 1
        self.head_dim = self.dim // self.n_heads
        self.ffn_dim = (
            model.layers[0].ffn_in.weight.data.shape[1] if model.layers else 0
        )
        self._mask_bias = mask_bias_value(self.dtype)
        self._sources = tuple(
            (tensor, tensor.data) for _, tensor in model.named_parameters()
        )
        cast = self._cast
        self.token_table = cast(model.token_embedding.weight.data)
        self.position_table = cast(model.position_embedding.weight.data)
        self.final_gamma = cast(model.final_norm.gamma.data)
        self.final_beta = cast(model.final_norm.beta.data)
        self.final_eps = model.final_norm.eps
        self.layers: Tuple[_LayerPlan, ...] = tuple(
            self._bake_layer(layer) for layer in model.layers
        )

    def _cast(self, array: np.ndarray) -> np.ndarray:
        # no copy when the dtype already matches (float64 sessions share
        # the live arrays; safe because weight updates reassign, never
        # mutate, and reassignment flips stale())
        return np.asarray(array, dtype=self.dtype)

    def _linear(self, linear: Linear) -> Tuple[np.ndarray, np.ndarray]:
        weight = self._cast(linear.weight.data)
        if linear.bias is not None:
            return weight, self._cast(linear.bias.data)
        return weight, np.zeros(weight.shape[1], dtype=self.dtype)

    def _bake_layer(self, layer: TransformerEncoderLayer) -> _LayerPlan:
        attention = layer.attention
        if attention.n_heads != self.n_heads:
            raise ValueError("layers disagree on head count; cannot bake")
        plan = _LayerPlan()
        plan.norm1_gamma = self._cast(layer.norm1.gamma.data)
        plan.norm1_beta = self._cast(layer.norm1.beta.data)
        plan.norm1_eps = layer.norm1.eps
        query_w, query_b = self._linear(attention.query)
        key_w, key_b = self._linear(attention.key)
        value_w, value_b = self._linear(attention.value)
        plan.qkv_weight = np.concatenate([query_w, key_w, value_w], axis=1)
        plan.qkv_bias = np.concatenate([query_b, key_b, value_b])
        plan.out_weight, plan.out_bias = self._linear(attention.output)
        plan.norm2_gamma = self._cast(layer.norm2.gamma.data)
        plan.norm2_beta = self._cast(layer.norm2.beta.data)
        plan.norm2_eps = layer.norm2.eps
        plan.ffn_in_weight, plan.ffn_in_bias = self._linear(layer.ffn_in)
        plan.ffn_out_weight, plan.ffn_out_bias = self._linear(layer.ffn_out)
        return plan

    def stale(self) -> bool:
        """True when any source parameter's array has been replaced."""
        return any(
            tensor.data is not baked for tensor, baked in self._sources
        )

    # -- the fused forward -------------------------------------------------
    def forward(
        self, ids: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Hidden states (B, S, D) in the session dtype, eval-mode math."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim == 1:
            ids = ids[None, :]
        batch, seq = ids.shape
        if seq > self.max_len:
            raise ValueError(
                f"sequence length {seq} exceeds max_len {self.max_len}"
            )
        if mask is None:
            mask = ids != self.pad_id
        dtype = self.dtype
        dim, heads, head_dim = self.dim, self.n_heads, self.head_dim

        x = self.token_table[ids]
        x += self.position_table[:seq]
        # the padding bias: once per batch, shared across layers/heads
        inverted = 1.0 - np.asarray(mask, dtype=dtype)
        bias = (inverted * self._mask_bias)[:, None, None, :]

        # scratch allocated per call (thread-safe), reused across layers
        normed = np.empty_like(x)
        qkv = np.empty((batch, seq, 3 * dim), dtype=dtype)
        scores = np.empty((batch, heads, seq, seq), dtype=dtype)
        context = np.empty((batch, heads, seq, head_dim), dtype=dtype)
        merged = np.empty((batch, seq, dim), dtype=dtype)
        proj = np.empty((batch, seq, dim), dtype=dtype)
        ffn = np.empty((batch, seq, self.ffn_dim), dtype=dtype)
        cdf = np.empty_like(ffn)
        score_scale = 1.0 / np.sqrt(head_dim)

        for plan in self.layers:
            # attention block: x += W_o(softmax(qk^T/sqrt(d) + bias) v)
            fused_layer_norm(
                x, plan.norm1_gamma, plan.norm1_beta, plan.norm1_eps,
                out=normed,
            )
            np.matmul(normed, plan.qkv_weight, out=qkv)
            qkv += plan.qkv_bias
            heads_view = qkv.reshape(batch, seq, 3, heads, head_dim)
            q = heads_view[:, :, 0].transpose(0, 2, 1, 3)
            k = heads_view[:, :, 1].transpose(0, 2, 1, 3)
            v = heads_view[:, :, 2].transpose(0, 2, 1, 3)
            np.matmul(q, k.swapaxes(-1, -2), out=scores)
            scores *= score_scale
            scores += bias
            fused_softmax(scores)
            np.matmul(scores, v, out=context)
            np.copyto(
                merged.reshape(batch, seq, heads, head_dim),
                context.transpose(0, 2, 1, 3),
            )
            np.matmul(merged, plan.out_weight, out=proj)
            proj += plan.out_bias
            x += proj

            # feed-forward block: x += W_2 gelu(W_1 norm2(x))
            fused_layer_norm(
                x, plan.norm2_gamma, plan.norm2_beta, plan.norm2_eps,
                out=normed,
            )
            np.matmul(normed, plan.ffn_in_weight, out=ffn)
            ffn += plan.ffn_in_bias
            fused_gelu(ffn, cdf)
            np.matmul(ffn, plan.ffn_out_weight, out=proj)
            proj += plan.ffn_out_bias
            x += proj

        return fused_layer_norm(
            x, self.final_gamma, self.final_beta, self.final_eps, out=normed
        )

    def encode_cls(
        self, ids: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Sentence embeddings: the hidden state at position 0 ([CLS])."""
        return np.ascontiguousarray(self.forward(ids, mask=mask)[:, 0, :])
