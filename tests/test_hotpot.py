"""Unit tests for HotpotQA-style question generation."""

from repro.data.hotpot import BRIDGE, COMPARISON, build_hotpot_dataset


class TestHotpotGeneration:
    def test_splits_disjoint(self, hotpot):
        train_ids = {q.qid for q in hotpot.train}
        test_ids = {q.qid for q in hotpot.test}
        assert not train_ids & test_ids

    def test_both_types_present(self, hotpot):
        types = {q.qtype for q in hotpot.all_questions}
        assert types == {BRIDGE, COMPARISON}

    def test_bridge_dominates(self, hotpot):
        bridge = sum(1 for q in hotpot.all_questions if q.is_bridge)
        assert bridge > len(hotpot.all_questions) / 2

    def test_gold_titles_exist_in_corpus(self, hotpot, corpus):
        for question in hotpot.all_questions:
            for title in question.gold_titles:
                assert corpus.by_title(title) is not None

    def test_gold_path_length_two(self, hotpot):
        assert all(len(q.gold_titles) == 2 for q in hotpot.all_questions)

    def test_bridge_answer_in_hop2_document(self, hotpot, corpus):
        for question in hotpot.all_questions:
            if not question.is_bridge:
                continue
            hop2 = corpus.by_title(question.gold_titles[1])
            assert question.answer in hop2.text

    def test_bridge_entity_is_hop2_title(self, hotpot):
        for question in hotpot.all_questions:
            if question.is_bridge:
                assert question.bridge_entity == question.gold_titles[1]

    def test_comparison_golds_differ(self, hotpot):
        for question in hotpot.all_questions:
            if not question.is_bridge:
                assert question.gold_titles[0] != question.gold_titles[1]

    def test_statistics_table(self, hotpot):
        stats = hotpot.statistics()
        assert set(stats) == {"train", "test"}
        for split in stats.values():
            assert split["bridge"] + split["comparison"] == split["total"]

    def test_deterministic(self, world, corpus):
        a = build_hotpot_dataset(world, corpus, comparison_per_kind=4)
        b = build_hotpot_dataset(world, corpus, comparison_per_kind=4)
        assert [q.text for q in a.train] == [q.text for q in b.train]

    def test_max_questions_cap(self, world, corpus):
        capped = build_hotpot_dataset(world, corpus, max_questions=10)
        assert len(capped.all_questions) == 10

    def test_descriptive_prob_zero_keeps_names(self, world, corpus):
        dataset = build_hotpot_dataset(
            world, corpus, descriptive_prob=0.0, partial_name_prob=0.0
        )
        for question in dataset.all_questions:
            if question.is_bridge:
                assert question.gold_titles[0] in question.text
