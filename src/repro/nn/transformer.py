"""The BERT-style transformer encoder stack.

Token embeddings + learned position embeddings, N pre-norm encoder layers
(self-attention + GELU feed-forward, residual connections), final layer
norm. Forward takes integer id matrices and padding masks and returns
per-token hidden states; the [CLS] position provides sentence embeddings.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.precision import TRAINING_DTYPE

from repro.nn.attention import MultiHeadSelfAttention, padding_bias
from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor


class TransformerEncoderLayer(Module):
    """One pre-norm encoder block."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        ffn_dim: int,
        rng: Optional[np.random.RandomState] = None,
        dropout: float = 0.0,
        residual_scale: float = 1.0,
    ):
        super().__init__()
        rng = rng or np.random.RandomState(0)
        self.attention = MultiHeadSelfAttention(dim, n_heads, rng=rng, dropout=dropout)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ffn_in = Linear(dim, ffn_dim, rng=rng)
        self.ffn_out = Linear(ffn_dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        if residual_scale != 1.0:
            # GPT-2-style scaled residual-branch init: the block starts near
            # the identity, so token-level information survives an untrained
            # stack and training grows contextualization gradually.
            self.attention.output.weight.data *= residual_scale
            self.ffn_out.weight.data *= residual_scale

    def forward(
        self,
        x: Tensor,
        mask: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
    ) -> Tensor:
        attended = self.attention(self.norm1(x), mask=mask, bias=bias)
        x = x + self.dropout(attended)
        transformed = self.ffn_out(self.ffn_in(self.norm2(x)).gelu())
        return x + self.dropout(transformed)


class TransformerEncoder(Module):
    """The full encoder: embeddings -> N layers -> final norm.

    Parameters mirror a scaled-down BERT; defaults give a model small
    enough to fine-tune on a CPU in seconds while keeping the architecture
    faithful.
    """

    def __init__(
        self,
        vocab_size: int,
        dim: int = 64,
        n_layers: int = 2,
        n_heads: int = 2,
        ffn_dim: Optional[int] = None,
        max_len: int = 64,
        dropout: float = 0.0,
        pad_id: int = 0,
        seed: int = 0,
        residual_scale: float = 1.0,
        token_embed_scale: Optional[float] = None,
        position_embed_scale: float = 0.02,
    ):
        super().__init__()
        rng = np.random.RandomState(seed)
        ffn_dim = ffn_dim if ffn_dim is not None else dim * 4
        self.dim = dim
        self.max_len = max_len
        self.pad_id = pad_id
        self.token_embedding = Embedding(vocab_size, dim, rng=rng, padding_idx=pad_id)
        if token_embed_scale is None:
            token_embed_scale = 1.0 / np.sqrt(dim)
        self.token_embedding.weight.data = rng.normal(
            0.0, token_embed_scale, size=(vocab_size, dim)
        )
        self.token_embedding.weight.data[pad_id] = 0.0
        self.position_embedding = Embedding(max_len, dim, rng=rng)
        self.position_embedding.weight.data = rng.normal(
            0.0, position_embed_scale, size=(max_len, dim)
        )
        self.layers = [
            TransformerEncoderLayer(
                dim,
                n_heads,
                ffn_dim,
                rng=rng,
                dropout=dropout,
                residual_scale=residual_scale,
            )
            for _ in range(n_layers)
        ]
        for i, layer in enumerate(self.layers):
            self.register_module(f"layer{i}", layer)
        self.final_norm = LayerNorm(dim)
        self.embed_dropout = Dropout(dropout, rng=rng)

    def forward(
        self, ids: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> Tensor:
        """Encode ``ids`` (B, S) into hidden states (B, S, D)."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim == 1:
            ids = ids[None, :]
        if ids.shape[1] > self.max_len:
            raise ValueError(
                f"sequence length {ids.shape[1]} exceeds max_len {self.max_len}"
            )
        if mask is None:
            mask = (ids != self.pad_id).astype(TRAINING_DTYPE)
        # one additive bias per batch, shared by every layer (the
        # per-layer (1 - mask) * -inf rebuild was pure waste: the bias
        # is a function of the mask alone)
        bias = padding_bias(mask)
        positions = np.broadcast_to(np.arange(ids.shape[1]), ids.shape)
        x = self.token_embedding(ids) + self.position_embedding(positions)
        x = self.embed_dropout(x)
        for layer in self.layers:
            x = layer(x, mask=mask, bias=bias)
        return self.final_norm(x)

    def encode_cls(self, ids: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        """Sentence embeddings: the hidden state at position 0 ([CLS])."""
        hidden = self.forward(ids, mask=mask)
        return hidden[:, 0, :]
