"""Service-level observability: one :class:`ServiceStats` per service.

Everything the serving layer can cheaply observe in-process: request
outcomes (completed / cache hit / rejected / failed), the micro-batcher's
batch-size histogram (the direct evidence coalescing happens), and
request latency percentiles over a bounded recent window
(:class:`repro.perf.LatencyReservoir`). Durations come from
``time.perf_counter`` — the ``wall-clock-timing`` lint rule bans
``time.time`` for measurement in this package.

``snapshot()`` is the machine-readable form (CLI ``--json``, benchmark
payloads); ``summary()`` is the human block ``repro serve-bench`` prints.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, Optional

from repro.perf import LatencyReservoir


class ServiceStats:
    """Thread-safe counters + histograms for one service instance."""

    def __init__(self, reservoir_size: int = 65536):
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.cache_hits = 0
        self.rejected_overload = 0
        self.rejected_deadline = 0
        self.failed = 0
        self.batches = 0
        self.batched_requests = 0  # requests served through batches
        self.batch_sizes: Dict[int, int] = {}
        self.latencies = LatencyReservoir(reservoir_size)
        self._started_at = time.perf_counter()

    # -- recording (called by the service / workers) ---------------------
    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_cache_hit(self) -> None:
        with self._lock:
            self.cache_hits += 1
            self.completed += 1

    def record_overloaded(self) -> None:
        with self._lock:
            self.rejected_overload += 1

    def record_deadline_exceeded(self) -> None:
        with self._lock:
            self.rejected_deadline += 1

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1

    def record_completed(self, latency_s: float) -> None:
        with self._lock:
            self.completed += 1
        self.latencies.record(latency_s)

    # -- reading ---------------------------------------------------------
    @property
    def rejected(self) -> int:
        with self._lock:
            return self.rejected_overload + self.rejected_deadline

    def mean_batch_size(self) -> float:
        with self._lock:
            return (
                self.batched_requests / self.batches if self.batches else 0.0
            )

    def qps(self, now: Optional[float] = None) -> float:
        """Completed requests per second since the service started."""
        elapsed = (
            now if now is not None else time.perf_counter()
        ) - self._started_at
        with self._lock:
            completed = self.completed
        return completed / elapsed if elapsed > 0 else 0.0

    def snapshot(self, cache_stats: Optional[dict] = None) -> dict:
        """One consistent machine-readable view of the whole service."""
        latency = self.latencies.percentiles()
        with self._lock:
            out = {
                "submitted": self.submitted,
                "completed": self.completed,
                "cache_hits": self.cache_hits,
                "rejected_overload": self.rejected_overload,
                "rejected_deadline": self.rejected_deadline,
                "failed": self.failed,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "mean_batch_size": (
                    self.batched_requests / self.batches
                    if self.batches
                    else 0.0
                ),
                "batch_size_histogram": dict(sorted(self.batch_sizes.items())),
            }
        out["qps"] = self.qps()
        out["latency_ms"] = {
            name: seconds * 1e3 for name, seconds in latency.items()
        }
        if cache_stats is not None:
            out["cache"] = cache_stats
        return out

    def summary(self, cache_stats: Optional[dict] = None) -> str:
        """Human-readable block (``repro serve-bench`` output)."""
        snap = self.snapshot(cache_stats)
        latency = snap["latency_ms"]
        lines = [
            "service stats:",
            f"  submitted:   {snap['submitted']}"
            f" (completed {snap['completed']},"
            f" cache hits {snap['cache_hits']},"
            f" rejected {snap['rejected_overload'] + snap['rejected_deadline']},"
            f" failed {snap['failed']})",
            f"  throughput:  {snap['qps']:.1f} qps",
            f"  batches:     {snap['batches']}"
            f" (mean size {snap['mean_batch_size']:.2f},"
            f" histogram {snap['batch_size_histogram']})",
            f"  latency ms:  p50 {latency['p50']:.2f}"
            f"  p95 {latency['p95']:.2f}  p99 {latency['p99']:.2f}"
            f"  max {latency['max']:.2f}",
        ]
        if "cache" in snap:
            cache = snap["cache"]
            lines.append(
                f"  cache:       {cache['hits']} hits /"
                f" {cache['misses']} misses"
                f" (ratio {cache['hit_ratio']:.2f},"
                f" evictions {cache['evictions']},"
                f" expirations {cache['expirations']})"
            )
        return "\n".join(lines)


#: snapshot() keys that aggregate across workers by plain summation.
_SUMMED_KEYS = (
    "submitted",
    "completed",
    "cache_hits",
    "rejected_overload",
    "rejected_deadline",
    "failed",
    "batches",
    "batched_requests",
)


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold per-worker :meth:`ServiceStats.snapshot` dicts into one view.

    Counters and qps sum; batch-size histograms merge; latency
    percentiles cannot be combined exactly from per-worker quantiles, so
    ``latency_ms`` reports the element-wise worst (max) across workers —
    a conservative fleet bound. The front door's own end-to-end reservoir
    is the authoritative percentile source; this merge exists so worker
    internals (batching efficacy, rejections, cache hits) stay observable
    from one endpoint.
    """
    merged: dict = {key: 0 for key in _SUMMED_KEYS}
    histogram: Dict[int, int] = {}
    latency: Dict[str, float] = {}
    qps = 0.0
    n = 0
    for snap in snapshots:
        if not snap:
            continue
        n += 1
        for key in _SUMMED_KEYS:
            merged[key] += int(snap.get(key, 0))
        for size, count in (snap.get("batch_size_histogram") or {}).items():
            size = int(size)
            histogram[size] = histogram.get(size, 0) + int(count)
        for name, value in (snap.get("latency_ms") or {}).items():
            latency[name] = max(latency.get(name, 0.0), float(value))
        qps += float(snap.get("qps", 0.0))
    merged["workers"] = n
    merged["mean_batch_size"] = (
        merged["batched_requests"] / merged["batches"]
        if merged["batches"]
        else 0.0
    )
    merged["batch_size_histogram"] = dict(sorted(histogram.items()))
    merged["latency_ms"] = latency
    merged["qps"] = qps
    return merged
