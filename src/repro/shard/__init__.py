"""Sharded, ANN-pruned retrieval: split the index, prune, merge exactly.

The gateway to the million-document regime the dense-retrieval line
(MDR, Path Retriever — see PAPERS.md) operates in: query cost follows
index *structure*, not total corpus size.

* :mod:`repro.shard.assignment` — doc-id-range or coarse-centroid
  (seeded k-means) document-to-shard assignment.
* :mod:`repro.shard.plan` — :class:`ShardPlan`: per-shard scoring with
  IVF-style centroid pruning (``nprobe``) and an exact global merge.
* :mod:`repro.shard.merge` — the deterministic ``(score desc, id asc)``
  top-k every ranking site routes through.
* :mod:`repro.shard.store` — :class:`ShardedEmbeddingStore`: shards
  persisted as sibling :class:`~repro.ingest.embedding_store.
  EmbeddingStore` directories under one sharded manifest.
"""

from repro.shard.assignment import (
    MODES,
    assign_centroid,
    assign_documents,
    assign_range,
    segment_means,
)
from repro.shard.merge import recall_at_k, topk_doc_order
from repro.shard.plan import QueryShardScores, Shard, ShardPlan
from repro.shard.store import (
    SHARDED_MANIFEST_NAME,
    ShardedEmbeddingStore,
    ShardedStoreError,
)

__all__ = [
    "MODES",
    "QueryShardScores",
    "SHARDED_MANIFEST_NAME",
    "Shard",
    "ShardPlan",
    "ShardedEmbeddingStore",
    "ShardedStoreError",
    "assign_centroid",
    "assign_documents",
    "assign_range",
    "recall_at_k",
    "segment_means",
    "topk_doc_order",
]
