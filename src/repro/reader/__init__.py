"""The reader: answer extraction from a retrieved document path.

The paper scopes itself to the retriever ("This work is focused on the
retriever problem") and delegates answer extraction to a reader model
[3]. This subpackage supplies that second stage so the repository covers
the full multi-hop QA task: a triple-fact reader that extracts the answer
span from the hop-2 document's triple facts, plus comparison-question
logic (yes/no and ordinal answers) and standard EM/F1 answer metrics.
"""

from repro.reader.reader import TripleFactReader, ReaderResult
from repro.reader.answer_metrics import exact_match, f1_score, evaluate_answers

__all__ = [
    "TripleFactReader",
    "ReaderResult",
    "exact_match",
    "f1_score",
    "evaluate_answers",
]
