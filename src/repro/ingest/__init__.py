"""Parallel, incremental corpus ingestion with persistent embeddings."""

from repro.ingest.embedding_store import (
    EmbeddingStore,
    EmbeddingStoreError,
    STORE_VERSION,
    store_generation,
)
from repro.ingest.fingerprint import (
    config_fingerprint,
    construction_fingerprint,
    document_fingerprint,
    encoder_fingerprint,
    triples_fingerprint,
)
from repro.ingest.pipeline import (
    EMBEDDINGS_DIR,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    STORE_NAME,
    IngestPipeline,
    IngestResult,
    IngestStats,
    extract_corpus_triples,
)

__all__ = [
    "EMBEDDINGS_DIR",
    "EmbeddingStore",
    "EmbeddingStoreError",
    "IngestPipeline",
    "IngestResult",
    "IngestStats",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "STORE_NAME",
    "STORE_VERSION",
    "config_fingerprint",
    "construction_fingerprint",
    "document_fingerprint",
    "encoder_fingerprint",
    "extract_corpus_triples",
    "store_generation",
    "triples_fingerprint",
]
