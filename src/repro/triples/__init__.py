"""Triple-fact set construction — the paper's Algorithm 1 and its baseline.

Turns the noisy, redundant union extraction ``T_o`` into a
*complete-minimized* triple fact set ``T_d``:

* :mod:`repro.triples.relatedness` — Eq. 1 noise pruning,
* :mod:`repro.triples.canopy` — subject / subject-predicate canopies,
* :mod:`repro.triples.setcover` — mother-child detection + greedy cover,
* :mod:`repro.triples.sibling` — sibling detection and fusion,
* :mod:`repro.triples.construct` — the full partition-based O(m^2)
  Algorithm 1,
* :mod:`repro.triples.hac` — the O(m^3) hierarchical agglomerative
  clustering baseline the paper improves on.
"""

from repro.triples.relatedness import relatedness, prune_noise
from repro.triples.canopy import build_canopies, Canopy
from repro.triples.setcover import covers, find_mother_child_pairs, greedy_cover
from repro.triples.sibling import sibling_similarity, find_sibling_pairs, fuse_siblings
from repro.triples.construct import TripleSetConstructor, ConstructionConfig
from repro.triples.hac import hac_construct, hac_cluster

__all__ = [
    "relatedness",
    "prune_noise",
    "build_canopies",
    "Canopy",
    "covers",
    "find_mother_child_pairs",
    "greedy_cover",
    "sibling_similarity",
    "find_sibling_pairs",
    "fuse_siblings",
    "TripleSetConstructor",
    "ConstructionConfig",
    "hac_construct",
    "hac_cluster",
]
