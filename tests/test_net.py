"""End-to-end tests for the networked serving subsystem (``repro.net``).

The acceptance properties under test:

* a worker fleet answers byte-identically to the in-process
  :class:`~repro.serve.service.RetrievalService` on the same published
  store (the :class:`~repro.net.bootstrap.DyadicEncoder` makes scores
  exact dyadic rationals, so "identical" means identical *bytes*);
* a client stream spanning a hot store-generation swap sees zero
  dropped/errored requests and no response mixes generations — every
  response's bytes match the expected output of exactly the generation
  it is tagged with;
* killing a worker mid-traffic loses nothing: the supervisor restarts
  it and every request still returns byte-identical results.

Worlds are deliberately tiny (24 docs, dim 24) — this file runs in
tier-1.
"""

import socket
import threading
import time

import pytest

from repro.ingest.embedding_store import EmbeddingStore, store_generation
from repro.net import (
    Fleet,
    WorkerSpec,
    canonical_json,
    publish_store,
    results_to_wire,
    synthetic_bundle,
    wire_to_results,
)
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.net.worker import EMBEDDINGS_DIR, STORE_NAME
from repro.oie.triple import Triple
from repro.retriever.store import TripleStore
from repro.serve import RetrievalService, ServiceConfig, merge_snapshots

pytestmark = pytest.mark.net

# one deterministic bundle recipe shared by the test process and every
# worker process — identical kwargs produce bit-identical bundles
BUNDLE_KWARGS = dict(
    seed=11,
    n_docs=24,
    triples_per_doc=3,
    dim=24,
    encoder="dyadic",
    n_questions=12,
)


def _spec(store_dir, **overrides) -> WorkerSpec:
    return WorkerSpec(
        target="repro.net.bootstrap:synthetic_bundle",
        kwargs=dict(BUNDLE_KWARGS),
        store_dir=str(store_dir),
        **overrides,
    )


def _expected_wire(bundle, store_dir, questions, k=3):
    """Per-(mode, question) canonical bytes from an in-process service.

    Replicates the worker's build path (load published triples, memmap
    the published matrix) so the comparison pins the whole stack, not
    just the scorer.
    """
    triples = TripleStore.load(store_dir / STORE_NAME, bundle.corpus)
    embeddings = EmbeddingStore.open(store_dir / EMBEDDINGS_DIR, mmap=True)
    retriever = bundle.make_retriever(triples)
    assert retriever.attach_embeddings(embeddings) > 0
    service = RetrievalService(
        retriever,
        multihop=bundle.make_multihop(retriever),
        config=ServiceConfig(),
    )
    service.start()
    try:
        expected = {}
        for question in questions:
            expected[("single", question)] = canonical_json(
                results_to_wire("single", service.retrieve(question, k=k))
            )
            expected[("paths", question)] = canonical_json(
                results_to_wire(
                    "paths", service.retrieve_paths(question, k=k)
                )
            )
        return expected
    finally:
        service.stop(drain=True)


def _alternate_store(bundle) -> TripleStore:
    """A second triple-store generation over the same corpus."""
    store = TripleStore(bundle.corpus)
    for doc in bundle.corpus:
        store.put(
            doc.doc_id,
            [
                Triple(
                    subject=doc.title,
                    predicate="altpred",
                    object=f"altobj{doc.doc_id} alttail{doc.doc_id % 7}",
                )
            ],
        )
    return store


# -- protocol unit tests ---------------------------------------------------


def test_frame_round_trip_and_clean_eof():
    left, right = socket.socketpair()
    try:
        payload = {"op": "query", "question": "who ?", "k": 3, "id": 7}
        send_frame(left, payload)
        send_frame(left, ["second", {"nested": [1.5, None]}])
        assert recv_frame(right) == payload
        assert recv_frame(right) == ["second", {"nested": [1.5, None]}]
        left.close()
        assert recv_frame(right) is None  # clean EOF at a frame boundary
    finally:
        right.close()


def test_oversized_frame_rejected():
    left, right = socket.socketpair()
    try:
        # a forged header claiming an over-cap body must be rejected
        # before any allocation happens
        left.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_canonical_json_is_key_order_invariant():
    a = canonical_json({"b": 1, "a": [2.5, {"y": 0, "x": 1}]})
    b = canonical_json({"a": [2.5, {"x": 1, "y": 0}], "b": 1})
    assert a == b


def test_result_codec_round_trips_dataclasses():
    bundle = synthetic_bundle(**BUNDLE_KWARGS)
    retriever = bundle.make_retriever()
    retriever.refresh_embeddings()
    docs = retriever.retrieve(bundle.questions[0], k=3)
    assert docs
    wire = results_to_wire("single", docs)
    assert wire_to_results("single", wire) == list(docs)
    multihop = bundle.make_multihop(retriever)
    paths = multihop.retrieve_paths(bundle.questions[0], k_paths=2)
    round_tripped = wire_to_results(
        "paths", results_to_wire("paths", paths)
    )
    assert round_tripped == list(paths)


# -- store generations -----------------------------------------------------


def test_publish_store_bumps_generation(tmp_path):
    bundle = synthetic_bundle(**BUNDLE_KWARGS)
    out = tmp_path / "store"
    assert store_generation(out) is None  # nothing published yet
    assert publish_store(bundle, out) == 1
    assert store_generation(out) == 1
    # identical content republished is still a new publish event
    assert publish_store(bundle, out) == 2
    assert store_generation(out) == 2


def test_merge_snapshots_sums_counters():
    merged = merge_snapshots(
        [
            {
                "submitted": 3,
                "completed": 2,
                "batches": 2,
                "batched_requests": 2,
                "batch_size_histogram": {"1": 2},
                "latency_ms": {"p50": 1.0, "p99": 4.0},
                "qps": 10.0,
            },
            {
                "submitted": 5,
                "completed": 5,
                "batches": 2,
                "batched_requests": 4,
                "batch_size_histogram": {"1": 0, "2": 2},
                "latency_ms": {"p50": 2.0, "p99": 3.0},
                "qps": 4.0,
            },
        ]
    )
    assert merged["submitted"] == 8
    assert merged["completed"] == 7
    assert merged["workers"] == 2
    assert merged["batch_size_histogram"] == {1: 2, 2: 2}
    # percentiles cannot be merged exactly: element-wise max is the
    # conservative fleet-wide bound
    assert merged["latency_ms"] == {"p50": 2.0, "p99": 4.0}
    assert merged["qps"] == 14.0


# -- fleet end-to-end ------------------------------------------------------


def test_fleet_matches_in_process_service_byte_for_byte(tmp_path):
    bundle = synthetic_bundle(**BUNDLE_KWARGS)
    store_dir = tmp_path / "store"
    publish_store(bundle, store_dir)
    questions = bundle.questions[:6]
    expected = _expected_wire(bundle, store_dir, questions)
    with Fleet(_spec(store_dir), workers=2) as fleet:
        with fleet.client() as client:
            assert client.ping()["ok"]
            for question in questions:
                for mode in ("single", "paths"):
                    response = client.query_raw(question, mode=mode, k=3)
                    assert response["generation"] == 1
                    assert (
                        canonical_json(response["results"])
                        == expected[(mode, question)]
                    )


def test_fleet_stats_aggregate_across_workers(tmp_path):
    bundle = synthetic_bundle(**BUNDLE_KWARGS)
    store_dir = tmp_path / "store"
    publish_store(bundle, store_dir)
    with Fleet(_spec(store_dir), workers=2) as fleet:
        with fleet.client() as client:
            for question in bundle.questions[:4]:
                client.retrieve(question, k=3)
            stats = client.stats()
    assert stats["ok"]
    workers = stats["workers"]
    assert len(workers) == 2
    assert {w["generation"] for w in workers} == {1}
    for worker in workers:
        assert "pending" in worker
        assert "latency_ms" in worker["stats"]
    aggregate = stats["aggregate"]
    assert aggregate["workers"] == 2
    assert aggregate["submitted"] == sum(
        w["stats"]["submitted"] for w in workers
    )
    assert aggregate["submitted"] >= 4
    front = stats["frontdoor"]
    assert front["completed"] >= 4
    assert front["failed"] == 0
    assert {"p50", "p95", "p99"} <= set(front["latency_ms"])


class _Stream:
    """Background client threads hammering the fleet until stopped."""

    def __init__(self, fleet, questions, k=3, threads=3, pause_s=0.002):
        self.fleet = fleet
        self.questions = questions
        self.k = k
        self.pause_s = pause_s
        self.stop_event = threading.Event()
        self.lock = threading.Lock()
        self.responses = []  # (mode, question, generation, bytes)
        self.errors = []
        self.threads = [
            threading.Thread(target=self._run, args=(i,), daemon=True)
            for i in range(threads)
        ]

    def _run(self, offset):
        with self.fleet.client() as client:
            i = offset
            while not self.stop_event.is_set():
                question = self.questions[i % len(self.questions)]
                mode = "paths" if i % 4 == 3 else "single"
                try:
                    response = client.query_raw(
                        question, mode=mode, k=self.k
                    )
                    record = (
                        mode,
                        question,
                        response["generation"],
                        canonical_json(response["results"]),
                    )
                    with self.lock:
                        self.responses.append(record)
                except Exception as error:  # noqa: BLE001 - recorded
                    with self.lock:
                        self.errors.append(repr(error))
                i += 1
                time.sleep(self.pause_s)

    def __enter__(self):
        for thread in self.threads:
            thread.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop_event.set()
        for thread in self.threads:
            thread.join(timeout=30.0)


def test_hot_swap_mid_traffic_drops_nothing_and_never_mixes(tmp_path):
    bundle = synthetic_bundle(**BUNDLE_KWARGS)
    store_dir = tmp_path / "store"
    publish_store(bundle, store_dir)
    questions = bundle.questions[:8]
    expected_gen1 = _expected_wire(bundle, store_dir, questions)
    # generation 2: different triples over the same corpus. Published
    # while generation-1 workers are memmap-attached — the grace window
    # keeps the old data file alive under them.
    alt = _alternate_store(bundle)
    with Fleet(_spec(store_dir), workers=2) as fleet:
        with _Stream(fleet, questions) as stream:
            time.sleep(0.1)  # stream is flowing on generation 1
            assert publish_store(bundle, store_dir, store=alt) == 2
            with fleet.client() as client:
                reload_response = client.reload()
            assert reload_response["generations"] == [2, 2]
            time.sleep(0.1)  # stream keeps flowing on generation 2
        with fleet.client() as client:
            final = client.query_raw(questions[0], mode="single", k=3)
    expected_gen2 = _expected_wire(bundle, store_dir, questions)
    assert not stream.errors  # zero dropped or errored requests
    assert len(stream.responses) > 20
    generations = {generation for _, _, generation, _ in stream.responses}
    assert generations <= {1, 2}
    assert 2 in generations  # the stream really spanned the swap
    expected = {1: expected_gen1, 2: expected_gen2}
    for mode, question, generation, payload in stream.responses:
        # byte-equality against exactly the tagged generation's output:
        # a response mixing generations could match neither
        assert payload == expected[generation][(mode, question)]
    # after the rollout the fleet answers wholly from generation 2
    assert final["generation"] == 2
    assert (
        canonical_json(final["results"])
        == expected_gen2[("single", questions[0])]
    )
    assert fleet.supervisor.rollouts == 1


def test_worker_kill_mid_traffic_recovers_byte_identically(tmp_path):
    bundle = synthetic_bundle(**BUNDLE_KWARGS)
    store_dir = tmp_path / "store"
    publish_store(bundle, store_dir)
    questions = bundle.questions[:8]
    expected = _expected_wire(bundle, store_dir, questions)
    with Fleet(
        _spec(store_dir), workers=2, health_interval_s=0.05
    ) as fleet:
        victim = fleet.supervisor.handles()[0]
        with _Stream(fleet, questions) as stream:
            time.sleep(0.05)  # let requests take flight first
            victim.process.kill()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if fleet.supervisor.restarts >= 1 and len(
                    fleet.supervisor.handles()
                ) == 2:
                    break
                time.sleep(0.02)
            time.sleep(0.15)  # keep streaming across the restart
        handles = fleet.supervisor.handles()
    assert fleet.supervisor.restarts >= 1
    assert len(handles) == 2
    assert victim.process.pid not in {h.pid for h in handles}
    assert not stream.errors  # every request completed, none dropped
    assert len(stream.responses) > 10
    for mode, question, generation, payload in stream.responses:
        assert generation == 1
        assert payload == expected[(mode, question)]
