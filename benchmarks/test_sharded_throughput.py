"""Micro-benchmark: IVF-pruned sharded retrieval vs exact scoring at 100k.

Builds a 100k-document embedding world (clustered synthetic vectors —
documents drawn around latent centers, queries perturbed from documents,
one triple row per document) and runs the same query set through two
:class:`repro.shard.ShardPlan` configurations:

* **exact** — a single shard, so every query pays one full ``1 x 100k``
  matmul (the unsharded cost model), and
* **sharded** — ``N_SHARDS`` centroid shards probed at ``NPROBE``, so a
  query scores 16 centroids and then only ~``NPROBE/N_SHARDS`` of the
  rows.

Both paths share the scoring/merge code, so the comparison isolates the
centroid pruning. The gates encode the acceptance bar from the sharding
issue: recall@10 >= 0.95 against exact results, and pruned p50 latency
strictly below the exact baseline.

Writes ``BENCH_sharded.json`` next to this file. Marked ``perf`` +
``sharded``; tier-1 (``testpaths = tests``) never collects it.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.retriever.strategies import ScoreStrategy, l2_normalize_rows
from repro.shard import ShardPlan, recall_at_k, topk_doc_order
from repro.storage.atomic import atomic_write_json

pytestmark = [pytest.mark.perf, pytest.mark.sharded]

N_DOCS = 100_000
DIM = 32
N_CENTERS = 64
N_SHARDS = 16
NPROBE = 5
N_QUERIES = 64
K = 10
SEED = 47
OUT_PATH = Path(__file__).parent / "BENCH_sharded.json"


@pytest.fixture(scope="module")
def bench_setup():
    """(normalized doc matrix, normalized query matrix), clustered."""
    rng = np.random.RandomState(SEED)
    centers = l2_normalize_rows(rng.randn(N_CENTERS, DIM))
    labels = rng.randint(N_CENTERS, size=N_DOCS)
    docs = l2_normalize_rows(
        centers[labels] + 0.18 * rng.randn(N_DOCS, DIM)
    )
    anchors = rng.randint(N_DOCS, size=N_QUERIES)
    queries = l2_normalize_rows(
        docs[anchors] + 0.08 * rng.randn(N_QUERIES, DIM)
    )
    return docs, queries


def _run(plan, queries, strategy, nprobe):
    """Per-query top-K ids and latencies through one plan configuration."""
    top_ids = []
    latencies = []
    for query in queries:
        start = time.perf_counter()
        result = plan.search(query[None, :], strategy, nprobe=nprobe)[0]
        order = topk_doc_order(result.scores, result.doc_ids, K)
        latencies.append(time.perf_counter() - start)
        top_ids.append(result.doc_ids[order])
    return top_ids, np.asarray(latencies)


def test_sharded_pruning_speedup_and_recall(bench_setup):
    docs, queries = bench_setup
    doc_ids = np.arange(N_DOCS, dtype=np.int64)
    offsets = np.arange(N_DOCS, dtype=np.int64)  # one triple row per doc
    strategy = ScoreStrategy()

    exact_plan = ShardPlan.build(docs, doc_ids, offsets, 1, mode="range")
    sharded_plan = ShardPlan.build(
        docs, doc_ids, offsets, N_SHARDS, mode="centroid"
    )
    occupied = [s for s in sharded_plan.shards if len(s)]
    assert sharded_plan.total_docs == N_DOCS
    assert len(occupied) == N_SHARDS, "centroid k-means collapsed shards"

    # warm both paths (first-touch page faults, BLAS thread spin-up)
    _run(exact_plan, queries[:2], strategy, None)
    _run(sharded_plan, queries[:2], strategy, NPROBE)

    exact_ids, exact_lat = _run(exact_plan, queries, strategy, None)
    sharded_ids, sharded_lat = _run(sharded_plan, queries, strategy, NPROBE)

    recalls = [
        recall_at_k(approx, exact)
        for approx, exact in zip(sharded_ids, exact_ids)
    ]
    mean_recall = float(np.mean(recalls))
    exact_p50 = float(np.percentile(exact_lat, 50))
    sharded_p50 = float(np.percentile(sharded_lat, 50))
    rows_scanned = sum(
        shard.n_rows
        for shard in sharded_plan.shards
        if len(shard)
    )

    payload = {
        "n_docs": N_DOCS,
        "dim": DIM,
        "n_shards": N_SHARDS,
        "nprobe": NPROBE,
        "n_queries": N_QUERIES,
        "k": K,
        "mean_recall_at_k": mean_recall,
        "min_recall_at_k": float(np.min(recalls)),
        "exact_p50_ms": exact_p50 * 1e3,
        "sharded_p50_ms": sharded_p50 * 1e3,
        "speedup_p50": exact_p50 / sharded_p50 if sharded_p50 else 0.0,
        "total_rows": int(rows_scanned),
        "shard_sizes": [len(s) for s in sharded_plan.shards],
    }
    atomic_write_json(OUT_PATH, payload, indent=2)
    print(
        f"\nsharded retrieval @ {N_DOCS} docs: exact p50 "
        f"{exact_p50 * 1e3:.2f} ms, nprobe={NPROBE}/{N_SHARDS} p50 "
        f"{sharded_p50 * 1e3:.2f} ms "
        f"({payload['speedup_p50']:.1f}x), recall@{K} {mean_recall:.3f}"
    )
    # acceptance bars from the sharding issue
    assert mean_recall >= 0.95, payload
    assert sharded_p50 < exact_p50, payload
