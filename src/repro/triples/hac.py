"""Hierarchical Agglomerative Clustering baseline (paper Sec. I / III-A).

The method the paper improves on: merge the closest pair of clusters
bottom-up until ``l`` clusters remain, then keep one representative triple
per cluster. The naive implementation is O(m^3) — m-1 merge steps, each
scanning O(m^2) pairwise distances — and *loses information* because each
cluster is collapsed to one representative. Both properties are exactly
what the ablation bench measures against Algorithm 1.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.oie.triple import Triple
from repro.triples.sibling import sibling_similarity


def _distance(a: Triple, b: Triple) -> float:
    return 1.0 - sibling_similarity(a, b)


def hac_cluster(triples: Sequence[Triple], n_clusters: int) -> List[List[Triple]]:
    """Average-linkage agglomerative clustering down to ``n_clusters``.

    Deliberately the naive O(m^3) algorithm (the paper's complexity claim
    is about this baseline, so the baseline must actually exhibit it).
    """
    clusters: List[List[Triple]] = [[t] for t in triples]
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    while len(clusters) > n_clusters:
        best_pair = None
        best_distance = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                total = 0.0
                count = 0
                for a in clusters[i]:
                    for b in clusters[j]:
                        total += _distance(a, b)
                        count += 1
                distance = total / count if count else 1.0
                if best_distance is None or distance < best_distance:
                    best_distance = distance
                    best_pair = (i, j)
        if best_pair is None:  # pragma: no cover - len >= 2 guarantees a pair
            break
        i, j = best_pair
        clusters[i] = clusters[i] + clusters[j]
        del clusters[j]
    return clusters


def _representative(cluster: Sequence[Triple]) -> Triple:
    """Pick the cluster representative: the most informative triple.

    "The information can be lost when selecting a representation point from
    each cluster" — everything else in the cluster is discarded.
    """
    return max(cluster, key=lambda t: (len(t.flatten()), t.confidence))


def hac_construct(triples: Sequence[Triple], threshold_size: int) -> List[Triple]:
    """HAC-based construction: cluster to ``threshold_size``, keep one
    representative per cluster."""
    if not triples:
        return []
    n_clusters = min(threshold_size, len(triples))
    clusters = hac_cluster(triples, n_clusters)
    return [_representative(cluster) for cluster in clusters]
