"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, cmd_demo, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["build", "--out", "x"],
            ["query", "--model", "m", "question?"],
            ["eval", "--model", "m"],
            ["demo", "some text"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(["build", "--out", "x"])
        assert args.persons == 70 and args.dim == 96


class TestDemo:
    def test_demo_runs(self, capsys):
        exit_code = main(
            ["demo", "Walter Davis was a footballer. He played for Millwall."]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "union extraction" in out
        assert "constructed T_d" in out
        assert "Walter Davis" in out
