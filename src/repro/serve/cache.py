"""LRU + TTL result cache keyed on normalized query text.

Retrieval is a pure function of (query text, mode, k) once the embedding
matrix is frozen, so the service memoizes results. Keys are *normalized*
query text (:func:`repro.text.tokenize.normalize` — lower-cased,
whitespace-collapsed): the tokenizer applies exactly that normalization
before encoding, so two raw strings with the same normal form are
guaranteed to produce identical retrieval results and may safely share a
cache entry ("Who founded Millwall?" and "who  founded millwall?" are
one computation, not two).

Eviction is LRU over a bounded capacity; entries optionally expire after
a TTL measured on an injectable monotonic clock (tests pass a fake
clock; production uses ``time.monotonic`` — wall-clock ``time.time`` is
banned here by the ``wall-clock-timing`` lint rule because it jumps under
NTP adjustments). All operations are thread-safe and O(1).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Tuple

from repro.text.tokenize import normalize

#: Sentinel distinguishing "miss" from a cached None value.
_MISS = object()

#: Oldest entries examined per ``put`` when sweeping expired entries.
#: Bounded so an insert stays O(1); a steady trickle of inserts still
#: reclaims dead weight faster than it accumulates.
_SWEEP_LIMIT = 8


def query_cache_key(
    question: str,
    mode: str,
    k: int,
    nprobe: Optional[int] = None,
    precision: Optional[str] = None,
) -> Tuple[str, int, Optional[int], Optional[str], str]:
    """The cache key of one request:
    (mode, k, nprobe, precision, normalized question).

    ``nprobe`` participates because pruned sharded retrieval is a
    *different* pure function of the query than exact retrieval — results
    under ``nprobe=2`` must never be served to an ``nprobe=None`` caller.
    ``precision`` participates for the same reason: an int8-rescore
    answer must never be served to an exact-mode request (and vice
    versa). Pass :meth:`repro.precision.Precision.key` — it includes the
    rescore width, which changes quantized top-k.
    """
    return (mode, int(k), nprobe, precision, normalize(question))


@dataclass
class CacheStats:
    """Counters of one cache instance (monotonically increasing)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0  # LRU capacity evictions
    expirations: int = 0  # TTL expiries observed on access

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_ratio": self.hit_ratio,
        }


class ResultCache:
    """Thread-safe LRU cache with optional TTL expiry.

    ``capacity <= 0`` disables the cache entirely (every ``get`` misses,
    ``put`` is a no-op) so callers need no branching. ``ttl_s=None``
    means entries never expire. ``clock`` must be monotonic; it exists as
    a parameter so tests can drive expiry deterministically.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._clock = clock
        self._entries: "OrderedDict[Hashable, Tuple[float, Any]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Any:
        """The cached value, or the module-level ``MISS`` sentinel.

        A hit refreshes the entry's recency; an expired entry counts as
        both an expiration and a miss (it is removed on observation).
        """
        if self.capacity <= 0:
            return _MISS
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return _MISS
            stored_at, value = entry
            if self.ttl_s is not None and (
                self._clock() - stored_at >= self.ttl_s
            ):
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return _MISS
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting the LRU entry over capacity.

        Each insert also sweeps up to ``_SWEEP_LIMIT`` of the *oldest*
        entries for TTL expiry. Without the sweep, expired entries that
        are never looked up again ("dead weight") survive until capacity
        pressure evicts them — and get mis-counted as ``evictions`` when
        they do. Bounded work per insert keeps ``put`` O(1).
        """
        if self.capacity <= 0:
            return
        with self._lock:
            now = self._clock()
            if self.ttl_s is not None:
                # examine the LRU end only: recency order approximates
                # age order, and the bound keeps the insert O(1)
                window = [
                    old_key
                    for old_key, _ in zip(self._entries, range(_SWEEP_LIMIT))
                ]
                for old_key in window:
                    stored_at, _ = self._entries[old_key]
                    if now - stored_at >= self.ttl_s:
                        del self._entries[old_key]
                        self.stats.expirations += 1
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (now, value)
            while len(self._entries) > self.capacity:
                _, (stored_at, _) = self._entries.popitem(last=False)
                # an already-expired entry leaving under capacity pressure
                # is an expiration, not a genuine LRU eviction
                if self.ttl_s is not None and now - stored_at >= self.ttl_s:
                    self.stats.expirations += 1
                else:
                    self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: Public alias of the miss sentinel (``cache.get(k) is MISS``).
MISS = _MISS
