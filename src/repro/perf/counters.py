"""Process-wide retrieval performance instrumentation.

The vectorized retrieval path collapses per-document Python loops into a
handful of matmuls, which makes the speedup easy to claim and hard to
*see*. This module keeps the cheap observables — encoder invocations,
matmul wall-clock, documents/triples scored — in one mutable counter
object that the retrievers increment and the CLI / benchmarks print.

Counters are guarded by a lock: the serving layer (``repro.serve``)
drives retrieval from multiple worker threads, and ``float`` accumulation
(``matmul_seconds``) is a read-modify-write that *does* lose updates under
contention, unlike plain int increments. The lock is uncontended on the
single-threaded paths and costs nanoseconds next to a matmul.

:class:`LatencyReservoir` is the shared percentile primitive: a bounded
window of ``perf_counter`` durations that the service stats turn into
p50/p95/p99 summaries.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence


@dataclass
class PerfCounters:
    """Cumulative counters for one process (reset explicitly).

    Thread-safe: every mutation and read-out happens under one lock, so
    concurrent service workers never lose increments and ``snapshot()``
    is always internally consistent.
    """

    encode_calls: int = 0  # encoder forward batches
    texts_encoded: int = 0  # total sentences through the encoder
    tokens_encoded: int = 0  # tokens through the encoder forward
    encode_seconds: float = 0.0  # wall-clock inside encode_numpy
    matmul_calls: int = 0  # batched scoring products
    matmul_seconds: float = 0.0  # wall-clock inside those products
    queries: int = 0  # query vectors scored
    docs_scored: int = 0  # (query, document) score pairs produced
    triples_scored: int = 0  # (query, triple) score pairs produced
    docs_extracted: int = 0  # documents through triple extraction
    docs_extract_reused: int = 0  # documents skipped by incremental ingest
    triples_extracted: int = 0  # triples produced by extraction
    extract_seconds: float = 0.0  # wall-clock inside extraction
    rows_encoded: int = 0  # embedding rows (re-)encoded by refreshes
    rows_reused: int = 0  # embedding rows reused verbatim by refreshes
    refresh_seconds: float = 0.0  # wall-clock inside embedding refreshes

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record_encode(self, n_texts: int) -> None:
        with self._lock:
            self.encode_calls += 1
            self.texts_encoded += n_texts

    def record_encode_tokens(self, n_tokens: int, seconds: float) -> None:
        with self._lock:
            self.tokens_encoded += n_tokens
            self.encode_seconds += seconds

    def encoder_throughput(self) -> Dict[str, float]:
        """Token throughput of the encoder so far (bench/run metadata)."""
        with self._lock:
            tokens, seconds = self.tokens_encoded, self.encode_seconds
        return {
            "tokens": tokens,
            "seconds": seconds,
            "tokens_per_sec": tokens / seconds if seconds > 0 else 0.0,
        }

    def record_extract(
        self, n_docs: int, n_reused: int, n_triples: int, seconds: float
    ) -> None:
        with self._lock:
            self.docs_extracted += n_docs
            self.docs_extract_reused += n_reused
            self.triples_extracted += n_triples
            self.extract_seconds += seconds

    def record_embed_refresh(
        self, n_encoded: int, n_reused: int, seconds: float
    ) -> None:
        with self._lock:
            self.rows_encoded += n_encoded
            self.rows_reused += n_reused
            self.refresh_seconds += seconds

    def record_scoring(
        self, n_queries: int, n_docs: int, n_triples: int, seconds: float
    ) -> None:
        with self._lock:
            self.matmul_calls += 1
            self.matmul_seconds += seconds
            self.queries += n_queries
            self.docs_scored += n_queries * n_docs
            self.triples_scored += n_queries * n_triples

    def reset(self) -> None:
        with self._lock:
            for f in fields(self):
                setattr(self, f.name, type(getattr(self, f.name))())

    def snapshot(self) -> dict:
        with self._lock:
            return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        """One human-readable block (CLI ``--stats`` output)."""
        snap = self.snapshot()
        per_query = (
            snap["matmul_seconds"] / snap["queries"] * 1e3
            if snap["queries"]
            else 0.0
        )
        tokens_per_sec = (
            snap["tokens_encoded"] / snap["encode_seconds"]
            if snap["encode_seconds"] > 0
            else 0.0
        )
        return "\n".join(
            [
                "perf counters:",
                f"  encode calls:    {snap['encode_calls']}"
                f" ({snap['texts_encoded']} texts)",
                f"  encoder tokens:  {snap['tokens_encoded']}"
                f" ({snap['encode_seconds'] * 1e3:.1f} ms,"
                f" {tokens_per_sec:.0f} tokens/s)",
                f"  scoring matmuls: {snap['matmul_calls']}"
                f" ({snap['matmul_seconds'] * 1e3:.1f} ms total,"
                f" {per_query:.3f} ms/query)",
                f"  queries scored:  {snap['queries']}",
                f"  docs scored:     {snap['docs_scored']}",
                f"  triples scored:  {snap['triples_scored']}",
                f"  extraction:      {snap['docs_extracted']} docs"
                f" (+{snap['docs_extract_reused']} reused,"
                f" {snap['triples_extracted']} triples,"
                f" {snap['extract_seconds'] * 1e3:.1f} ms)",
                f"  embed refresh:   {snap['rows_encoded']} rows encoded"
                f" (+{snap['rows_reused']} reused,"
                f" {snap['refresh_seconds'] * 1e3:.1f} ms)",
            ]
        )


#: The process-wide counter instance the retrievers increment.
COUNTERS = PerfCounters()


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample list.

    ``q`` in [0, 100]. Empty input returns 0.0 so stats snapshots stay
    total without special-casing an idle service.
    """
    if not sorted_samples:
        return 0.0
    if q <= 0:
        return float(sorted_samples[0])
    rank = max(1, -(-len(sorted_samples) * q // 100))  # ceil, nearest-rank
    return float(sorted_samples[min(int(rank) - 1, len(sorted_samples) - 1)])


class LatencyReservoir:
    """Bounded, thread-safe window of duration samples (seconds).

    Keeps the most recent ``capacity`` samples in a ring; percentiles are
    computed over that window. Bounded so a long-lived service cannot
    grow without limit, recent-biased so the numbers track current load.
    """

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self._samples: List[float] = []
        self._cursor = 0  # ring write position once full
        self._count = 0  # total ever recorded
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._count += 1
            if len(self._samples) < self.capacity:
                self._samples.append(seconds)
            else:
                self._samples[self._cursor] = seconds
                self._cursor = (self._cursor + 1) % self.capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    @property
    def total_recorded(self) -> int:
        with self._lock:
            return self._count

    def percentiles(
        self, qs: Sequence[float] = (50.0, 95.0, 99.0)
    ) -> Dict[str, float]:
        """``{"p50": ..., ...}`` plus mean/max over the current window."""
        with self._lock:
            window = sorted(self._samples)
        out = {f"p{q:g}": percentile(window, q) for q in qs}
        out["mean"] = sum(window) / len(window) if window else 0.0
        out["max"] = window[-1] if window else 0.0
        return out


class _Timer:
    """Callable returning the elapsed seconds (frozen at block exit)."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._stop: float = 0.0

    def freeze(self) -> None:
        self._stop = time.perf_counter()

    def __call__(self) -> float:
        return (self._stop or time.perf_counter()) - self._start


@contextmanager
def time_block():
    """``with time_block() as elapsed: ...`` — ``elapsed()`` in seconds."""
    timer = _Timer()
    try:
        yield timer
    finally:
        timer.freeze()
