"""Baseline retrieval systems the paper compares against (Tables II-V).

* :mod:`repro.baselines.lexical` — TF-IDF / BM25 text retrievers [1, 10, 11],
* :mod:`repro.baselines.golden_retriever` — GoldEn [13]: IR retrieval with
  a per-hop query generator,
* :mod:`repro.baselines.dense_base` — shared dense bi-encoder machinery,
* :mod:`repro.baselines.tprr` — TPRR [7]: full-text dense encoding with
  path reranking,
* :mod:`repro.baselines.mdr` — MDR [17]: recursive dense retrieval, hop-2
  query = question ⊕ hop-1 document text,
* :mod:`repro.baselines.path_retriever` — PathRetriever [3]: recurrent
  beam search over the hyperlink graph,
* :mod:`repro.baselines.hop_retriever` — HopRetriever [2]: entity-mention
  enriched dense retrieval.
"""

from repro.baselines.lexical import LexicalRetriever
from repro.baselines.golden_retriever import GoldEnRetriever
from repro.baselines.dense_base import DenseRetriever, DenseConfig
from repro.baselines.tprr import TPRRRetriever
from repro.baselines.mdr import MDRRetriever
from repro.baselines.path_retriever import PathRetrieverBaseline, PathRetrieverConfig
from repro.baselines.hop_retriever import HopRetrieverBaseline

__all__ = [
    "LexicalRetriever",
    "GoldEnRetriever",
    "DenseRetriever",
    "DenseConfig",
    "TPRRRetriever",
    "MDRRetriever",
    "PathRetrieverBaseline",
    "PathRetrieverConfig",
    "HopRetrieverBaseline",
]
