"""Unit tests for the triple-fact reader and answer metrics."""

import pytest

from repro.reader.answer_metrics import evaluate_answers, exact_match, f1_score
from repro.reader.reader import (
    COUNT,
    PLACE,
    SPAN,
    WHICH_FIRST,
    WHICH_LARGER,
    YEAR,
    YES_NO,
    TripleFactReader,
    classify_question,
)


class TestAnswerMetrics:
    def test_exact_match_normalization(self):
        assert exact_match("The Millwall", "millwall")
        assert not exact_match("Arsenal", "Millwall")

    def test_f1_perfect(self):
        assert f1_score("red brick house", "red brick house") == 1.0

    def test_f1_partial(self):
        assert 0.0 < f1_score("red house", "red brick house") < 1.0

    def test_f1_disjoint(self):
        assert f1_score("alpha", "beta") == 0.0

    def test_f1_empty(self):
        assert f1_score("", "") == 1.0
        assert f1_score("", "gold") == 0.0

    def test_evaluate_answers(self):
        out = evaluate_answers(["a", "b"], ["a", "c"])
        assert out["em"] == 0.5

    def test_evaluate_misaligned(self):
        with pytest.raises(ValueError):
            evaluate_answers(["a"], [])


class TestQuestionClassification:
    @pytest.mark.parametrize(
        "question,expected",
        [
            ("When was the club founded?", YEAR),
            ("In what year was it established?", YEAR),
            ("How many members does the band have?", COUNT),
            ("Where is the club based?", PLACE),
            ("In which city does the club play?", PLACE),
            ("Did A and B have the same occupation?", YES_NO),
            ("Which band was formed first, A or B?", WHICH_FIRST),
            ("Was A formed before B?", WHICH_FIRST),
            ("Which city has the larger population, A or B?", WHICH_LARGER),
            ("What genre of music does the band play?", SPAN),
        ],
    )
    def test_classification(self, question, expected):
        assert classify_question(question) == expected


@pytest.fixture(scope="module")
def reader(corpus, store):
    return TripleFactReader(corpus, store)


class TestBridgeReading:
    def test_gold_path_answers(self, reader, hotpot):
        answered = 0
        correct = 0
        for question in hotpot.all_questions:
            if not question.is_bridge:
                continue
            result = reader.read_bridge(question.text, question.gold_titles)
            if result:
                answered += 1
                correct += exact_match(result.answer, question.answer) or (
                    f1_score(result.answer, question.answer) > 0.5
                )
        assert answered > 0
        # the rule reader should answer a solid majority from gold paths
        assert correct / answered > 0.5

    def test_supporting_triple_provided(self, reader, hotpot):
        question = next(q for q in hotpot.all_questions if q.is_bridge)
        result = reader.read_bridge(question.text, question.gold_titles)
        assert result.supporting_triple is not None
        assert result.doc_title == question.gold_titles[1]

    def test_short_path_graceful(self, reader):
        result = reader.read_bridge("When was it founded?", ["only one"])
        assert result.answer == "" and not result


class TestComparisonReading:
    def test_gold_path_accuracy(self, reader, hotpot):
        answered = 0
        correct = 0
        for question in hotpot.all_questions:
            if question.is_bridge:
                continue
            result = reader.read_comparison(question.text, question.gold_titles)
            if result:
                answered += 1
                correct += exact_match(result.answer, question.answer)
        assert answered > 0
        assert correct / answered > 0.4  # well above yes/no chance overall

    def test_unknown_title_graceful(self, reader):
        result = reader.read_comparison(
            "Did A and B have the same genre?", ["Nope", "Nada"]
        )
        assert result.answer == ""


class TestDispatch:
    def test_read_uses_qtype(self, reader, hotpot):
        bridge = next(q for q in hotpot.all_questions if q.is_bridge)
        result = reader.read(bridge.text, bridge.gold_titles, qtype="bridge")
        assert result.doc_title == bridge.gold_titles[1]

    def test_read_infers_comparison(self, reader, hotpot):
        comparison = next(
            q
            for q in hotpot.all_questions
            if not q.is_bridge and q.answer in ("yes", "no")
        )
        result = reader.read(comparison.text, comparison.gold_titles)
        assert result.answer in ("yes", "no", "")
