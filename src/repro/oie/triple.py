"""The triple-fact data structure (paper Definition 2).

A triple fact ``<subject, predicate, object>`` captures one relationship.
Fusion triples (created when sibling triples are merged, Sec. III-A) carry
additional objects in ``extra_objects`` — the paper's
``[Staughton Craig Lynd, is, American conscientious objector, Quaker]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.text.tokenize import tokenize


@dataclass(frozen=True)
class Triple:
    """An immutable triple fact.

    Attributes
    ----------
    subject, predicate, object:
        The three constituents, as surface text.
    extra_objects:
        Additional objects from sibling fusion (empty for plain triples).
    source:
        Which extractor produced it ("pattern", "minie", "fusion", ...).
    sentence_index:
        Index of the source sentence within its document.
    confidence:
        Extractor confidence in [0, 1].
    """

    subject: str
    predicate: str
    object: str
    extra_objects: Tuple[str, ...] = ()
    source: str = ""
    sentence_index: int = -1
    confidence: float = 1.0

    def flatten(self) -> str:
        """Render the triple as a sentence-like string for encoding/indexing.

        This is the "flatten the triple fact to a sentence-level
        representation" step of the paper's text encoder.
        """
        parts = [self.subject, self.predicate, self.object]
        parts.extend(self.extra_objects)
        return " ".join(p for p in parts if p)

    def tokens(self) -> List[str]:
        """Lower-cased word tokens of the flattened triple."""
        return tokenize(self.flatten())

    def content_key(self) -> Tuple[str, str, Tuple[str, ...]]:
        """Identity key ignoring provenance: (subject, predicate, objects)."""
        objects = (self.object,) + self.extra_objects
        return (
            self.subject.lower(),
            self.predicate.lower(),
            tuple(o.lower() for o in objects),
        )

    @property
    def is_fusion(self) -> bool:
        """True if this triple was created by sibling fusion."""
        return bool(self.extra_objects)

    def with_extra(self, objects: Tuple[str, ...]) -> "Triple":
        """Return a fusion copy with ``objects`` appended."""
        return Triple(
            subject=self.subject,
            predicate=self.predicate,
            object=self.object,
            extra_objects=self.extra_objects + tuple(objects),
            source="fusion",
            sentence_index=self.sentence_index,
            confidence=self.confidence,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        objects = ", ".join((self.object,) + self.extra_objects)
        return f"<{self.subject}, {self.predicate}, {objects}>"
