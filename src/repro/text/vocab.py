"""Vocabulary for the neural encoder.

Maps tokens to integer ids with the special symbols BERT-style encoders
need: ``[PAD]``, ``[UNK]``, ``[CLS]``, ``[SEP]``, ``[MASK]``.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
MASK_TOKEN = "[MASK]"

SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, SEP_TOKEN, MASK_TOKEN)


class Vocab:
    """A token <-> id mapping with BERT-style special symbols.

    Build with :meth:`from_texts` or :meth:`from_tokens`; every vocabulary
    reserves ids 0-4 for the special tokens in :data:`SPECIAL_TOKENS`.
    """

    def __init__(self, tokens: Optional[Sequence[str]] = None):
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)
        for token in tokens or ():
            self._add(token)

    def _add(self, token: str) -> int:
        if token not in self._token_to_id:
            self._token_to_id[token] = len(self._id_to_token)
            self._id_to_token.append(token)
        return self._token_to_id[token]

    # -- construction ---------------------------------------------------
    @classmethod
    def from_tokens(
        cls, tokens: Iterable[str], min_count: int = 1, max_size: Optional[int] = None
    ) -> "Vocab":
        """Build from a flat token stream, most frequent tokens first."""
        counts = Counter(tokens)
        ranked = [t for t, c in counts.most_common() if c >= min_count]
        if max_size is not None:
            ranked = ranked[: max(0, max_size - len(SPECIAL_TOKENS))]
        return cls(ranked)

    @classmethod
    def from_texts(
        cls,
        texts: Iterable[str],
        tokenizer,
        min_count: int = 1,
        max_size: Optional[int] = None,
    ) -> "Vocab":
        """Build from raw texts using ``tokenizer`` (a ``str -> List[str]``)."""

        def stream():
            for text in texts:
                yield from tokenizer(text)

        return cls.from_tokens(stream(), min_count=min_count, max_size=max_size)

    # -- lookups ---------------------------------------------------------
    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP_TOKEN]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK_TOKEN]

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def id_of(self, token: str) -> int:
        """Return the id of ``token``, or the UNK id if absent."""
        return self._token_to_id.get(token, self.unk_id)

    def token_of(self, idx: int) -> str:
        """Return the token string for ``idx``; raises IndexError if invalid."""
        return self._id_to_token[idx]

    def encode(self, tokens: Sequence[str]) -> List[int]:
        """Map a token sequence to ids (UNK for OOV)."""
        unk = self.unk_id
        table = self._token_to_id
        return [table.get(t, unk) for t in tokens]

    def decode(self, ids: Sequence[int]) -> List[str]:
        """Map ids back to token strings."""
        return [self._id_to_token[i] for i in ids]

    # -- persistence -----------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Serialize the vocabulary to a JSON file (written atomically)."""
        from repro.storage.atomic import atomic_write_json

        payload = {"tokens": self._id_to_token[len(SPECIAL_TOKENS):]}
        atomic_write_json(Path(path), payload)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Vocab":
        """Load a vocabulary previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        return cls(payload["tokens"])
