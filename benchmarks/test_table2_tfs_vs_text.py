"""Table II — non-learning BM25: Text matching vs TFS matching.

Paper shape: TFS matching ≥ Text matching on total hop-1 PR, with the
largest relative gain on hop-2 PEM and on comparison questions (paper:
+22.2% comparison hop-2).
"""

import pytest

from repro.eval.experiments import run_table2
from repro.eval.tables import format_table


@pytest.fixture(scope="module")
def table2(ctx):
    return run_table2(ctx)


def _rows(result):
    rows = []
    for split in ("train", "test"):
        for field, label in (("text", "Text"), ("triples", "TFS")):
            cards = result[split][field]
            rows.append(
                [
                    f"{split}/{label}",
                    cards["hop1_pr"].rate("bridge"),
                    cards["hop1_pr"].rate("comparison"),
                    cards["hop1_pr"].total,
                    cards["hop2_pem"].rate("bridge"),
                    cards["hop2_pem"].rate("comparison"),
                    cards["hop2_pem"].total,
                ]
            )
    return rows


def test_table2_tfs_vs_text(ctx, table2, benchmark):
    question = ctx.eval_questions[0].text
    benchmark(lambda: ctx.lexical.retrieve(question, k=10, field="triples"))
    print()
    print(
        format_table(
            [
                "split/field",
                "hop1 bri",
                "hop1 com",
                "hop1 tot",
                "hop2 bri",
                "hop2 com",
                "hop2 tot",
            ],
            _rows(table2),
            title="Table II — BM25 Text vs TFS matching (PR@10 / PEM@10)",
        )
    )
    for split in ("train", "test"):
        text_cards = table2[split]["text"]
        tfs_cards = table2[split]["triples"]
        # TFS >= Text on total hop-1 PR (small tolerance for sampling noise)
        assert tfs_cards["hop1_pr"].total >= text_cards["hop1_pr"].total - 0.03
        # TFS >= Text on hop-2 PEM — the paper's headline +5.3%
        assert tfs_cards["hop2_pem"].total >= text_cards["hop2_pem"].total - 0.03


def test_table2_comparison_gain_largest(table2):
    """The comparison-question hop-2 gain should be the biggest one."""
    train = table2["train"]
    text_compare = train["text"]["hop2_pem"].rate("comparison")
    tfs_compare = train["triples"]["hop2_pem"].rate("comparison")
    assert tfs_compare >= text_compare
