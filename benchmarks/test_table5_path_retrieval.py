"""Table V — document-path PEM@8 for the full systems.

Paper shape:
* Triple-fact Retrieval (reranked) >= Triple-fact Retrieval-base,
* both competitive with / above the dense and graph baselines on total,
* MDR collapses on bridge questions (full-text concatenation update) while
  staying strong on comparison,
* PathRetriever is relatively strong on comparison questions.
"""

import pytest

from repro.eval.experiments import run_table5
from repro.eval.tables import format_table, row_from_scorecard


@pytest.fixture(scope="module")
def table5(ctx, trained_system):
    return run_table5(ctx)


def test_table5_path_retrieval(ctx, table5, benchmark):
    question = ctx.eval_questions[0].text
    system = ctx.system
    benchmark.pedantic(
        lambda: system.retrieve_paths(question, k=8), rounds=3, iterations=1
    )
    rows = [row_from_scorecard(name, card) for name, card in table5.items()]
    print()
    print(
        format_table(
            ["model", "bridge", "comparison", "total"],
            rows,
            title="Table V — document-path PEM@8",
        )
    )
    full = table5["Triple-fact Retrieval"]
    base = table5["Triple-fact Retrieval-base"]
    mdr = table5["MDR"]
    # reranking helps (or at least does not hurt)
    assert full.total >= base.total - 0.03
    # MDR's bridge collapse: far below its own comparison score
    assert mdr.rate("bridge") < mdr.rate("comparison")
    # our full system beats MDR on bridge questions by a wide margin
    assert full.rate("bridge") > mdr.rate("bridge")


def test_table5_triple_fact_beats_dense_family(table5):
    """Triple-fact Retrieval beats every full-text dense/recursive system.

    PathRetriever is excluded from this comparison: on the synthetic
    corpus every gold bridge pair is hyperlinked by construction (links
    are generated from the same facts the questions query), so the
    hyperlink constraint acts as an oracle — whereas on real Wikipedia
    the missing-link failure mode the paper describes (Sec. V) caps it
    below the triple-fact model. See EXPERIMENTS.md.
    """
    full = table5["Triple-fact Retrieval"]
    for name in ("TPRR", "HopRetriever", "MDR"):
        other = table5[name]
        print(f"\nTriple-fact total {full.total:.3f} vs {name} {other.total:.3f}")
        assert full.total >= other.total - 0.02
