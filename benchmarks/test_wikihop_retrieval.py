"""Wikihop — the paper's second dataset (Sec. IV-A).

The paper evaluates Wikihop with the same retriever setting it uses for
HotpotQA (after adding gold-document supervision). We measure the trained
system's hop-1 PR@8 and path PEM@8 over (subject, relation, ?) queries.
Shape: hop-1 recall is high (the query names the subject entity); path
PEM sits well below hop-1 (the relation word must bridge to the value
document) but far above chance.
"""

from repro.eval.experiments import run_wikihop


def test_wikihop_retrieval(ctx, trained_system, benchmark):
    result = benchmark.pedantic(
        lambda: run_wikihop(ctx, n_queries=60), rounds=1, iterations=1
    )
    print(
        f"\nWikihop: n={int(result['n'])} "
        f"hop-1 PR@8={result['hop1_pr']:.3f} "
        f"path PEM@8={result['path_pem']:.3f}"
    )
    assert result["n"] > 0
    # the subject entity is named in the query: hop-1 must be strong
    assert result["hop1_pr"] >= 0.6
    # paths above the random-pair baseline (~2/N^2), far below hop-1
    assert result["path_pem"] > 0.02
    assert result["path_pem"] <= result["hop1_pr"]
