"""Multi-head self-attention (Vaswani et al.), batched.

Input: (batch, seq, dim) plus an attention mask (batch, seq) of 1/0.
Padding positions receive a large negative additive bias before softmax.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.precision import TRAINING_DTYPE

from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor

_NEG_INF = -1e9


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product multi-head self-attention."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        rng: Optional[np.random.RandomState] = None,
        dropout: float = 0.0,
    ):
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        rng = rng or np.random.RandomState(0)
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.output = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, S, D) -> (B, H, S, Dh)
        return x.reshape(batch, seq, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq)
        k = self._split_heads(self.key(x), batch, seq)
        v = self._split_heads(self.value(x), batch, seq)
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if mask is not None:
            # mask: (B, S) with 1 = attend, 0 = padding
            bias = (1.0 - np.asarray(mask, dtype=TRAINING_DTYPE)) * _NEG_INF
            scores = scores + Tensor(bias[:, None, None, :])
        attn = scores.softmax(axis=-1)
        attn = self.dropout(attn)
        context = attn @ v  # (B, H, S, Dh)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.output(merged)
