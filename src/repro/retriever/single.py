"""The explainable single retriever (paper Sec. III-B, Fig. 4).

Encodes every flattened triple fact of every document once, then answers
one-hop retrieval queries: encode the question, compute cosine scores
against all triple facts, aggregate per document with a score strategy,
return the top-k documents *with the matching triple* — the concrete,
explainable evidence the paper emphasizes.

Scoring is vectorized: :meth:`SingleRetriever.refresh_embeddings` stacks
all triples into one L2-normalized ``(total_triples, dim)`` matrix with
per-document offsets, so a query (or a whole batch of queries) is scored
with a single matmul and the per-document aggregation runs as
``reduceat`` segment reductions (:func:`repro.retriever.strategies.
aggregate_segments`). The original document-by-document loop survives as
:meth:`retrieve_by_vector_legacy` — the reference implementation the
parity tests compare against.

Embedding maintenance is **incremental**: every refresh remembers a
per-document row hash (the flattened triple texts) plus the encoder
fingerprint, and the next :meth:`SingleRetriever.refresh_embeddings`
re-encodes only documents whose rows or encoder changed — everything
else is reused verbatim. :meth:`SingleRetriever.attach_embeddings` seeds
that cache from a persisted :class:`repro.ingest.embedding_store.
EmbeddingStore`, so a warm start re-encodes nothing at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.encoder.minibert import MiniBertEncoder
from repro.ingest.embedding_store import EmbeddingStore
from repro.ingest.fingerprint import encoder_fingerprint, triples_fingerprint
from repro.oie.triple import Triple
from repro.perf import COUNTERS, time_block
from repro.precision import (
    Precision,
    PrecisionLike,
    cast_matrix,
    resolve,
)
from repro.retriever.store import TripleStore
from repro.retriever.strategies import (
    ONE_FACT,
    ScoreStrategy,
    aggregate_segments,
    cosine_matrix,
    l2_normalize_rows,
)
from repro.shard.merge import topk_doc_order
from repro.shard.plan import ShardPlan
from repro.shard.store import ShardedEmbeddingStore


@dataclass
class RetrievedDocument:
    """One retrieval result with its explanation."""

    doc_id: int
    title: str
    score: float
    matched_triple: Optional[Triple]  # the explaining triple (argmax)
    triple_scores: Optional[np.ndarray] = None

    def explain(self) -> str:
        """Human-readable justification of why this document matched."""
        if self.matched_triple is None:
            return f"{self.title}: no triple facts (score {self.score:.3f})"
        return (
            f"{self.title}: matched triple {self.matched_triple} "
            f"(score {self.score:.3f})"
        )


class SingleRetriever:
    """Dense triple-fact retrieval over a :class:`TripleStore`."""

    def __init__(
        self,
        encoder: MiniBertEncoder,
        store: TripleStore,
        strategy: Optional[ScoreStrategy] = None,
        precision: PrecisionLike = None,
    ):
        self.encoder = encoder
        self.store = store
        self.strategy = strategy or ScoreStrategy(ONE_FACT)
        # dtype policy of every matrix this retriever holds; inherited
        # from the encoder when not given so an exact-parity (float64)
        # encoder yields an exact-parity retriever without repetition
        # (duck-typed: stub encoders without a policy get the default)
        self.precision = (
            resolve(getattr(encoder, "precision", None))
            if precision is None
            else resolve(precision)
        )
        self._embeddings: Dict[int, np.ndarray] = {}
        self._stacked: Optional[np.ndarray] = None
        self._normed: Optional[np.ndarray] = None
        self._doc_order: List[int] = []
        self._doc_pos: Dict[int, int] = {}
        self._offsets: List[int] = []
        self._offsets_arr: Optional[np.ndarray] = None
        # dirty-row tracking: what each cached segment was computed from
        self._row_hashes: Dict[int, str] = {}
        self._encoder_fp: Optional[str] = None
        self._attached: Optional[EmbeddingStore] = None
        # sharded scoring: (n_shards, mode) spec + the built plan; the
        # plan is rebuilt lazily whenever the scoring matrices refresh
        self._shard_spec: Optional[tuple] = None
        self._shard_assignment: Optional[Dict[int, int]] = None
        self._shard_plan: Optional[ShardPlan] = None

    # -- embedding maintenance ------------------------------------------------
    def refresh_embeddings(
        self, batch_size: int = 128, force: bool = False
    ) -> int:
        """(Re-)encode the flattened triples of documents whose rows changed.

        Call after training the encoder or editing the store; retrieval
        uses these cached embeddings. Besides the per-document views this
        builds the flat normalized matrix + offsets that the single-matmul
        path scores.

        Incremental: a document's cached rows are reused verbatim when its
        triples hash (:func:`~repro.ingest.fingerprint.triples_fingerprint`)
        and the encoder fingerprint both match what the rows were computed
        under — whether cached by a previous refresh or seeded from a
        persisted store via :meth:`attach_embeddings`. All dirty documents
        are re-encoded in one encoder pass, so a full refresh stays
        bitwise-identical to the original always-recompute implementation.
        Returns the number of rows that were (re-)encoded; ``force=True``
        recomputes everything.
        """
        with time_block() as elapsed:
            current_fp = encoder_fingerprint(self.encoder)
            reuse_ok = not force and current_fp == self._encoder_fp
            dim = self.encoder.config.dim
            # (doc_id, n_rows, row_hash, cached-segment-or-None) per doc
            plan: List[tuple] = []
            dirty_texts: List[str] = []
            for doc_id in self.store.doc_ids():
                flattened = self.store.flattened(doc_id)
                row_hash = triples_fingerprint(flattened)
                cached = self._embeddings.get(doc_id) if reuse_ok else None
                if (
                    cached is not None
                    and self._row_hashes.get(doc_id) == row_hash
                    and cached.shape[0] == len(flattened)
                ):
                    plan.append((doc_id, len(flattened), row_hash, cached))
                else:
                    plan.append((doc_id, len(flattened), row_hash, None))
                    dirty_texts.extend(flattened)
            if dirty_texts:
                encoded = cast_matrix(
                    self.encoder.encode_numpy(
                        dirty_texts, batch_size=batch_size
                    ),
                    self.precision.dtype,
                )
                COUNTERS.record_encode(len(dirty_texts))
            else:
                encoded = np.zeros((0, dim), dtype=self.precision.dtype)
            attached = self._attached
            if (
                not dirty_texts
                and attached is not None
                and [int(d) for d in attached.doc_ids] == [p[0] for p in plan]
                and attached.matrix.shape[0] == sum(p[1] for p in plan)
            ):
                # clean warm start: score straight off the attached
                # (possibly memmapped) matrix, no per-segment reassembly
                matrix = np.asarray(attached.matrix)
            else:
                pieces: List[np.ndarray] = []
                cursor = 0
                for _, n_rows, _, cached in plan:
                    if cached is None:
                        pieces.append(encoded[cursor : cursor + n_rows])
                        cursor += n_rows
                    else:
                        pieces.append(np.asarray(cached))
                matrix = (
                    np.concatenate(pieces)
                    if pieces
                    else np.zeros((0, dim), dtype=self.precision.dtype)
                )
            self._embeddings = {}
            self._doc_order = []
            self._offsets = []
            self._row_hashes = {}
            start = 0
            for doc_id, n_rows, row_hash, _ in plan:
                self._embeddings[doc_id] = matrix[start : start + n_rows]
                self._doc_order.append(doc_id)
                self._offsets.append(start)
                self._row_hashes[doc_id] = row_hash
                start += n_rows
            self._stacked = matrix
            self._normed = l2_normalize_rows(matrix)
            self._doc_pos = {d: i for i, d in enumerate(self._doc_order)}
            self._offsets_arr = np.asarray(self._offsets, dtype=np.int64)
            self._encoder_fp = current_fp
            if self._shard_spec is not None:
                self._rebuild_shard_plan()
        COUNTERS.record_embed_refresh(
            n_encoded=len(dirty_texts),
            n_reused=start - len(dirty_texts),
            seconds=elapsed(),
        )
        return len(dirty_texts)

    def attach_embeddings(self, embeddings: EmbeddingStore) -> int:
        """Seed the embedding cache from a persisted :class:`EmbeddingStore`.

        Adopts the store's per-document segments, row hashes and encoder
        fingerprint so the next :meth:`refresh_embeddings` re-encodes only
        documents whose rows (or the encoder) changed since the store was
        written — zero on a clean warm start. Returns the number of rows
        adopted; a store with the wrong embedding dimension or an
        inconsistent layout is rejected (returns 0, cache left empty).
        """
        self.detach_embeddings()
        matrix = embeddings.matrix
        if matrix.ndim != 2 or matrix.shape[1] != self.encoder.config.dim:
            return 0
        if np.dtype(matrix.dtype) != self.precision.dtype:
            # a store persisted under another precision policy (e.g. a
            # legacy float64 store on a float32 retriever) must not leak
            # its dtype into scoring — reject and let refresh re-encode
            return 0
        if len(embeddings.doc_ids) != len(embeddings.offsets):
            return 0
        total = int(matrix.shape[0])
        for index, doc_id in enumerate(embeddings.doc_ids):
            segment_start = embeddings.offsets[index]
            segment_stop = (
                embeddings.offsets[index + 1]
                if index + 1 < len(embeddings.offsets)
                else total
            )
            if not 0 <= segment_start <= segment_stop <= total:
                self.detach_embeddings()
                return 0
            self._embeddings[int(doc_id)] = matrix[segment_start:segment_stop]
        self._row_hashes = {
            int(d): str(h) for d, h in embeddings.row_hashes.items()
        }
        self._encoder_fp = embeddings.encoder_fingerprint
        self._attached = embeddings
        return total

    @property
    def store_generation(self) -> Optional[int]:
        """Publish generation of the attached store (None when cold-built).

        Networked serving tags every response with the generation its
        worker scored against, so clients can prove a single answer never
        mixes store generations across a hot swap.
        """
        attached = self._attached
        if attached is None:
            return None
        return int(getattr(attached, "generation", 0))

    def detach_embeddings(self) -> None:
        """Drop every cached embedding and all dirty-tracking state."""
        self._embeddings = {}
        self._stacked = None
        self._normed = None
        self._doc_order = []
        self._doc_pos = {}
        self._offsets = []
        self._offsets_arr = None
        self._row_hashes = {}
        self._encoder_fp = None
        self._attached = None
        self._shard_plan = None

    def export_embeddings(
        self, construction_fingerprint: str = ""
    ) -> EmbeddingStore:
        """Snapshot the current stacked matrix as a persistable store."""
        self._ensure_fresh()
        return EmbeddingStore(
            matrix=np.ascontiguousarray(
                self._stacked, dtype=self.precision.dtype
            ),
            doc_ids=[int(d) for d in self._doc_order],
            offsets=[int(o) for o in self._offsets],
            row_hashes=dict(self._row_hashes),
            encoder_fingerprint=(
                self._encoder_fp or encoder_fingerprint(self.encoder)
            ),
            construction_fingerprint=construction_fingerprint,
        )

    def ensure_ready(self) -> None:
        """Build (or finish warm-starting) the scoring matrices if needed."""
        self._ensure_fresh()

    def _ensure_fresh(self) -> None:
        if self._stacked is None:
            self.refresh_embeddings()

    # -- sharded scoring ------------------------------------------------------
    @property
    def shard_plan(self) -> Optional[ShardPlan]:
        """The active :class:`ShardPlan`, or None when unsharded."""
        return self._shard_plan

    def build_shards(
        self, n_shards: int, mode: str = "range", quantize: bool = False
    ) -> ShardPlan:
        """Split the scoring matrix into ``n_shards`` with centroid pruning.

        Subsequent :meth:`retrieve_batch` calls route through the plan
        (per-shard matmuls + exact global merge) and accept ``nprobe``.
        The plan is rebuilt automatically on every embedding refresh.
        ``quantize`` (implied when the retriever's precision policy is
        int8-rescore) derives the int8 shard copies that quantized
        requests score coarsely.
        """
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        quantize = bool(quantize) or self.precision.quantized
        self._shard_spec = (int(n_shards), mode, quantize)
        self._shard_assignment = None
        self._shard_plan = None
        self._ensure_fresh()
        if self._shard_plan is None:  # matrices were already fresh
            self._rebuild_shard_plan()
        return self._shard_plan

    def attach_sharded(self, sharded: ShardedEmbeddingStore) -> int:
        """Warm-start from a persisted :class:`ShardedEmbeddingStore`.

        Attaches the combined (ascending-doc-id) view for the incremental
        cache, then pins the persisted document-to-shard assignment so the
        rebuilt plan groups documents exactly as the saved shards do.
        Returns the number of rows adopted (0 on rejection, like
        :meth:`attach_embeddings`).
        """
        total = self.attach_embeddings(sharded.combined())
        if total or sharded.total_rows == 0:
            self._shard_spec = (
                sharded.n_shards,
                sharded.mode,
                sharded.quantized or self.precision.quantized,
            )
            self._shard_assignment = sharded.assignment()
            self._shard_plan = None
        return total

    def detach_shards(self) -> None:
        """Return to unsharded scoring (embedding cache is untouched)."""
        self._shard_spec = None
        self._shard_assignment = None
        self._shard_plan = None

    def _rebuild_shard_plan(self) -> None:
        n_shards, mode, quantize = self._shard_spec
        self._shard_plan = ShardPlan.build(
            self._normed,
            self._doc_order,
            self._offsets,
            n_shards,
            mode=mode,
            assignment=self._shard_assignment,
            quantize=quantize,
        )
        self._shard_assignment = self._shard_plan.assignment

    def doc_embeddings(self, doc_id: int) -> np.ndarray:
        """The cached triple embedding matrix of one document."""
        self._ensure_fresh()
        return self._embeddings.get(
            doc_id,
            np.zeros(
                (0, self.encoder.config.dim), dtype=self.precision.dtype
            ),
        )

    # -- retrieval ----------------------------------------------------------
    def encode_question(self, question: str) -> np.ndarray:
        """The question's [CLS] embedding as a numpy vector."""
        COUNTERS.record_encode(1)
        return cast_matrix(
            self.encoder.encode_numpy([question])[0], self.precision.dtype
        )

    def encode_questions(self, questions: Sequence[str]) -> np.ndarray:
        """Batch of question embeddings, one encoder pass."""
        if not questions:
            return np.zeros(
                (0, self.encoder.config.dim), dtype=self.precision.dtype
            )
        COUNTERS.record_encode(len(questions))
        return cast_matrix(
            self.encoder.encode_numpy(list(questions)), self.precision.dtype
        )

    def triple_scores(self, query_vec: np.ndarray, doc_id: int) -> np.ndarray:
        """Cosine of one query against one document's triples (fast path)."""
        self._ensure_fresh()
        position = self._doc_pos.get(doc_id)
        if position is None:
            return np.zeros(0)
        start = self._offsets[position]
        stop = (
            self._offsets[position + 1]
            if position + 1 < len(self._offsets)
            else self._normed.shape[0]
        )
        query_vec = cast_matrix(query_vec, self.precision.dtype)
        norm = np.linalg.norm(query_vec)
        if norm:
            query_vec = query_vec / norm
        return self._normed[start:stop] @ query_vec

    def retrieve(
        self,
        question: str,
        k: int = 10,
        strategy: Optional[ScoreStrategy] = None,
        candidate_ids: Optional[Sequence[int]] = None,
        keep_triple_scores: bool = False,
        nprobe: Optional[int] = None,
        precision: PrecisionLike = None,
    ) -> List[RetrievedDocument]:
        """Top-k documents for ``question`` with matched-triple explanations.

        ``candidate_ids`` restricts scoring to a subset (used by rerankers
        and by the multi-hop pipeline's second hop). ``nprobe`` limits
        sharded scoring to that many closest shards (requires
        :meth:`build_shards` / :meth:`attach_sharded`; None = no pruning).
        ``precision`` overrides the retriever's policy per request — see
        :meth:`retrieve_batch`.
        """
        self._ensure_fresh()
        strategy = strategy or self.strategy
        query_vec = self.encode_question(question)
        return self.retrieve_by_vector(
            query_vec,
            k=k,
            strategy=strategy,
            candidate_ids=candidate_ids,
            keep_triple_scores=keep_triple_scores,
            nprobe=nprobe,
            precision=precision,
        )

    def retrieve_by_vector(
        self,
        query_vec: np.ndarray,
        k: int = 10,
        strategy: Optional[ScoreStrategy] = None,
        candidate_ids: Optional[Sequence[int]] = None,
        keep_triple_scores: bool = False,
        nprobe: Optional[int] = None,
        precision: PrecisionLike = None,
    ) -> List[RetrievedDocument]:
        """Same as :meth:`retrieve` for an already-encoded question."""
        return self.retrieve_batch(
            np.asarray(query_vec)[None, :],
            k=k,
            strategy=strategy,
            candidate_ids=candidate_ids,
            keep_triple_scores=keep_triple_scores,
            nprobe=nprobe,
            precision=precision,
        )[0]

    def retrieve_many(
        self,
        questions: Sequence[str],
        k: int = 10,
        strategy: Optional[ScoreStrategy] = None,
        candidate_ids: Optional[Sequence[int]] = None,
        keep_triple_scores: bool = False,
        nprobe: Optional[int] = None,
        precision: PrecisionLike = None,
    ) -> List[List[RetrievedDocument]]:
        """Top-k documents for a batch of question *texts*.

        The bulk text entry point shared by ``repro query --batch`` and
        the serving layer's micro-batcher: one encoder pass over all
        questions (:meth:`encode_questions`), then one
        :meth:`retrieve_batch` matmul.
        """
        if not questions:
            return []
        return self.retrieve_batch(
            self.encode_questions(questions),
            k=k,
            strategy=strategy,
            candidate_ids=candidate_ids,
            keep_triple_scores=keep_triple_scores,
            nprobe=nprobe,
            precision=precision,
        )

    def retrieve_batch(
        self,
        query_matrix: np.ndarray,
        k: int = 10,
        strategy: Optional[ScoreStrategy] = None,
        candidate_ids: Optional[Sequence[int]] = None,
        keep_triple_scores: bool = False,
        nprobe: Optional[int] = None,
        precision: PrecisionLike = None,
    ) -> List[List[RetrievedDocument]]:
        """Top-k documents for every row of ``query_matrix`` at once.

        All queries are scored against all triples with one ``Q×T`` matmul;
        per-document aggregation runs as segment reductions. Returns one
        result list per query row, each identical to what
        :meth:`retrieve_by_vector` returns for that row.

        With an active shard plan and no ``candidate_ids``, scoring runs
        per shard: ``nprobe`` prunes to that many centroid-closest shards
        (None or ``>= n_shards`` probes everything, which is provably
        identical to the unsharded path). ``candidate_ids`` always scores
        exactly, so ``nprobe`` is ignored there.

        ``precision`` overrides the retriever policy per request. A float
        request must match the dtype the matrices are held in — a
        mixed-precision retriever never silently serves an exact-mode
        request. ``int8-rescore`` requests need an active shard plan
        (whose int8 copy is derived on first use); with ``candidate_ids``
        they fall back to exact scoring of the (already tiny) candidate
        set.
        """
        self._ensure_fresh()
        strategy = strategy or self.strategy
        requested = (
            self.precision if precision is None else resolve(precision)
        )
        if not requested.quantized and (
            requested.dtype != self.precision.dtype
        ):
            raise ValueError(
                f"retriever holds {self.precision.dtype.name} matrices; "
                f"cannot serve a {requested.mode} request exactly"
            )
        queries = np.atleast_2d(
            cast_matrix(query_matrix, self.precision.dtype)
        )
        if nprobe is not None and self._shard_plan is None:
            raise ValueError(
                "nprobe requires an active shard plan; call "
                "build_shards() or attach_sharded() first"
            )
        if requested.quantized and candidate_ids is None:
            if self._shard_plan is None:
                raise ValueError(
                    "int8-rescore requires an active shard plan; call "
                    "build_shards() or attach_sharded() first"
                )
        if self._shard_plan is not None and candidate_ids is None:
            return self._retrieve_batch_sharded(
                queries, k, strategy, nprobe, keep_triple_scores, requested
            )
        doc_ids, offsets, gather = self._candidate_layout(candidate_ids)
        if queries.shape[0] == 0 or doc_ids.size == 0 or k <= 0:
            return [[] for _ in range(queries.shape[0])]
        queries_normed = l2_normalize_rows(queries)
        with time_block() as elapsed:
            triple_matrix = (
                self._normed if gather is None else self._normed[gather]
            )
            # the single matmul: every query against every candidate triple
            score_matrix = queries_normed @ triple_matrix.T
        COUNTERS.record_scoring(
            n_queries=queries.shape[0],
            n_docs=doc_ids.size,
            n_triples=triple_matrix.shape[0],
            seconds=elapsed(),
        )
        return [
            self._rank_documents(
                row, doc_ids, offsets, strategy, k, keep_triple_scores
            )
            for row in score_matrix
        ]

    def _retrieve_batch_sharded(
        self,
        queries: np.ndarray,
        k: int,
        strategy: ScoreStrategy,
        nprobe: Optional[int],
        keep_triple_scores: bool,
        precision: Precision,
    ) -> List[List[RetrievedDocument]]:
        """Shard-routed scoring: probe, per-shard matmuls, global merge."""
        plan = self._shard_plan
        n_queries = queries.shape[0]
        if n_queries == 0 or plan.total_docs == 0 or k <= 0:
            return [[] for _ in range(n_queries)]
        queries_normed = l2_normalize_rows(queries)
        with time_block() as elapsed:
            if precision.quantized:
                if not plan.quantized:
                    # deterministic and cheap relative to plan builds, so
                    # a first quantized request may derive the int8 copy
                    plan.quantize()
                scored = plan.search_quantized(
                    queries_normed,
                    strategy,
                    max(int(precision.rescore_width), int(k)),
                    nprobe,
                )
            else:
                scored = plan.search(queries_normed, strategy, nprobe)
        COUNTERS.record_scoring(
            n_queries=n_queries,
            n_docs=max(
                (int(q.doc_ids.shape[0]) for q in scored), default=0
            ),
            n_triples=max((q.n_triples for q in scored), default=0),
            seconds=elapsed(),
        )
        out: List[List[RetrievedDocument]] = []
        for query_scores in scored:
            order = topk_doc_order(
                query_scores.scores, query_scores.doc_ids, k
            )
            results: List[RetrievedDocument] = []
            for position in order:
                position = int(position)
                doc_id = int(query_scores.doc_ids[position])
                local = int(query_scores.matched[position])
                triples = self.store.triples(doc_id)
                matched_triple = (
                    triples[local] if 0 <= local < len(triples) else None
                )
                results.append(
                    RetrievedDocument(
                        doc_id=doc_id,
                        title=self.store.corpus[doc_id].title,
                        score=float(query_scores.scores[position]),
                        matched_triple=matched_triple,
                        triple_scores=(
                            query_scores.triple_scores(position)
                            if keep_triple_scores
                            else None
                        ),
                    )
                )
            out.append(results)
        return out

    # -- vectorized internals ------------------------------------------------
    def _candidate_layout(self, candidate_ids: Optional[Sequence[int]]):
        """(doc_ids, offsets, gather) describing the scored triple layout.

        Without candidates this is the full stacked matrix (``gather`` is
        None). With candidates, ids are de-duplicated order-preserving and
        validated against the corpus; ``gather`` indexes the stacked matrix
        rows belonging to the candidates, ``offsets`` are segment starts in
        that gathered layout. Candidates without triples become empty
        segments (score ``EMPTY_SCORE``, no explanation), matching the
        legacy loop.
        """
        if candidate_ids is None:
            return (
                np.asarray(self._doc_order, dtype=np.int64),
                self._offsets_arr,
                None,
            )
        n_corpus = len(self.store.corpus)
        unique: List[int] = []
        seen = set()
        for doc_id in candidate_ids:
            doc_id = int(doc_id)
            if doc_id in seen:
                continue
            if not 0 <= doc_id < n_corpus:
                raise KeyError(
                    f"candidate doc_id {doc_id} not in corpus "
                    f"(valid range 0..{n_corpus - 1})"
                )
            seen.add(doc_id)
            unique.append(doc_id)
        total = self._normed.shape[0]
        pieces: List[np.ndarray] = []
        offsets = np.zeros(len(unique), dtype=np.int64)
        cursor = 0
        for i, doc_id in enumerate(unique):
            offsets[i] = cursor
            position = self._doc_pos.get(doc_id)
            if position is None:
                continue  # corpus doc without triples: empty segment
            start = self._offsets[position]
            stop = (
                self._offsets[position + 1]
                if position + 1 < len(self._offsets)
                else total
            )
            pieces.append(np.arange(start, stop, dtype=np.int64))
            cursor += stop - start
        gather = (
            np.concatenate(pieces)
            if pieces
            else np.zeros(0, dtype=np.int64)
        )
        return np.asarray(unique, dtype=np.int64), offsets, gather

    def _rank_documents(
        self,
        flat_scores: np.ndarray,
        doc_ids: np.ndarray,
        offsets: np.ndarray,
        strategy: ScoreStrategy,
        k: int,
        keep_triple_scores: bool,
    ) -> List[RetrievedDocument]:
        """Aggregate one query's flat triple scores and pick top-k docs."""
        aggregated, matched = aggregate_segments(
            flat_scores, offsets, strategy
        )
        # deterministic (score desc, doc id asc) top-k; shared with the
        # sharded merge so both paths rank byte-identically
        order = topk_doc_order(aggregated, doc_ids, k)
        total = flat_scores.shape[0]
        results: List[RetrievedDocument] = []
        for position in order:
            position = int(position)
            doc_id = int(doc_ids[position])
            local = int(matched[position])
            triples = self.store.triples(doc_id)
            matched_triple = (
                triples[local] if 0 <= local < len(triples) else None
            )
            triple_scores = None
            if keep_triple_scores:
                start = int(offsets[position])
                stop = (
                    int(offsets[position + 1])
                    if position + 1 < offsets.shape[0]
                    else total
                )
                triple_scores = flat_scores[start:stop].copy()
            results.append(
                RetrievedDocument(
                    doc_id=doc_id,
                    title=self.store.corpus[doc_id].title,
                    score=float(aggregated[position]),
                    matched_triple=matched_triple,
                    triple_scores=triple_scores,
                )
            )
        return results

    # -- reference implementation -------------------------------------------
    def retrieve_by_vector_legacy(
        self,
        query_vec: np.ndarray,
        k: int = 10,
        strategy: Optional[ScoreStrategy] = None,
        candidate_ids: Optional[Sequence[int]] = None,
        keep_triple_scores: bool = False,
    ) -> List[RetrievedDocument]:
        """Document-by-document reference scorer.

        Kept for the parity tests that pin the vectorized path to the
        original semantics; O(corpus) Python-level iterations — do not use
        on hot paths.
        """
        self._ensure_fresh()
        strategy = strategy or self.strategy
        if candidate_ids is not None:
            doc_ids = list(dict.fromkeys(int(d) for d in candidate_ids))
            n_corpus = len(self.store.corpus)
            for doc_id in doc_ids:
                if not 0 <= doc_id < n_corpus:
                    raise KeyError(
                        f"candidate doc_id {doc_id} not in corpus "
                        f"(valid range 0..{n_corpus - 1})"
                    )
        else:
            doc_ids = self._doc_order
        results: List[RetrievedDocument] = []
        for doc_id in doc_ids:
            matrix = self.doc_embeddings(doc_id)
            scores = cosine_matrix(query_vec, matrix)
            aggregated = strategy.aggregate(scores)
            matched_index = strategy.matched_index(scores)
            triples = self.store.triples(doc_id)
            matched = (
                triples[matched_index]
                if 0 <= matched_index < len(triples)
                else None
            )
            results.append(
                RetrievedDocument(
                    doc_id=doc_id,
                    title=self.store.corpus[doc_id].title,
                    score=aggregated,
                    matched_triple=matched,
                    triple_scores=scores if keep_triple_scores else None,
                )
            )
        results.sort(key=lambda r: (-r.score, r.doc_id))
        return results[: max(k, 0)]
