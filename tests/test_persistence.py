"""Round-trip tests for triple-store and full-system persistence."""

import numpy as np
import pytest

from repro.encoder.minibert import EncoderConfig
from repro.pipeline.framework import FrameworkConfig, TripleFactRetrieval
from repro.pipeline.multihop import MultiHopConfig
from repro.pipeline.path_ranker import PathRankerConfig
from repro.retriever.store import TripleStore
from repro.retriever.trainer import TrainerConfig
from repro.updater.updater import UpdaterConfig


class TestStorePersistence:
    def test_roundtrip(self, store, corpus, tmp_path):
        path = tmp_path / "store.json"
        store.save(path)
        loaded = TripleStore.load(path, corpus)
        assert len(loaded) == len(store)
        for doc_id in store.doc_ids():
            original = [t.flatten() for t in store.triples(doc_id)]
            restored = [t.flatten() for t in loaded.triples(doc_id)]
            assert original == restored

    def test_fusion_triples_survive(self, store, corpus, tmp_path):
        path = tmp_path / "store.json"
        store.save(path)
        loaded = TripleStore.load(path, corpus)
        fusions = [
            t
            for doc_id in loaded.doc_ids()
            for t in loaded.triples(doc_id)
            if t.is_fusion
        ]
        original_fusions = [
            t
            for doc_id in store.doc_ids()
            for t in store.triples(doc_id)
            if t.is_fusion
        ]
        assert len(fusions) == len(original_fusions)


class TestSystemPersistence:
    @pytest.fixture(scope="class")
    def trained(self, corpus, hotpot):
        config = FrameworkConfig(
            encoder=EncoderConfig(dim=20, n_layers=1, n_heads=2, max_len=28),
            retriever=TrainerConfig(epochs=1, lr=2e-4),
            updater=UpdaterConfig(epochs=1),
            ranker=PathRankerConfig(epochs=1),
            multihop=MultiHopConfig(k_hop1=3, k_hop2=2, k_paths=4),
            max_train_questions=15,
            max_ranker_questions=6,
        )
        return TripleFactRetrieval(config).fit(corpus, hotpot), config

    def test_save_load_same_retrieval(self, trained, corpus, hotpot, tmp_path):
        system, config = trained
        system.save(tmp_path / "model")
        restored = TripleFactRetrieval.load(
            tmp_path / "model", corpus, config=config
        )
        question = hotpot.test[0].text
        original = [r.doc_id for r in system.retrieve_documents(question, k=5)]
        loaded = [r.doc_id for r in restored.retrieve_documents(question, k=5)]
        assert original == loaded

    def test_save_load_same_paths(self, trained, corpus, hotpot, tmp_path):
        system, config = trained
        system.save(tmp_path / "model2")
        restored = TripleFactRetrieval.load(
            tmp_path / "model2", corpus, config=config
        )
        question = hotpot.test[1].text
        original = [p.doc_ids for p in system.retrieve_paths(question, k=4)]
        loaded = [p.doc_ids for p in restored.retrieve_paths(question, k=4)]
        assert original == loaded

    def test_unfit_save_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            TripleFactRetrieval().save(tmp_path / "nope")
