"""Analyzer framework: findings, rule registry, suppressions, driver.

The moving parts:

* :class:`Finding` — one (rule, path, line, message) diagnostic.
* :class:`Rule` — base class; subclasses declare ``id``/``description``,
  optionally narrow their scope with :meth:`Rule.applies_to`, and yield
  findings from :meth:`Rule.check`. Registration via :func:`register`.
* suppression comments — ``# lint: ignore[rule-a, rule-b]`` silences the
  named rules on that line; bare ``# lint: ignore`` silences every rule.

The driver itself — :func:`repro.analysis.engine.run_lint` — lives in
:mod:`repro.analysis.engine`: it runs phase 1 (per-file parsing,
file-local rules, module summaries, optionally cached and parallel) and
phase 2 (project rules over the assembled model).

A file that fails to parse produces a single ``parse-error`` finding
instead of crashing the run, so the gate also catches syntax rot.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

from repro.analysis.config import LintConfig

PARSE_ERROR = "parse-error"

#: Version of the rule set + per-file summary format. Bump whenever a
#: rule's behavior or the ModuleSummary wire format changes, so stale
#: ``.repro-lint-cache`` entries computed under old semantics miss.
RULESET_VERSION = 5

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([^\]]*)\])?")


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class FileContext:
    """Everything a rule needs to know about one file."""

    path: Path
    rel_path: str  # posix, relative to the lint root when resolvable
    source: str
    tree: ast.AST

    @property
    def dir_parts(self) -> Set[str]:
        """Directory names along the (relative) path, for scoped rules."""
        return set(Path(self.rel_path).parts[:-1])

    @property
    def is_test_file(self) -> bool:
        name = Path(self.rel_path).name
        return name.startswith("test_") or name == "conftest.py"


class Rule:
    """Base class for one analysis rule."""

    id: str = ""
    description: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (default: every file)."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.id,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


#: rule-id -> rule class, populated by :func:`register`.
REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rule_ids() -> List[str]:
    return sorted(REGISTRY)


def _resolve_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> List[Rule]:
    """Instantiate the rules a run should execute."""
    known = set(REGISTRY)
    for name, ids in (("--select", select), ("--ignore", ignore)):
        unknown = set(ids or ()) - known - {PARSE_ERROR}
        if unknown:
            raise ValueError(
                f"unknown rule id(s) for {name}: {', '.join(sorted(unknown))}"
                f" (known: {', '.join(sorted(known))})"
            )
    chosen = set(select) if select else known
    chosen -= set(ignore or ())
    return [REGISTRY[rule_id]() for rule_id in sorted(chosen)]


def suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """line -> rule ids suppressed there (``{"*"}`` means all rules)."""
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            ids = match.group(1)
            if ids is None:
                out.setdefault(token.start[0], set()).add("*")
            else:
                out.setdefault(token.start[0], set()).update(
                    part.strip() for part in ids.split(",") if part.strip()
                )
    except tokenize.TokenError:
        pass  # lint: ignore[except-pass] -- ast.parse reports the real error
    return out


def _is_suppressed(finding: Finding, suppressions: Dict[int, Set[str]]) -> bool:
    ids = suppressions.get(finding.line)
    return bool(ids) and ("*" in ids or finding.rule_id in ids)


def _is_allowed(finding: Finding, config: LintConfig) -> bool:
    """Per-rule ``allow`` path patterns from the config exempt a file."""
    patterns = config.allow.get(finding.rule_id, ())
    return any(
        fnmatch(finding.path, pattern) or fnmatch(Path(finding.path).name, pattern)
        for pattern in patterns
    )


def _relativize(path: Path, root: Optional[Path]) -> str:
    resolved = path.resolve()
    for base in (root, Path.cwd()):
        if base is None:
            continue
        try:
            return resolved.relative_to(Path(base).resolve()).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def lint_file(
    path: Path, rules: Sequence[Rule], config: Optional[LintConfig] = None
) -> List[Finding]:
    """All (unsuppressed, unallowed) findings for one file."""
    config = config if config is not None else LintConfig()
    path = Path(path)
    rel_path = _relativize(path, config.root)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return [Finding(PARSE_ERROR, rel_path, 1, 0, f"unreadable file: {error}")]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [
            Finding(
                PARSE_ERROR,
                rel_path,
                error.lineno or 1,
                (error.offset or 1) - 1,
                f"syntax error: {error.msg}",
            )
        ]
    ctx = FileContext(path=path, rel_path=rel_path, source=source, tree=tree)
    suppressions = suppressed_lines(source)
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if _is_suppressed(finding, suppressions):
                continue
            if _is_allowed(finding, config):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" in candidate.parts:
                    continue
                yield candidate
        elif path.suffix == ".py":
            yield path


@dataclass
class LintReport:
    """The outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    files_cached: int = 0  # phase-1 results served from the result cache

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule_id] = out.get(finding.rule_id, 0) + 1
        return out
