"""Token-based retrieval baselines: TF-IDF and BM25 over any field.

These are the "conventional word-based techniques" of Table II — both the
full-text field ("Text matching") and the triple-fact field ("TFS
matching") run through this class; only the indexed field differs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.data.corpus import Corpus
from repro.index.bm25 import BM25Scorer
from repro.index.inverted import InvertedIndex, SearchHit
from repro.index.tfidf import TfidfScorer
from repro.retriever.store import TripleStore


class LexicalRetriever:
    """BM25 / TF-IDF retrieval over a corpus with named fields.

    Fields available after construction:

    * ``"text"`` — the full document body,
    * ``"triples"`` — the constructed triple-fact set ``T_d`` (if a store
      is supplied),
    * any extra fields passed via ``extra_fields``.
    """

    def __init__(
        self,
        corpus: Corpus,
        store: Optional[TripleStore] = None,
        scorer: str = "bm25",
        extra_fields: Optional[dict] = None,
    ):
        self.corpus = corpus
        self.store = store
        self.scorer_name = scorer
        self.index = InvertedIndex(
            scorer=BM25Scorer() if scorer == "bm25" else TfidfScorer()
        )
        for document in corpus:
            fields = {"text": document.text}
            if store is not None:
                fields["triples"] = store.field_text(document.doc_id)
            if extra_fields:
                for name, mapping in extra_fields.items():
                    fields[name] = mapping.get(document.doc_id, "")
            self.index.add_document(document.doc_id, fields)

    def retrieve(
        self, question: str, k: int = 10, field: str = "text"
    ) -> List[SearchHit]:
        """Top-k hits for ``question`` on one field."""
        return self.index.search(question, field=field, k=k)

    def retrieve_titles(
        self, question: str, k: int = 10, field: str = "text"
    ) -> List[str]:
        """Top-k document titles (convenience for metric computation)."""
        return [
            self.corpus[hit.doc_id].title
            for hit in self.retrieve(question, k=k, field=field)
        ]
