"""Triple-fact knowledge graph (the paper's stated future work).

"We plan to explore the graph structure of the triple facts for document
retrieval" (Sec. VI). This subpackage builds that structure: a networkx
graph over the corpus's constructed triple facts, with entities as nodes
and triples as provenance-carrying edges, plus graph-assisted retrieval —
candidate expansion along triple edges and connectivity-based path
reranking.
"""

from repro.graph.builder import TripleGraph, build_triple_graph
from repro.graph.retrieval import GraphAssistedReranker, graph_expand_candidates

__all__ = [
    "TripleGraph",
    "build_triple_graph",
    "GraphAssistedReranker",
    "graph_expand_candidates",
]
