"""Crash-safe artifact persistence primitives."""

from repro.storage.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_npz,
    atomic_write_text,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_npz",
    "atomic_write_text",
]
