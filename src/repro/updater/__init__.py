"""The triple-fact question updater (paper Sec. III-C, Fig. 5).

After hop *i*, one triple fact of the retrieved document is selected as
the *updater-clue* and appended to the question (with de-duplication) to
form the next-hop query — an O(|T_d|) search instead of the O(2^a)
token-span space.

* :mod:`repro.updater.golden` — GoldEn-style heuristic ground data
  (the paper trains its updater on GoldEn's query-generator supervision),
* :mod:`repro.updater.question` — updated-question composition,
* :mod:`repro.updater.updater` — the learned clue selector.
"""

from repro.updater.golden import (
    ground_clue_index,
    ground_updated_question,
    golden_expansion_terms,
)
from repro.updater.question import compose_updated_question
from repro.updater.updater import QuestionUpdater, UpdaterConfig, UpdaterTrainer

__all__ = [
    "ground_clue_index",
    "ground_updated_question",
    "golden_expansion_terms",
    "compose_updated_question",
    "QuestionUpdater",
    "UpdaterConfig",
    "UpdaterTrainer",
]
