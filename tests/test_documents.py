"""Unit tests for document building."""

from repro.data.documents import build_corpus, build_document


class TestBuildCorpus:
    def test_one_document_per_entity(self, world, corpus):
        assert len(corpus) == len(world.entities)

    def test_titles_are_entity_names(self, corpus):
        for document in corpus:
            assert document.title == document.entity.name

    def test_text_starts_with_title_entity(self, corpus):
        for document in corpus:
            assert document.text.startswith(document.entity.name.split()[0])

    def test_links_point_to_real_documents(self, corpus):
        titles = set(corpus.titles())
        for document in corpus:
            for link in document.links:
                assert link in titles

    def test_facts_recorded(self, world, corpus):
        for document in corpus:
            world_facts = world.facts_of(document.entity)
            assert len(document.facts) == len(world_facts)

    def test_deterministic(self, world):
        a = build_corpus(world)
        b = build_corpus(world)
        assert [d.text for d in a] == [d.text for d in b]

    def test_distractors_present(self, world, rng):
        document = build_document(world.entities[0], world, 0, rng, n_distractors=3)
        # intro + facts + 3 distractors => text has more sentences than facts
        assert document.text.count(".") >= 3

    def test_fact_values_verbalized(self, world, corpus):
        # each entity-valued fact's object must appear in the text
        for document in list(corpus)[:20]:
            for fact in document.facts:
                if fact.relation in ("occupation", "birth_year"):
                    continue
                assert fact.value_text in document.text
