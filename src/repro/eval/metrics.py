"""Retrieval metrics (paper Sec. IV-A).

* **Paragraph Recall (PR)** — one-hop: at least one ground-truth document
  appears among the retrieved documents.
* **Paragraph Exact Match (PEM)** — path-level: *all* ground-truth
  documents appear among the retrieved documents.
* **path_exact_match** — the Table V variant: some retrieved *path*
  covers the full ground-truth document set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set


def paragraph_recall(retrieved: Iterable[str], gold: Iterable[str]) -> bool:
    """PR for one question: any gold document retrieved."""
    retrieved_set = set(retrieved)
    return any(g in retrieved_set for g in gold)


def paragraph_exact_match(retrieved: Iterable[str], gold: Iterable[str]) -> bool:
    """PEM for one question: every gold document retrieved."""
    retrieved_set = set(retrieved)
    return all(g in retrieved_set for g in gold)


def path_exact_match(
    paths: Sequence[Iterable[str]], gold: Iterable[str]
) -> bool:
    """Table V PEM: some candidate path covers the gold document set."""
    gold_set = set(gold)
    return any(gold_set <= set(path) for path in paths)


@dataclass
class RetrievalScorecard:
    """Accumulates per-question booleans, split by question type.

    Produces the bridge / comparison / total breakdown every table in the
    paper reports.
    """

    hits: Dict[str, List[bool]] = field(default_factory=dict)

    def add(self, qtype: str, hit: bool) -> None:
        self.hits.setdefault(qtype, []).append(bool(hit))

    def rate(self, qtype: str) -> float:
        """Hit rate for one question type (0.0 when empty)."""
        values = self.hits.get(qtype, [])
        return sum(values) / len(values) if values else 0.0

    @property
    def total(self) -> float:
        """Hit rate over all question types pooled."""
        values = [v for series in self.hits.values() for v in series]
        return sum(values) / len(values) if values else 0.0

    def count(self, qtype: str) -> int:
        return len(self.hits.get(qtype, []))

    def as_row(self) -> Dict[str, float]:
        """{'bridge': ..., 'comparison': ..., 'total': ...} percentages."""
        row = {qtype: self.rate(qtype) for qtype in sorted(self.hits)}
        row["total"] = self.total
        return row
