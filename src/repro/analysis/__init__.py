"""Project-specific static analysis (``repro lint``).

A two-phase analysis pass over Python ``ast`` that encodes the bug
classes this repo has actually been bitten by. Phase 1 runs file-local
rules (falsy-zero ``or`` defaults, uncounted encoder calls,
un-normalized cosine matmuls, …) and summarizes each module; phase 2
runs project-wide rules (lock discipline, lock-order cycles, import
layering, dead symbols) over the assembled project model. Phase 1 is
incremental (per-file result cache under ``.repro-lint-cache/``) and
parallel (``repro lint --jobs N``), with reports byte-identical to a
sequential cold run. The tier-1 gate (``tests/test_lint_clean.py``)
keeps the tree clean on every PR; the rule catalog lives in
:mod:`repro.analysis.rules`, :mod:`repro.analysis.project_rules` and
``DESIGN.md``.

No third-party linters are available in this environment, so the pass is
built on the stdlib ``ast`` / ``tokenize`` modules only.
"""

from repro.analysis.config import LintConfig, load_config
from repro.analysis.core import (
    RULESET_VERSION,
    FileContext,
    Finding,
    LintReport,
    Rule,
    all_rule_ids,
    lint_file,
    register,
)
from repro.analysis.engine import run_lint
from repro.analysis.project import ModuleSummary, ProjectModel
from repro.analysis.project_rules import ProjectRule
from repro.analysis.reporting import render_json, render_text

# importing the rule modules populates the registry
from repro.analysis import rules as _rules  # noqa: F401  (side-effect import)

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "LintReport",
    "ModuleSummary",
    "ProjectModel",
    "ProjectRule",
    "RULESET_VERSION",
    "Rule",
    "all_rule_ids",
    "lint_file",
    "load_config",
    "register",
    "render_json",
    "render_text",
    "run_lint",
]
