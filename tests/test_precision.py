"""Tests for ``repro.precision``: policy, quantization bounds, parity.

The load-bearing claims of the dtype-policy refactor:

* the half-level int8 scheme reconstructs every element within
  ``scale / 255`` (property-tested over adversarial matrices);
* quantized-rescore recall@k is **monotone non-decreasing** in the
  rescore width, because survivors form a prefix of the coarse total
  order;
* float32 retrieval returns top-k **identical** to float64 on the test
  worlds, at 1/2/4 shards (the gate that lets float32 be the default);
* pre-dtype (version-1) embedding stores still load, as float64, via
  the explicit legacy path;
* a quantized sidecar round-trips byte-identically to an in-memory
  ``plan.quantize()``, so persisted and rebuilt plans score the same.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ingest.embedding_store import (
    EmbeddingStore,
    LEGACY_STORE_VERSION,
)
from repro.precision import (
    ACCUM_DTYPE,
    F32,
    F64,
    Precision,
    PrecisionError,
    coarse_scores,
    dequantize_rows,
    parse_key,
    quantize_rows,
    resolve,
)
from repro.retriever.single import SingleRetriever
from repro.retriever.strategies import ScoreStrategy, l2_normalize_rows
from repro.shard import (
    ShardedEmbeddingStore,
    ShardPlan,
    recall_at_k,
    topk_doc_order,
)

# ---------------------------------------------------------------------------
# the Precision policy object
# ---------------------------------------------------------------------------


class TestPrecisionPolicy:
    def test_defaults_to_float32(self):
        assert Precision().mode == "float32"
        assert Precision().dtype == F32

    def test_float64_mode_keeps_f64_matrices(self):
        assert Precision(mode="float64").dtype == F64

    def test_int8_rescore_holds_float32_rows(self):
        policy = Precision(mode="int8-rescore", rescore_width=32)
        assert policy.dtype == F32
        assert policy.quantized

    def test_unknown_mode_rejected(self):
        with pytest.raises(PrecisionError):
            Precision(mode="float16")

    def test_nonpositive_rescore_width_rejected(self):
        with pytest.raises(PrecisionError):
            Precision(mode="int8-rescore", rescore_width=0)

    def test_resolve_accepts_none_string_and_policy(self):
        assert resolve(None) == Precision()
        assert resolve("float64").mode == "float64"
        policy = Precision(mode="int8-rescore", rescore_width=128)
        assert resolve(policy) is policy

    def test_resolve_accepts_key_strings(self):
        # the round-trip the serving layer depends on: a stored
        # default_precision key ("mode:width") resolves back to policy
        assert resolve("int8-rescore:64") == Precision(
            mode="int8-rescore", rescore_width=64
        )

    @pytest.mark.parametrize(
        "policy",
        [
            Precision(),
            Precision(mode="float64"),
            Precision(mode="int8-rescore", rescore_width=37),
        ],
    )
    def test_key_round_trips_through_parse_key(self, policy):
        assert parse_key(policy.key()) == policy

    def test_key_separates_rescore_widths(self):
        narrow = Precision(mode="int8-rescore", rescore_width=16)
        wide = Precision(mode="int8-rescore", rescore_width=64)
        assert narrow.key() != wide.key()

    def test_malformed_key_rejected(self):
        with pytest.raises(PrecisionError):
            parse_key("int8-rescore:lots")


# ---------------------------------------------------------------------------
# int8 round-trip error bound (property)
# ---------------------------------------------------------------------------

_MATRICES = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=16),
    ),
    elements=st.floats(
        min_value=-100.0,
        max_value=100.0,
        allow_nan=False,
        allow_infinity=False,
    ),
)


class TestQuantizationBound:
    @given(matrix=_MATRICES)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_error_within_half_level(self, matrix):
        q, scales = quantize_rows(matrix)
        restored = dequantize_rows(q, scales)
        assert q.dtype == np.int8
        assert scales.dtype == F32
        # per-element bound: scale/255 (interior rounding and the
        # clipped |q|=127 boundary both land within half a level), plus
        # a few float32 ulps of the scale for the dequant arithmetic
        scale64 = scales.astype(np.float64)[:, None]
        bound = scale64 * (1.0 / 255.0 + 4e-6) + 1e-12
        assert np.all(np.abs(restored - matrix) <= bound)

    @given(matrix=_MATRICES)
    @settings(max_examples=100, deadline=None)
    def test_quantization_is_deterministic(self, matrix):
        q1, s1 = quantize_rows(matrix)
        q2, s2 = quantize_rows(matrix)
        assert np.array_equal(q1, q2)
        assert np.array_equal(s1, s2)

    def test_zero_rows_quantize_to_zero(self):
        matrix = np.zeros((3, 4))
        q, scales = quantize_rows(matrix)
        assert not q.any()
        assert not scales.any()
        assert not dequantize_rows(q, scales).any()

    def test_coarse_scores_match_dequantized_matmul(self):
        rng = np.random.RandomState(3)
        matrix = rng.randn(100, 8)
        queries = rng.randn(5, 8)
        q, scales = quantize_rows(matrix)
        chunked = coarse_scores(q, scales, queries, chunk_rows=7)
        reference = dequantize_rows(q, scales) @ queries.astype(F32).T
        assert chunked.dtype == F32
        np.testing.assert_allclose(chunked, reference, rtol=1e-5)


# ---------------------------------------------------------------------------
# rescore-width monotonicity + quantized end-to-end
# ---------------------------------------------------------------------------


def _clustered_world(n_docs=600, dim=16, n_centers=12, seed=11):
    """(normalized docs, normalized queries) around latent centers."""
    rng = np.random.RandomState(seed)
    centers = l2_normalize_rows(rng.randn(n_centers, dim))
    labels = rng.randint(n_centers, size=n_docs)
    docs = l2_normalize_rows(centers[labels] + 0.2 * rng.randn(n_docs, dim))
    anchors = rng.randint(n_docs, size=8)
    queries = l2_normalize_rows(docs[anchors] + 0.1 * rng.randn(8, dim))
    return docs, queries


class TestRescoreWidth:
    @pytest.fixture(scope="class")
    def quant_world(self):
        docs, queries = _clustered_world()
        n_docs = docs.shape[0]
        doc_ids = np.arange(n_docs, dtype=np.int64)
        offsets = np.arange(n_docs, dtype=np.int64)
        plan = ShardPlan.build(
            docs, doc_ids, offsets, 4, mode="range", quantize=True
        )
        exact = ShardPlan.build(docs, doc_ids, offsets, 1, mode="range")
        return plan, exact, queries

    def _top_ids(self, result, k):
        order = topk_doc_order(result.scores, result.doc_ids, k)
        return result.doc_ids[order]

    @given(width_seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_recall_monotone_in_rescore_width(self, quant_world, width_seed):
        plan, exact, queries = quant_world
        strategy = ScoreStrategy()
        k = 10
        rng = np.random.RandomState(width_seed)
        narrow, wide = sorted(rng.randint(k, 200, size=2))
        exact_ids = [
            self._top_ids(r, k) for r in exact.search(queries, strategy)
        ]
        recalls = []
        for width in (narrow, wide):
            results = plan.search_quantized(queries, strategy, width)
            recalls.append(
                np.mean(
                    [
                        recall_at_k(self._top_ids(r, k), e)
                        for r, e in zip(results, exact_ids)
                    ]
                )
            )
        # survivors form a prefix of the coarse total order, so widening
        # the rescore can only add candidates — never lose one
        assert recalls[1] >= recalls[0]

    def test_full_width_rescore_matches_exact_topk(self, quant_world):
        plan, exact, queries = quant_world
        strategy = ScoreStrategy()
        k = 10
        full = plan.total_docs
        for quantized, reference in zip(
            plan.search_quantized(queries, strategy, full),
            exact.search(queries, strategy),
        ):
            # every doc survives into the exact rescore, so the final
            # ranking is the exact ranking
            assert np.array_equal(
                self._top_ids(quantized, k), self._top_ids(reference, k)
            )

    def test_search_quantized_requires_quantized_plan(self, quant_world):
        _, exact, queries = quant_world
        with pytest.raises(ValueError, match="no int8 copy"):
            exact.search_quantized(queries, ScoreStrategy(), 10)


# ---------------------------------------------------------------------------
# float32 vs float64 top-k parity on the test world
# ---------------------------------------------------------------------------


class TestFloatParity:
    QUESTIONS = [
        "Where was the first person born ?",
        "Which club does the historian play for ?",
        "What is linked to the novelist ?",
    ]

    @pytest.fixture(scope="class")
    def pair(self, encoder, store):
        exact = SingleRetriever(encoder, store, precision="float64")
        exact.refresh_embeddings()
        fast = SingleRetriever(encoder, store, precision="float32")
        fast.refresh_embeddings()
        return exact, fast

    def test_matrix_dtypes_follow_policy(self, pair):
        exact, fast = pair
        assert exact.export_embeddings().matrix.dtype == F64
        assert fast.export_embeddings().matrix.dtype == F32

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_topk_identical_across_dtypes(self, pair, n_shards):
        exact, fast = pair
        exact.build_shards(n_shards)
        fast.build_shards(n_shards)
        for question in self.QUESTIONS:
            ids64 = [r.doc_id for r in exact.retrieve(question, k=5)]
            ids32 = [r.doc_id for r in fast.retrieve(question, k=5)]
            assert ids64 == ids32

    def test_exact_mode_mismatch_rejected(self, pair):
        _, fast = pair
        vec = fast.encode_question(self.QUESTIONS[0])
        with pytest.raises(ValueError, match="float32"):
            fast.retrieve_batch(vec, k=3, precision="float64")

    def test_quantized_request_served_by_float32_retriever(
        self, encoder, store
    ):
        retriever = SingleRetriever(encoder, store, precision="float32")
        retriever.refresh_embeddings()
        retriever.build_shards(2)
        question = self.QUESTIONS[0]
        exact_ids = [r.doc_id for r in retriever.retrieve(question, k=5)]
        wide = Precision(
            mode="int8-rescore", rescore_width=len(retriever.store)
        )
        quant_ids = [
            r.doc_id
            for r in retriever.retrieve(question, k=5, precision=wide)
        ]
        # at full rescore width the quantized cascade reproduces the
        # exact float ranking
        assert quant_ids == exact_ids

    def test_quantized_request_needs_a_shard_plan(self, encoder, store):
        retriever = SingleRetriever(encoder, store, precision="float32")
        retriever.refresh_embeddings()
        vec = retriever.encode_question(self.QUESTIONS[0])
        with pytest.raises(ValueError, match="shard plan"):
            retriever.retrieve_batch(vec, k=3, precision="int8-rescore")

    def test_retriever_inherits_encoder_precision(self, vocab, store):
        from repro.encoder import EncoderConfig, MiniBertEncoder

        enc = MiniBertEncoder(
            vocab,
            EncoderConfig(dim=8, n_layers=1, n_heads=2, max_len=16),
            precision="float64",
        )
        retriever = SingleRetriever(enc, store)
        assert retriever.precision.mode == "float64"


# ---------------------------------------------------------------------------
# store persistence: legacy v1, dtype round-trip, quantized sidecars
# ---------------------------------------------------------------------------


def _store_of(matrix):
    n_docs = matrix.shape[0]
    return EmbeddingStore(
        matrix=matrix,
        doc_ids=list(range(n_docs)),
        offsets=list(range(n_docs)),
        row_hashes={d: f"h{d}" for d in range(n_docs)},
        encoder_fingerprint="enc-fp",
    )


class TestStoreDtypes:
    @pytest.mark.parametrize("dtype", [F32, F64])
    def test_save_open_round_trips_dtype(self, tmp_path, dtype):
        matrix = np.arange(12, dtype=dtype).reshape(4, 3)
        _store_of(matrix).save(tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["dtype"] == dtype.name
        reopened = EmbeddingStore.open(tmp_path, mmap=False)
        assert reopened.matrix.dtype == dtype
        np.testing.assert_array_equal(reopened.matrix, matrix)

    def test_legacy_v1_store_loads_as_float64(self, tmp_path):
        # hand-craft a pre-dtype generation: version-1 manifest, no
        # "dtype" field, raw float64 rows in an .f64 data file
        matrix = np.arange(6, dtype=F64).reshape(2, 3)
        data_name = "embeddings-deadbeef.f64"
        (tmp_path / data_name).write_bytes(matrix.tobytes())
        manifest = {
            "version": LEGACY_STORE_VERSION,
            "rows": 2,
            "dim": 3,
            "data_file": data_name,
            "grace_file": None,
            "doc_ids": [0, 1],
            "offsets": [0, 1],
            "row_hashes": {"0": "a", "1": "b"},
            "encoder_fingerprint": "legacy-fp",
        }
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        reopened = EmbeddingStore.open(tmp_path, mmap=False)
        assert reopened.matrix.dtype == F64
        np.testing.assert_array_equal(reopened.matrix, matrix)

    def test_attach_rejects_dtype_mismatched_store(
        self, tmp_path, encoder, store
    ):
        exact = SingleRetriever(encoder, store, precision="float64")
        exact.refresh_embeddings()
        exact.export_embeddings().save(tmp_path)
        fast = SingleRetriever(encoder, store, precision="float32")
        # a float64 generation cannot warm-start a float32 retriever;
        # attach reports zero reusable rows so the caller re-encodes
        assert fast.attach_embeddings(EmbeddingStore.open(tmp_path)) == 0


class TestQuantizedSidecars:
    @pytest.fixture(scope="class")
    def sharded(self):
        rng = np.random.RandomState(7)
        matrix = rng.randn(40, 6).astype(F32)
        return ShardedEmbeddingStore.split(_store_of(matrix), 3)

    def test_sidecar_round_trip(self, tmp_path, sharded):
        sharded.save(tmp_path, quantize=True)
        manifest = json.loads(
            (tmp_path / "sharded_manifest.json").read_text()
        )
        assert manifest["quantized"] is True
        reopened = ShardedEmbeddingStore.open(tmp_path)
        assert reopened.quantized
        for sidecar, shard in zip(reopened.quant, reopened.shards):
            expected_q, expected_scales = quantize_rows(
                l2_normalize_rows(np.asarray(shard.matrix))
            )
            assert np.array_equal(sidecar["q"], expected_q)
            assert np.array_equal(sidecar["scales"], expected_scales)

    def test_sidecar_matches_plan_quantization(self, tmp_path, sharded):
        sharded.save(tmp_path, quantize=True)
        reopened = ShardedEmbeddingStore.open(tmp_path)
        combined = reopened.combined()
        normed = l2_normalize_rows(np.asarray(combined.matrix))
        offsets = np.asarray(combined.offsets, dtype=np.int64)
        doc_ids = np.asarray(combined.doc_ids, dtype=np.int64)
        plan = ShardPlan.build(
            normed, doc_ids, offsets, reopened.n_shards, quantize=True
        )
        # quantization is deterministic, so the persisted sidecars and a
        # plan rebuilt in memory agree byte for byte
        sidecar_q = np.concatenate([s["q"] for s in reopened.quant])
        sidecar_scales = np.concatenate(
            [s["scales"] for s in reopened.quant]
        )
        plan_q = np.concatenate([s.q_matrix for s in plan.shards])
        plan_scales = np.concatenate([s.q_scales for s in plan.shards])
        assert np.array_equal(sidecar_q, plan_q)
        assert np.array_equal(sidecar_scales, plan_scales)

    def test_unquantized_save_has_no_sidecars(self, tmp_path, sharded):
        sharded.save(tmp_path)
        reopened = ShardedEmbeddingStore.open(tmp_path)
        assert not reopened.quantized
        assert not list(tmp_path.glob("*/quant.npz"))


# ---------------------------------------------------------------------------
# aggregation accumulates in float64 regardless of store dtype
# ---------------------------------------------------------------------------


class TestAccumulatorDtype:
    def test_float32_scores_aggregate_in_float64(self):
        from repro.retriever.strategies import aggregate_segments

        flat = np.array([0.5, 0.25, 0.75, 1.0], dtype=F32)
        offsets = np.array([0, 2], dtype=np.int64)
        aggregated, _ = aggregate_segments(flat, offsets, ScoreStrategy())
        assert aggregated.dtype == ACCUM_DTYPE
