"""Dynamic micro-batching: pending requests + the coalescing queue.

The core serving lever (the one Baleen/MDR-style systems pull): many
client threads each submit one question, and a worker drains them as one
``retrieve_batch``/``retrieve_paths_batch`` call. The batch window is
dynamic — a worker flushes as soon as ``max_batch_size`` requests of the
same shape are waiting, or when the oldest has waited ``max_wait``
seconds, whichever comes first. Under light load requests pay at most
``max_wait`` extra latency; under heavy load batches fill instantly and
the window never matters.

Admission control lives at the queue mouth: ``put`` rejects with
:class:`~repro.serve.errors.Overloaded` once ``max_pending`` requests
wait, which bounds queue latency instead of letting it grow without
limit. Batches are homogeneous: only requests with the same
:attr:`PendingRequest.batch_key` (mode, k, nprobe) coalesce, so one
underlying
bulk call serves every member. The key includes the request's precision
mode, so quantized and exact requests never share a batch.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.serve.errors import Overloaded, ServiceStopped


class PendingRequest:
    """One in-flight request: inputs, deadline, and a waitable slot.

    Acts as the future returned to the submitting thread: ``result()``
    blocks until a worker (or the shutdown path) settles the request.
    ``submitted_at`` is a ``perf_counter`` timestamp for latency stats;
    ``deadline`` is an absolute reading of the *service* clock (monotonic,
    injectable) or None for no deadline.
    """

    __slots__ = (
        "question",
        "mode",
        "k",
        "nprobe",
        "precision",
        "cache_key",
        "deadline",
        "submitted_at",
        "_done",
        "_result",
        "_error",
    )

    def __init__(
        self,
        question: str,
        mode: str,
        k: int,
        cache_key: Any,
        deadline: Optional[float],
        nprobe: Optional[int] = None,
        precision: Optional[str] = None,
    ):
        self.question = question
        self.mode = mode
        self.k = k
        self.nprobe = nprobe
        self.precision = precision
        self.cache_key = cache_key
        self.deadline = deadline
        self.submitted_at = time.perf_counter()
        self._done = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    @property
    def batch_key(self) -> Tuple[str, int, Optional[int], Optional[str]]:
        """Requests coalesce only with the same
        (mode, k, nprobe, precision) shape."""
        return (self.mode, self.k, self.nprobe, self.precision)

    def complete(self, result: Any) -> None:
        self._result = result
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until settled; raise the stored error on failure."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request not completed within {timeout} seconds"
            )
        if self._error is not None:
            raise self._error
        return self._result


class BatchQueue:
    """Bounded request queue workers drain in coalesced batches."""

    def __init__(
        self,
        max_pending: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.max_pending = max_pending
        self._clock = clock
        self._items: Deque[PendingRequest] = deque()
        self._cond = threading.Condition()
        self._stopping = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def put(self, request: PendingRequest) -> None:
        """Admit one request or reject immediately (explicit backpressure)."""
        with self._cond:
            if self._stopping:
                raise ServiceStopped("service is not accepting requests")
            if len(self._items) >= self.max_pending:
                raise Overloaded(
                    f"pending queue full ({self.max_pending} requests); "
                    "back off and retry"
                )
            self._items.append(request)
            self._cond.notify()

    def take_batch(
        self, max_size: int, max_wait: float
    ) -> Optional[List[PendingRequest]]:
        """The next coalesced batch, or None when stopped and drained.

        Blocks until at least one request waits. The first request fixes
        the batch key; compatible requests already queued join
        immediately, then the worker holds the window open up to
        ``max_wait`` (service clock) for more, leaving incompatible
        requests queued for the next cycle. During shutdown the window
        collapses so draining finishes promptly.
        """
        with self._cond:
            while not self._items:
                if self._stopping:
                    return None
                self._cond.wait()
            first = self._items.popleft()
            batch = [first]
            key = first.batch_key
            window_ends = self._clock() + max_wait
            while len(batch) < max_size:
                taken = self._take_compatible(key)
                if taken is not None:
                    batch.append(taken)
                    continue
                if self._stopping:
                    break
                remaining = window_ends - self._clock()
                if remaining <= 0:
                    break
                # timed wait capped at 50ms: an injected fake clock
                # controls the window accounting, not the OS-level sleep,
                # so cap the real wait and re-check the window each wake
                self._cond.wait(timeout=min(remaining, 0.05))
            return batch

    def _take_compatible(
        self, key: Tuple[str, int, Optional[int], Optional[str]]
    ) -> Optional[PendingRequest]:
        """Pop the oldest queued request with ``batch_key == key``."""
        for index, item in enumerate(self._items):
            if item.batch_key == key:
                del self._items[index]
                return item
        return None

    def stop(self) -> None:
        """Refuse new work and wake every blocked worker."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()

    def drain_remaining(self) -> List[PendingRequest]:
        """Remove and return everything still queued (shutdown path)."""
        with self._cond:
            items = list(self._items)
            self._items.clear()
            return items
