"""Answer metrics: SQuAD/HotpotQA-style exact match and token F1."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import tokenize


def _normalize_answer(text: str) -> List[str]:
    """Lower-case, strip punctuation and articles (SQuAD normalization)."""
    return [
        t
        for t in tokenize(text)
        if t[:1].isalnum() and t not in ("a", "an", "the")
    ]


def exact_match(prediction: str, gold: str) -> bool:
    """Normalized exact match."""
    return _normalize_answer(prediction) == _normalize_answer(gold)


def f1_score(prediction: str, gold: str) -> float:
    """Token-overlap F1 between prediction and gold."""
    pred_tokens = _normalize_answer(prediction)
    gold_tokens = _normalize_answer(gold)
    if not pred_tokens or not gold_tokens:
        return float(pred_tokens == gold_tokens)
    common: Dict[str, int] = {}
    for token in pred_tokens:
        common[token] = common.get(token, 0) + 1
    overlap = 0
    for token in gold_tokens:
        if common.get(token, 0) > 0:
            overlap += 1
            common[token] -= 1
    if overlap == 0:
        return 0.0
    precision = overlap / len(pred_tokens)
    recall = overlap / len(gold_tokens)
    return 2 * precision * recall / (precision + recall)


def evaluate_answers(
    predictions: Sequence[str], golds: Sequence[str]
) -> Dict[str, float]:
    """Corpus-level EM and F1."""
    if len(predictions) != len(golds):
        raise ValueError("predictions and golds must align")
    if not golds:
        return {"em": 0.0, "f1": 0.0}
    em_total = sum(exact_match(p, g) for p, g in zip(predictions, golds))
    f1_total = sum(f1_score(p, g) for p, g in zip(predictions, golds))
    n = len(golds)
    return {"em": em_total / n, "f1": f1_total / n}
