"""Tests for ``repro.data.stream``: determinism, O(1) access, corpus fit."""

import inspect

import numpy as np
import pytest

from repro.data import Corpus, StreamConfig, document_at, stream_documents

CFG_100K = StreamConfig(n_docs=100_000, seed=13)


class TestStreamDeterminism:
    def test_same_seed_same_docs_at_100k(self):
        """Spot-check the whole 100k range without walking it (O(1) access)."""
        probe_ids = [0, 1, 137, 9_999, 50_000, 99_998, 99_999]
        first = [document_at(CFG_100K, i) for i in probe_ids]
        second = [document_at(CFG_100K, i) for i in probe_ids]
        for a, b in zip(first, second):
            assert a.title == b.title
            assert a.text == b.text
            assert a.links == b.links
            assert [
                (f.relation, f.value_text) for f in a.facts
            ] == [(f.relation, f.value_text) for f in b.facts]

    def test_different_seed_differs(self):
        other = StreamConfig(n_docs=100_000, seed=14)
        same = sum(
            document_at(CFG_100K, i).text == document_at(other, i).text
            for i in range(50)
        )
        assert same < 5

    def test_stream_equals_random_access(self):
        window = list(stream_documents(CFG_100K, start=99_990))
        assert len(window) == 10
        for offset, doc in enumerate(window):
            direct = document_at(CFG_100K, 99_990 + offset)
            assert doc.doc_id == direct.doc_id == 99_990 + offset
            assert doc.text == direct.text

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            document_at(CFG_100K, 100_000)
        with pytest.raises(IndexError):
            document_at(CFG_100K, -1)


class TestStreamShape:
    def test_stream_is_a_generator(self):
        """O(1) memory: nothing is materialized until iterated."""
        stream = stream_documents(CFG_100K)
        assert inspect.isgenerator(stream)
        first = next(stream)
        assert first.doc_id == 0
        stream.close()

    def test_titles_unique_in_window(self):
        titles = [d.title for d in stream_documents(CFG_100K, stop=2_000)]
        assert len(set(titles)) == 2_000

    def test_window_builds_a_valid_corpus(self):
        docs = list(stream_documents(CFG_100K, start=500, stop=560))
        corpus = Corpus(docs)  # unique titles, stable doc ids
        assert len(corpus) == 60
        doc = corpus.by_title(docs[0].title)
        assert doc is docs[0]
        # links point at pool entities mentioned in the text
        for link in doc.links:
            assert link in doc.text

    def test_facts_cover_linked_entities(self):
        doc = document_at(CFG_100K, 42)
        relations = [f.relation for f in doc.facts]
        assert relations == [
            "occupation",
            "born_in",
            "birth_year",
            "plays_for",
        ]
        entity_values = {
            f.value_text for f in doc.facts if f.value_entity is not None
        }
        assert entity_values == set(doc.links)

    def test_pool_entities_are_shared(self):
        """Cities/clubs come from small pools, so links collide across docs."""
        cities = {
            d.links[0] for d in stream_documents(CFG_100K, stop=1_000)
        }
        assert len(cities) <= CFG_100K.n_cities
        assert len(cities) > 1
