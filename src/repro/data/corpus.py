"""The document-collection abstraction shared by every retriever.

A :class:`Corpus` is the stand-in for the paper's 5M-document Wikipedia
dump: documents have titles, bodies, hyperlinks to other documents and a
record of which world facts each sentence verbalizes (used only for gold
supervision, never by retrieval models).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.data.world import Entity, Fact


@dataclass
class Document:
    """One corpus document.

    Attributes
    ----------
    doc_id:
        Stable integer id within the corpus.
    title:
        The title entity's name (unique within the corpus).
    text:
        The full body text.
    entity:
        The world entity this document describes.
    links:
        Titles of documents hyperlinked from this one (entity mentions).
    facts:
        World facts verbalized by this document, in sentence order.
    mentioned_entities:
        Names of all entities whose surface form occurs in the text.
    """

    doc_id: int
    title: str
    text: str
    entity: Entity
    links: List[str] = field(default_factory=list)
    facts: List[Fact] = field(default_factory=list)
    mentioned_entities: List[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.doc_id}] {self.title}"


class Corpus:
    """An ordered collection of :class:`Document` with title lookup."""

    def __init__(self, documents: Sequence[Document]):
        self._documents = list(documents)
        self._by_title: Dict[str, Document] = {d.title: d for d in self._documents}
        if len(self._by_title) != len(self._documents):
            raise ValueError("duplicate document titles in corpus")

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def __getitem__(self, doc_id: int) -> Document:
        return self._documents[doc_id]

    def by_title(self, title: str) -> Optional[Document]:
        """Look a document up by exact title."""
        return self._by_title.get(title)

    def titles(self) -> List[str]:
        """All document titles, in doc-id order."""
        return [d.title for d in self._documents]

    def neighbours(self, doc: Document) -> List[Document]:
        """Documents hyperlinked from ``doc`` (PathRetriever's search space)."""
        out = []
        for title in doc.links:
            linked = self._by_title.get(title)
            if linked is not None:
                out.append(linked)
        return out
