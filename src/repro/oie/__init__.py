"""Open Information Extraction substrate.

Stand-ins for the two sentence-level OIE tools the paper deploys:

* :mod:`repro.oie.pattern` — "StanfordIE-style": pattern extraction that
  over-generates (keeps determiners, emits conjunct cascades — the noisy
  triples of the paper's Fig. 3),
* :mod:`repro.oie.minie` — "MinIE-style": minimized constituents, split
  prepositional attachments, better long-sentence behaviour,
* :mod:`repro.oie.union` — the union set ``T_o = T_d^s ∪ T_d^m`` that
  Algorithm 1 consumes.
"""

from repro.oie.triple import Triple
from repro.oie.base import OpenIEExtractor, parse_clause
from repro.oie.pattern import PatternExtractor
from repro.oie.minie import MinIEExtractor
from repro.oie.union import UnionExtractor, extract_union

__all__ = [
    "Triple",
    "OpenIEExtractor",
    "parse_clause",
    "PatternExtractor",
    "MinIEExtractor",
    "UnionExtractor",
    "extract_union",
]
