"""Tests for ``repro.shard``: parity, pruning recall, persistence.

The load-bearing claims:

* sharded retrieval with no pruning is **byte-identical** to the
  unsharded single-matmul path at 1/2/4 shards in both assignment modes
  (same doc ids, same float scores, same matched triples, same
  per-triple score vectors);
* recall@k against exact retrieval is monotone non-decreasing in
  ``nprobe`` and exactly 1.0 at ``nprobe = n_shards``;
* a split store round-trips through save/open and warm-starts the
  retriever with zero re-encoding.
"""

import numpy as np
import pytest

from repro.retriever.single import SingleRetriever
from repro.retriever.strategies import ONE_FACT, TOP_K, ScoreStrategy
from repro.shard import (
    ShardedEmbeddingStore,
    ShardedStoreError,
    ShardPlan,
    assign_centroid,
    assign_range,
    recall_at_k,
    segment_means,
    topk_doc_order,
)

QUESTIONS = [
    "Where was the first person born ?",
    "Which club does the historian play for ?",
    "What is linked to the novelist ?",
]


@pytest.fixture(scope="module")
def sharder(encoder, store):
    """A private retriever whose shard state the tests may mutate."""
    retriever = SingleRetriever(encoder, store)
    retriever.refresh_embeddings()
    return retriever


# ---------------------------------------------------------------------------
# deterministic top-k merge
# ---------------------------------------------------------------------------


class TestTopkDocOrder:
    def test_orders_by_score_desc_then_id_asc(self):
        scores = np.array([0.5, 0.9, 0.5, 0.1])
        ids = np.array([7, 3, 2, 1])
        order = topk_doc_order(scores, ids, 3)
        assert ids[order].tolist() == [3, 2, 7]

    def test_permutation_invariant(self):
        rng = np.random.RandomState(0)
        scores = rng.choice([0.1, 0.5, 0.9], size=64)  # heavy ties
        ids = np.arange(64)
        base = ids[topk_doc_order(scores, ids, 10)]
        for _ in range(5):
            perm = rng.permutation(64)
            got = ids[perm][topk_doc_order(scores[perm], ids[perm], 10)]
            assert got.tolist() == base.tolist()

    def test_k_clamps_and_zero(self):
        scores = np.array([0.3, 0.2])
        ids = np.array([0, 1])
        assert topk_doc_order(scores, ids, 99).shape[0] == 2
        assert topk_doc_order(scores, ids, 0).shape[0] == 0
        assert topk_doc_order(np.zeros(0), np.zeros(0), 5).shape[0] == 0

    def test_recall_at_k(self):
        assert recall_at_k(np.array([1, 2, 3]), np.array([2, 3, 4])) == (
            pytest.approx(2 / 3)
        )
        assert recall_at_k(np.zeros(0), np.zeros(0)) == 1.0


# ---------------------------------------------------------------------------
# assignment
# ---------------------------------------------------------------------------


class TestAssignment:
    def test_range_is_contiguous_and_near_equal(self):
        labels = assign_range(10, 3)
        assert labels.tolist() == sorted(labels.tolist())
        sizes = np.bincount(labels, minlength=3)
        assert sizes.max() - sizes.min() <= 1
        assert sizes.sum() == 10

    def test_range_more_shards_than_docs(self):
        labels = assign_range(2, 5)
        assert labels.shape[0] == 2
        assert set(labels.tolist()) <= set(range(5))

    def test_centroid_deterministic(self):
        rng = np.random.RandomState(7)
        vectors = rng.randn(40, 8)
        labels_a, centroids_a = assign_centroid(vectors, 4)
        labels_b, centroids_b = assign_centroid(vectors, 4)
        assert np.array_equal(labels_a, labels_b)
        assert np.array_equal(centroids_a, centroids_b)
        assert labels_a.shape[0] == 40

    def test_centroid_groups_clusters_together(self):
        rng = np.random.RandomState(3)
        centers = rng.randn(4, 16) * 4.0
        vectors = np.concatenate(
            [centers[i] + 0.05 * rng.randn(25, 16) for i in range(4)]
        )
        labels, _ = assign_centroid(vectors, 4)
        # every ground-truth cluster lands (almost) wholly in one shard
        for i in range(4):
            block = labels[i * 25 : (i + 1) * 25]
            majority = np.bincount(block).max()
            assert majority >= 24

    def test_segment_means_skips_empty_segments(self):
        matrix = np.arange(12.0).reshape(6, 2)
        offsets = np.array([0, 2, 2, 5])  # doc 1 has no rows
        means = segment_means(matrix, offsets)
        assert np.array_equal(means[0], matrix[0:2].mean(axis=0))
        assert np.array_equal(means[1], np.zeros(2))
        assert np.array_equal(means[2], matrix[2:5].mean(axis=0))
        assert np.array_equal(means[3], matrix[5:6].mean(axis=0))


# ---------------------------------------------------------------------------
# parity: sharded == unsharded, byte for byte
# ---------------------------------------------------------------------------


class TestShardParity:
    @pytest.mark.parametrize("mode", ["range", "centroid"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_no_pruning_is_byte_identical(self, sharder, mode, n_shards):
        sharder.detach_shards()
        exact = sharder.retrieve_many(
            QUESTIONS, k=5, keep_triple_scores=True
        )
        sharder.build_shards(n_shards, mode=mode)
        try:
            sharded = sharder.retrieve_many(
                QUESTIONS, k=5, keep_triple_scores=True
            )
        finally:
            sharder.detach_shards()
        for exact_docs, sharded_docs in zip(exact, sharded):
            assert [d.doc_id for d in exact_docs] == [
                d.doc_id for d in sharded_docs
            ]
            # float equality, not approx: same dot products, same order
            assert [d.score for d in exact_docs] == [
                d.score for d in sharded_docs
            ]
            assert [str(d.matched_triple) for d in exact_docs] == [
                str(d.matched_triple) for d in sharded_docs
            ]
            for a, b in zip(exact_docs, sharded_docs):
                assert np.array_equal(a.triple_scores, b.triple_scores)

    def test_nprobe_all_shards_is_exact(self, sharder):
        sharder.detach_shards()
        exact = sharder.retrieve_many(QUESTIONS, k=4)
        sharder.build_shards(4, mode="centroid")
        try:
            probed = sharder.retrieve_many(QUESTIONS, k=4, nprobe=4)
        finally:
            sharder.detach_shards()
        for exact_docs, probed_docs in zip(exact, probed):
            assert [d.doc_id for d in exact_docs] == [
                d.doc_id for d in probed_docs
            ]
            assert [d.score for d in exact_docs] == [
                d.score for d in probed_docs
            ]

    def test_parity_holds_for_topk_strategy(self, sharder):
        strategy = ScoreStrategy(TOP_K, k=2)
        sharder.detach_shards()
        exact = sharder.retrieve_many(QUESTIONS, k=5, strategy=strategy)
        sharder.build_shards(3, mode="range")
        try:
            sharded = sharder.retrieve_many(
                QUESTIONS, k=5, strategy=strategy
            )
        finally:
            sharder.detach_shards()
        for exact_docs, sharded_docs in zip(exact, sharded):
            assert [(d.doc_id, d.score) for d in exact_docs] == [
                (d.doc_id, d.score) for d in sharded_docs
            ]

    def test_candidate_ids_bypass_the_plan(self, sharder):
        sharder.detach_shards()
        candidates = [0, 3, 5, 8]
        exact = sharder.retrieve_many(
            QUESTIONS, k=3, candidate_ids=candidates
        )
        sharder.build_shards(4, mode="range")
        try:
            got = sharder.retrieve_many(
                QUESTIONS, k=3, candidate_ids=candidates
            )
        finally:
            sharder.detach_shards()
        for exact_docs, got_docs in zip(exact, got):
            assert [(d.doc_id, d.score) for d in exact_docs] == [
                (d.doc_id, d.score) for d in got_docs
            ]

    def test_nprobe_without_shards_raises(self, sharder):
        sharder.detach_shards()
        with pytest.raises(ValueError, match="nprobe"):
            sharder.retrieve_many(QUESTIONS, k=3, nprobe=1)


# ---------------------------------------------------------------------------
# pruned recall properties (synthetic clustered corpus, ShardPlan direct)
# ---------------------------------------------------------------------------


def _clustered_plan_inputs(
    n_docs=240, n_centers=8, dim=16, max_triples=3, seed=5
):
    rng = np.random.RandomState(seed)
    centers = rng.randn(n_centers, dim) * 3.0
    rows = []
    offsets = []
    cursor = 0
    doc_center = rng.randint(n_centers, size=n_docs)
    for doc_id in range(n_docs):
        n_rows = 1 + rng.randint(max_triples)
        offsets.append(cursor)
        rows.append(
            centers[doc_center[doc_id]] + 0.1 * rng.randn(n_rows, dim)
        )
        cursor += n_rows
    matrix = np.concatenate(rows)
    normed = matrix / np.linalg.norm(matrix, axis=1, keepdims=True)
    queries = centers[rng.randint(n_centers, size=12)] + 0.1 * rng.randn(
        12, dim
    )
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    return normed, np.arange(n_docs), np.asarray(offsets), queries


class TestPrunedRecall:
    N_SHARDS = 8

    def _recalls(self):
        normed, doc_ids, offsets, queries = _clustered_plan_inputs()
        plan = ShardPlan.build(
            normed, doc_ids, offsets, self.N_SHARDS, mode="centroid"
        )
        strategy = ScoreStrategy(ONE_FACT)
        exact_top = [
            scores.doc_ids[topk_doc_order(scores.scores, scores.doc_ids, 10)]
            for scores in plan.search(queries, strategy, nprobe=None)
        ]
        recalls = []
        for nprobe in range(1, self.N_SHARDS + 1):
            scored = plan.search(queries, strategy, nprobe=nprobe)
            total = 0.0
            for query_scores, exact_ids in zip(scored, exact_top):
                approx = query_scores.doc_ids[
                    topk_doc_order(
                        query_scores.scores, query_scores.doc_ids, 10
                    )
                ]
                total += recall_at_k(approx, exact_ids)
            recalls.append(total / len(exact_top))
        return recalls

    def test_recall_monotone_in_nprobe(self):
        recalls = self._recalls()
        # average recall may not be strictly monotone per query, but the
        # probe sets are nested per query, so recall is monotone exactly
        for lower, higher in zip(recalls, recalls[1:]):
            assert higher >= lower - 1e-12

    def test_recall_is_one_at_full_probe(self):
        recalls = self._recalls()
        assert recalls[-1] == 1.0

    def test_clustered_data_prunes_well(self):
        recalls = self._recalls()
        # centroid shards over clustered docs: tiny nprobe, high recall
        assert recalls[1] >= 0.9


# ---------------------------------------------------------------------------
# sharded persistence
# ---------------------------------------------------------------------------


class TestShardedStore:
    @pytest.mark.parametrize("mode", ["range", "centroid"])
    def test_split_save_open_combined_roundtrip(
        self, sharder, tmp_path, mode
    ):
        sharder.detach_shards()
        exported = sharder.export_embeddings()
        sharded = ShardedEmbeddingStore.split(exported, 3, mode=mode)
        assert sharded.total_rows == exported.matrix.shape[0]
        assert sharded.total_docs == len(exported.doc_ids)
        sharded.save(tmp_path)
        loaded = ShardedEmbeddingStore.open(tmp_path)
        assert loaded.n_shards == 3
        assert loaded.mode == mode
        combined = loaded.combined()
        assert np.array_equal(
            np.asarray(combined.matrix), np.asarray(exported.matrix)
        )
        assert combined.doc_ids == exported.doc_ids
        assert combined.offsets == exported.offsets
        assert combined.row_hashes == exported.row_hashes

    def test_attach_sharded_zero_reencode_and_parity(
        self, sharder, encoder, store, tmp_path
    ):
        sharder.detach_shards()
        exact = sharder.retrieve_many(QUESTIONS, k=5)
        sharded = ShardedEmbeddingStore.split(
            sharder.export_embeddings(), 4, mode="centroid"
        )
        sharded.save(tmp_path)
        warm = SingleRetriever(encoder, store)
        adopted = warm.attach_sharded(ShardedEmbeddingStore.open(tmp_path))
        assert adopted == sharded.total_rows
        assert warm.refresh_embeddings() == 0  # zero re-encoding
        assert warm.shard_plan is not None
        assert warm.shard_plan.n_shards == 4
        # the persisted assignment is honored verbatim
        assert warm.shard_plan.assignment == sharded.assignment()
        got = warm.retrieve_many(QUESTIONS, k=5)
        for exact_docs, got_docs in zip(exact, got):
            assert [(d.doc_id, d.score) for d in exact_docs] == [
                (d.doc_id, d.score) for d in got_docs
            ]

    def test_open_missing_raises(self, tmp_path):
        with pytest.raises(ShardedStoreError, match="no sharded"):
            ShardedEmbeddingStore.open(tmp_path / "nope")

    def test_open_rejects_bad_version(self, sharder, tmp_path):
        import json

        sharder.detach_shards()
        ShardedEmbeddingStore.split(
            sharder.export_embeddings(), 2
        ).save(tmp_path)
        manifest_path = tmp_path / "sharded_manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ShardedStoreError, match="version"):
            ShardedEmbeddingStore.open(tmp_path)

    def test_split_rejects_bad_inputs(self, sharder):
        sharder.detach_shards()
        exported = sharder.export_embeddings()
        with pytest.raises(ValueError, match="positive"):
            ShardedEmbeddingStore.split(exported, 0)
        with pytest.raises(ValueError, match="mode"):
            ShardedEmbeddingStore.split(exported, 2, mode="bogus")
