"""Unit tests for the experiment harness, table runners and formatting."""

import numpy as np
import pytest

from repro.data.world import WorldConfig
from repro.encoder.minibert import EncoderConfig
from repro.eval.experiments import (
    loglog_slope,
    run_ablation_hac,
    run_ablation_threshold,
    run_table1,
    run_table2,
    run_table3,
)
from repro.eval.harness import ExperimentContext, ExperimentScale, current_scale
from repro.eval.tables import format_cell, format_table, row_from_scorecard
from repro.eval.metrics import RetrievalScorecard

TINY_SCALE = ExperimentScale(
    name="tiny",
    world=WorldConfig(
        n_persons=14,
        n_clubs=5,
        n_bands=5,
        n_cities=6,
        n_countries=2,
        n_companies=3,
        n_films=3,
        n_universities=2,
        n_awards=2,
        seed=3,
    ),
    comparison_per_kind=3,
    n_eval=25,
    encoder=EncoderConfig(dim=16, n_layers=1, n_heads=2, max_len=24),
)


@pytest.fixture(scope="module")
def tiny_ctx():
    return ExperimentContext(TINY_SCALE)


class TestContext:
    def test_lazy_components_cached(self, tiny_ctx):
        assert tiny_ctx.corpus is tiny_ctx.corpus
        assert tiny_ctx.store is tiny_ctx.store
        assert tiny_ctx.linker is tiny_ctx.linker

    def test_extractor_stores(self, tiny_ctx):
        minie = tiny_ctx.extractor_store("minie")
        stanford = tiny_ctx.extractor_store("stanford")
        assert len(minie) == len(tiny_ctx.corpus)
        assert minie is not stanford

    def test_lexical_has_all_fields(self, tiny_ctx):
        names = set(tiny_ctx.lexical.index.field_names())
        assert {"text", "triples", "minie_triples", "stanford_triples"} <= names

    def test_unknown_baseline_rejected(self, tiny_ctx):
        with pytest.raises(ValueError):
            tiny_ctx.baseline("nope")

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert current_scale().name == "full"
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert current_scale().name == "small"


class TestTableRunners:
    def test_table1(self, tiny_ctx):
        stats = run_table1(tiny_ctx)
        assert stats["train"]["total"] > 0

    def test_table2_structure(self, tiny_ctx):
        result = run_table2(tiny_ctx)
        for split in ("train", "test"):
            for field in ("text", "triples"):
                cards = result[split][field]
                assert 0.0 <= cards["hop1_pr"].total <= 1.0
                assert 0.0 <= cards["hop2_pem"].total <= 1.0

    def test_table3_structure(self, tiny_ctx):
        result = run_table3(tiny_ctx)
        assert set(result["train"]) == {
            "triples",
            "minie_triples",
            "stanford_triples",
        }

    def test_ablation_threshold_monotone_sizes(self, tiny_ctx):
        sweep = run_ablation_threshold(tiny_ctx, l_values=(2, 6, 12), k=8)
        sizes = [size for _, size, _ in sweep]
        assert sizes == sorted(sizes)

    def test_ablation_hac_timings(self):
        timings = run_ablation_hac(sizes=(8, 16), threshold=4)
        assert len(timings["hac"]) == 2
        assert all(t >= 0 for _, t in timings["hac"])

    def test_loglog_slope_on_known_data(self):
        points = [(10, 10.0**2), (100, 100.0**2), (1000, 1000.0**2)]
        assert loglog_slope(points) == pytest.approx(2.0, abs=1e-6)


class TestTableFormatting:
    def test_format_cell_percentage(self):
        assert format_cell(0.5) == "50.0%"

    def test_format_cell_large_float(self):
        assert format_cell(12.345) == "12.35"

    def test_format_cell_string(self):
        assert format_cell("abc") == "abc"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 0.5], ["bb", 1.0]])
        lines = table.split("\n")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_title(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.startswith("My Table")

    def test_row_from_scorecard(self):
        card = RetrievalScorecard()
        card.add("bridge", True)
        card.add("comparison", False)
        row = row_from_scorecard("model", card)
        assert row == ["model", 1.0, 0.0, 0.5]
