"""Project-specific static analysis (``repro lint``).

A visitor-based analysis pass over Python ``ast`` that encodes the bug
classes this repo has actually been bitten by — falsy-zero ``or``
defaults, uncounted encoder calls, un-normalized cosine matmuls, calls
into the legacy per-document scorer — as enforced rules. The tier-1 gate
(``tests/test_lint_clean.py``) keeps the tree clean on every PR; the rule
catalog lives in :mod:`repro.analysis.rules` and ``DESIGN.md``.

No third-party linters are available in this environment, so the pass is
built on the stdlib ``ast`` / ``tokenize`` modules only.
"""

from repro.analysis.config import LintConfig, load_config
from repro.analysis.core import (
    FileContext,
    Finding,
    LintReport,
    Rule,
    all_rule_ids,
    lint_file,
    register,
    run_lint,
)
from repro.analysis.reporting import render_json, render_text

# importing the rules module populates the registry
from repro.analysis import rules as _rules  # noqa: F401  (side-effect import)

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "LintReport",
    "Rule",
    "all_rule_ids",
    "lint_file",
    "load_config",
    "register",
    "render_json",
    "render_text",
    "run_lint",
]
