"""Shared clause parsing for the OIE extractors.

A lexicon-driven shallow parse: find the verb group, split the subject off,
and segment the remainder at prepositions. Both extractors consume the same
:class:`ParsedClause`; they differ in how they turn it into triples.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.text.coref import resolve_coreferences
from repro.text.sentences import split_sentences

# Verbs occurring in encyclopedic prose (base + inflected forms). A lexicon
# stands in for a POS tagger; it is the closed world our documents live in,
# plus common general verbs so the extractors also work on free text.
VERB_LEXICON = frozenset(
    """
    is are was were be been being has have had
    plays played play playing spent spend turned turn turns
    won win wins receives received receive joined join joins
    performed perform performs studied study studies graduated graduate
    competes compete competed consists consist consisted comes come came
    originated originate lies lie lay dates date operates operate operated
    records record recorded premiered premiere honours honors honoured
    covered cover covers written write wrote known know knew formed form
    founded found establish established started start starts began begin
    begins located locate signed sign signs headquartered released release
    directed direct directs incorporated incorporate unveiled unveil
    observed observe survive survives survived differ differs differed
    worked work works made make makes lived live lives moved move moved
    tallied tally nicknamed elected retire retired inducted induct
    based educated given comes
    """.split()
)

AUXILIARIES = frozenset("is are was were be been being has have had did does do".split())

PREPOSITIONS = frozenset(
    "at in for with from of to by as on into over under during".split()
)

DETERMINERS = frozenset("a an the this that these those its his her their".split())

ADVERBS = frozenset(
    "also still very already later often always sometimes currently formerly".split()
)

# words may contain internal periods only when followed by a letter (F.C.),
# so a sentence-final period stays a separate punctuation token
_WORD_RE = re.compile(
    r"[A-Za-z](?:[\w'-]|\.(?=[A-Za-z]))*"
    r"|\d+(?:,\d{3})*(?:\.\d+)?"
    r"|[^\sA-Za-z0-9]"
)


def case_tokenize(sentence: str) -> List[str]:
    """Tokenize preserving case (the extractors need capitalization cues)."""
    return _WORD_RE.findall(sentence)


@dataclass
class PrepSegment:
    """One post-verb segment: an optional preposition and its phrase."""

    preposition: Optional[str]
    tokens: List[str]

    @property
    def text(self) -> str:
        return " ".join(self.tokens)


@dataclass
class ParsedClause:
    """Shallow parse of one clause."""

    subject: List[str]
    verb_group: List[str]
    segments: List[PrepSegment] = field(default_factory=list)

    @property
    def subject_text(self) -> str:
        return " ".join(self.subject)

    @property
    def verb_text(self) -> str:
        return " ".join(self.verb_group)

    @property
    def is_copula(self) -> bool:
        return bool(self.verb_group) and self.verb_group[-1].lower() in (
            "is",
            "are",
            "was",
            "were",
        )

    @property
    def remainder_text(self) -> str:
        parts = []
        for segment in self.segments:
            if segment.preposition:
                parts.append(segment.preposition)
            parts.extend(segment.tokens)
        return " ".join(parts)


def _is_verb(token: str) -> bool:
    return token.lower() in VERB_LEXICON


def parse_clause(sentence: str) -> Optional[ParsedClause]:
    """Shallow-parse ``sentence`` into subject / verb group / segments.

    Returns ``None`` when no verb is found (e.g. a fragment).
    """
    tokens = [t for t in case_tokenize(sentence) if t not in (".", "!", "?", ";")]
    if not tokens:
        return None
    # locate the first verb; the subject may itself contain an "of"-phrase
    verb_start = None
    for i, token in enumerate(tokens):
        if _is_verb(token) and i > 0:
            verb_start = i
            break
    if verb_start is None:
        return None
    subject = tokens[:verb_start]
    # consume the verb group: auxiliaries + main verb (e.g. "was founded")
    verb_end = verb_start + 1
    while verb_end < len(tokens) and _is_verb(tokens[verb_end]):
        verb_end += 1
    verb_group = tokens[verb_start:verb_end]
    rest = tokens[verb_end:]
    segments: List[PrepSegment] = []
    current = PrepSegment(preposition=None, tokens=[])
    for token in rest:
        lowered = token.lower()
        if lowered in PREPOSITIONS:
            if current.tokens or current.preposition:
                segments.append(current)
            current = PrepSegment(preposition=lowered, tokens=[])
        elif token == ",":
            current.tokens.append(",")
        else:
            current.tokens.append(token)
    if current.tokens or current.preposition:
        segments.append(current)
    # drop empty leading segment produced by intransitive clause
    segments = [s for s in segments if s.tokens or s.preposition]
    if not subject:
        return None
    return ParsedClause(subject=subject, verb_group=verb_group, segments=segments)


def split_conjuncts(tokens: List[str]) -> List[List[str]]:
    """Split a coordinated phrase at commas / "and" into conjunct phrases.

    >>> split_conjuncts("a b , c and d".split())
    [['a', 'b'], ['c'], ['d']]
    """
    conjuncts: List[List[str]] = []
    current: List[str] = []
    for token in tokens:
        if token == "," or token.lower() == "and":
            if current:
                conjuncts.append(current)
            current = []
        else:
            current.append(token)
    if current:
        conjuncts.append(current)
    return conjuncts


def strip_determiners(tokens: List[str]) -> List[str]:
    """Remove leading determiners and all adverbs (MinIE minimization)."""
    out = [t for t in tokens if t.lower() not in ADVERBS]
    while out and out[0].lower() in DETERMINERS:
        out = out[1:]
    return out or tokens


class OpenIEExtractor:
    """Base class: document-level extraction with coreference resolution."""

    #: provenance tag, set by subclasses
    name = "base"

    def extract_sentence(self, sentence: str, sentence_index: int = 0):
        """Extract triples from one sentence. Implemented by subclasses."""
        raise NotImplementedError

    def extract_document(
        self,
        text: str,
        title: Optional[str] = None,
        entity_kind: Optional[str] = None,
    ):
        """Run coref then per-sentence extraction over a document.

        Mirrors the paper's pipeline: "we first conduct coreference
        resolution over the document and then ... extract triple facts for
        each sentence".
        """
        resolved = resolve_coreferences(text, title=title, entity_kind=entity_kind)
        triples = []
        for idx, sentence in enumerate(resolved.sentences or split_sentences(text)):
            triples.extend(self.extract_sentence(sentence, sentence_index=idx))
        return triples
