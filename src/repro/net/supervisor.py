"""Worker-fleet supervision: spawn, health-check, restart, roll out.

The supervisor owns N worker *slots*. Each slot runs one
:func:`~repro.net.worker.worker_main` process; the supervisor learns its
bound port and store generation over a one-shot pipe, then watches
liveness from a health thread. A crashed worker is respawned into its
slot against the *current* store directory, and ``on_change`` tells the
front door the fleet membership moved so it can rebuild links and retry
that worker's in-flight requests elsewhere.

``rollout`` is the hot-reload half: workers are told to ``reload`` one
at a time, so at every instant at most one worker is draining its old
service and the rest keep absorbing traffic — the fleet-level swap is
eventually complete with zero dropped requests, while per-request
atomicity (no mixed-generation answer) is the worker's own guarantee.
The health thread can also *watch* the store directory (one manifest
read per poll) and trigger the rollout itself when ``repro ingest``
publishes a new generation.

Everything here runs in plain threads with blocking sockets — the
``blocking-in-async`` lint rule only polices ``async def`` bodies, and
the supervisor deliberately has none.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from repro.ingest.embedding_store import store_generation
from repro.net.protocol import ProtocolError, recv_frame, send_frame
from repro.net.worker import WorkerSpec, worker_main


class SupervisorError(RuntimeError):
    """A worker failed to start or a control call could not complete."""


@dataclass
class WorkerHandle:
    """One live worker as the rest of the system addresses it."""

    slot: int
    #: bumps on every (re)spawn into the slot, so the front door can tell
    #: a restarted worker from the one whose link it just lost
    incarnation: int
    process: Any
    host: str
    port: int
    generation: int
    pid: int

    @property
    def address(self) -> tuple:
        return (self.host, self.port)

    def alive(self) -> bool:
        return self.process.is_alive()


def worker_control(
    handle: WorkerHandle, message: Dict[str, Any], timeout: float = 60.0
) -> Dict[str, Any]:
    """One short-lived control round-trip (ping/stats/reload/shutdown)."""
    with socket.create_connection(handle.address, timeout=timeout) as conn:
        send_frame(conn, message)
        response = recv_frame(conn)
    if response is None:
        raise SupervisorError(
            f"worker {handle.slot} closed the control connection"
        )
    return response


class Supervisor:
    """Spawns and babysits the worker fleet."""

    def __init__(
        self,
        spec: WorkerSpec,
        workers: int = 2,
        health_interval_s: float = 0.25,
        spawn_timeout_s: float = 120.0,
        watch_store: bool = False,
        on_change: Optional[Callable[[List[WorkerHandle]], None]] = None,
    ):
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.spec = spec
        self.n_workers = workers
        self.health_interval_s = health_interval_s
        self.spawn_timeout_s = spawn_timeout_s
        self.watch_store = watch_store
        self.on_change = on_change
        self._lock = threading.Lock()
        self._slots: Dict[int, WorkerHandle] = {}
        self._store_dir = spec.store_dir
        self._incarnations = 0
        self._restarts = 0
        self._rollouts = 0
        self._stop = threading.Event()
        self._health_thread: Optional[threading.Thread] = None

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "Supervisor":
        for slot in range(self.n_workers):
            self._spawn(slot)
        self._notify()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-net-health", daemon=True
        )
        self._health_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=10.0)
            self._health_thread = None
        with self._lock:
            handles = list(self._slots.values())
            self._slots.clear()
        for handle in handles:
            try:
                worker_control(handle, {"op": "shutdown"}, timeout=5.0)
            except (OSError, ProtocolError, SupervisorError):
                pass  # lint: ignore[except-pass] -- already dead or wedged; terminate below anyway
            handle.process.terminate()
        for handle in handles:
            handle.process.join(timeout=10.0)

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- observability ----------------------------------------------------
    def handles(self) -> List[WorkerHandle]:
        with self._lock:
            return [
                self._slots[slot]
                for slot in sorted(self._slots)
                if self._slots[slot].alive()
            ]

    @property
    def restarts(self) -> int:
        with self._lock:
            return self._restarts

    @property
    def rollouts(self) -> int:
        with self._lock:
            return self._rollouts

    @property
    def store_dir(self) -> Optional[str]:
        with self._lock:
            return self._store_dir

    # -- spawning ---------------------------------------------------------
    def _spawn(self, slot: int) -> WorkerHandle:
        with self._lock:
            store_dir = self._store_dir
            self._incarnations += 1
            incarnation = self._incarnations
        spec = replace(
            self.spec,
            store_dir=store_dir,
            kwargs=dict(self.spec.kwargs),
            service=dict(self.spec.service),
        )
        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=worker_main,
            args=(spec, child_conn),
            name=f"repro-net-worker-{slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.spawn_timeout_s):
            process.terminate()
            raise SupervisorError(
                f"worker {slot} did not report ready within "
                f"{self.spawn_timeout_s}s"
            )
        ready = parent_conn.recv()
        parent_conn.close()
        if "error" in ready:
            process.join(timeout=5.0)
            raise SupervisorError(
                f"worker {slot} failed to start: {ready['error']}"
            )
        handle = WorkerHandle(
            slot=slot,
            incarnation=incarnation,
            process=process,
            host=spec.host,
            port=int(ready["port"]),
            generation=int(ready["generation"]),
            pid=int(ready["pid"]),
        )
        with self._lock:
            self._slots[slot] = handle
        return handle

    def _notify(self) -> None:
        if self.on_change is not None:
            self.on_change(self.handles())

    # -- health / store watching ------------------------------------------
    def _health_loop(self) -> None:
        while not self._stop.wait(self.health_interval_s):
            restarted = False
            with self._lock:
                dead = [
                    slot
                    for slot, handle in self._slots.items()
                    if not handle.alive()
                ]
            for slot in dead:
                if self._stop.is_set():
                    return
                try:
                    self._spawn(slot)
                except SupervisorError:
                    continue  # next tick retries the slot
                with self._lock:
                    self._restarts += 1
                restarted = True
            if restarted:
                self._notify()
            if self.watch_store and not self._stop.is_set():
                self._maybe_rollout()

    def _maybe_rollout(self) -> None:
        with self._lock:
            store_dir = self._store_dir
            current = min(
                (h.generation for h in self._slots.values()),
                default=None,
            )
        if store_dir is None or current is None:
            return
        published = store_generation(store_dir)
        if published is not None and published > current:
            self.rollout(store_dir)

    # -- hot reload -------------------------------------------------------
    def rollout(self, store_dir: Optional[str] = None) -> List[int]:
        """Roll every worker onto ``store_dir``'s generation, one at a time.

        A worker that fails its reload (or died mid-rollout) is respawned
        directly against the new store. Returns the per-slot generations
        after the roll.
        """
        with self._lock:
            target = store_dir or self._store_dir
            self._store_dir = target
        generations: List[int] = []
        for slot in sorted(self._slots_snapshot()):
            if self._stop.is_set():
                break
            handle = self._slots_snapshot().get(slot)
            if handle is None:
                continue
            try:
                response = worker_control(
                    handle, {"op": "reload", "store_dir": target}
                )
                if not response.get("ok"):
                    raise SupervisorError(
                        f"reload rejected: {response.get('error')}"
                    )
                generation = int(response["generation"])
                with self._lock:
                    handle.generation = generation
            except (OSError, ProtocolError, SupervisorError, KeyError,
                    ValueError):
                # the worker is wedged or gone: replace it outright —
                # the fresh spawn attaches the new store by construction
                handle.process.terminate()
                handle.process.join(timeout=10.0)
                replacement = self._spawn(slot)
                generation = replacement.generation
                self._notify()
            generations.append(generation)
        with self._lock:
            self._rollouts += 1
        return generations

    def _slots_snapshot(self) -> Dict[int, WorkerHandle]:
        with self._lock:
            return dict(self._slots)
