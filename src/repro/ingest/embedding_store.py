"""Persistent, versioned store for the stacked triple embedding matrix.

The single-matmul retrieval path (:class:`repro.retriever.single.
SingleRetriever`) scores queries against one L2-normalizable
``(total_triples, dim)`` float64 matrix plus a segment layout
(doc-id-ordered document ids and per-document row offsets). Re-deriving
that matrix means re-encoding every flattened triple — by far the most
expensive step of a cold start. This module persists it:

* ``manifest.json`` — format version, matrix geometry, the segment
  layout, per-document row hashes (:func:`~repro.ingest.fingerprint.
  triples_fingerprint` of the flattened triples each segment encodes)
  and the encoder / construction fingerprints the rows were computed
  under.
* ``embeddings-<digest>.f32`` / ``.f64`` — the raw row-major matrix in
  the store's dtype (float32 under the default precision policy,
  float64 in exact parity mode), content-addressed by digest so a new
  generation never overwrites the file an existing manifest points at.
  The manifest's ``dtype`` field (format version 2) is authoritative;
  version-1 manifests predate the field and always load as float64 via
  an explicit legacy path.

Writes are crash-safe: the data file lands first under its new
content-addressed name, then the manifest is atomically replaced to
point at it, then stale generations are garbage-collected. A crash
between any two steps leaves a fully consistent (old or new) store.
Loads default to ``np.memmap`` so a multi-GB matrix warm-starts without
reading it eagerly; pages fault in as retrieval touches them.

GC keeps a one-generation grace window: a reader that loaded the
previous manifest an instant before a writer replaced it must still find
the data file that manifest names, so ``save`` records the outgoing
generation as ``grace_file`` and only collects it on the save *after*
next. ``open`` additionally retries once when the data file vanishes
between the manifest read and the memmap — the signature of racing an
even faster writer — by re-reading the (by then newer) manifest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.precision import (
    F64,
    PrecisionError,
    STORE_DTYPES,
    dtype_named,
    file_suffix,
    suffix_dtype,
)
from repro.storage.atomic import atomic_write_bytes, atomic_write_json

MANIFEST_NAME = "manifest.json"
STORE_VERSION = 2
#: Pre-dtype manifests: no ``dtype`` field, data always float64 ``.f64``.
LEGACY_STORE_VERSION = 1


def _attach_matrix(
    data_path: Path, rows: int, dim: int, mmap: bool
) -> np.ndarray:
    """Map or read the raw matrix file (module-level so tests can hook it).

    The dtype travels in the file suffix (``.f32``/``.f64``; anything
    else is a legacy float64 file), which keeps this hook's signature
    stable across the dtype-policy refactor.
    """
    dtype = suffix_dtype(data_path.suffix.lstrip("."))
    if mmap:
        return np.memmap(data_path, dtype=dtype, mode="r", shape=(rows, dim))
    return np.fromfile(data_path, dtype=dtype).reshape(rows, dim)


class EmbeddingStoreError(RuntimeError):
    """The on-disk store is missing, corrupt, or from another version."""


class _DataFileVanished(Exception):
    """Internal: the manifest's data file disappeared mid-open (GC race)."""


@dataclass
class EmbeddingStore:
    """The stacked embedding matrix + segment layout, ready to persist.

    ``matrix`` holds the *unnormalized* encoder outputs; normalization is
    deterministic and cheap, so it is recomputed at attach time rather
    than doubling the artifact size.
    """

    matrix: np.ndarray  # (total_rows, dim) float32/float64, maybe a memmap
    doc_ids: List[int]  # ascending document ids, one per segment
    offsets: List[int]  # segment start row per document
    row_hashes: Dict[int, str]  # doc_id -> triples_fingerprint
    encoder_fingerprint: str
    construction_fingerprint: str = ""
    extra: Dict[str, object] = field(default_factory=dict)
    #: Monotonic publish counter: ``save`` writes previous + 1 into the
    #: manifest; a freshly built (never-persisted) store is generation 0.
    #: Two saves of identical content share a data file but still get
    #: distinct generations — "what the fleet serves" is a publish event,
    #: not a content identity, which is what hot reload needs to observe.
    generation: int = 0

    @property
    def dim(self) -> int:
        return int(self.matrix.shape[1]) if self.matrix.ndim == 2 else 0

    def segment(self, index: int) -> np.ndarray:
        """The embedding rows of the ``index``-th document segment."""
        start = self.offsets[index]
        stop = (
            self.offsets[index + 1]
            if index + 1 < len(self.offsets)
            else self.matrix.shape[0]
        )
        return self.matrix[start:stop]

    # -- persistence -----------------------------------------------------
    def save(self, directory: Union[str, Path]) -> Path:
        """Write a new store generation under ``directory`` (crash-safe).

        The previous generation's data file survives this save as the
        manifest's ``grace_file`` and is collected on the save after
        next. Unlinking it immediately would race concurrent readers: a
        reader that loaded the previous manifest just before this save
        replaced it would find its data file gone mid-``open``.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest_path = directory / MANIFEST_NAME
        previous = {}
        if manifest_path.exists():
            try:
                previous = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                previous = {}  # corrupt previous manifest: nothing to grace
        previous_data = previous.get("data_file")
        previous_grace = previous.get("grace_file")
        try:
            generation = int(previous.get("generation", 0)) + 1
        except (TypeError, ValueError):
            generation = 1
        # persist the matrix in its own (policy-chosen) dtype; anything
        # that is not a supported store dtype is canonicalized to float64,
        # matching the pre-dtype-policy behaviour
        dtype = np.dtype(self.matrix.dtype)
        if dtype.name not in STORE_DTYPES:
            dtype = F64
        matrix = np.ascontiguousarray(self.matrix, dtype=dtype)
        raw = matrix.tobytes()
        digest = hashlib.sha256(raw).hexdigest()
        data_name = f"embeddings-{digest[:16]}.{file_suffix(dtype)}"
        atomic_write_bytes(directory / data_name, raw)
        if previous_data == data_name:
            # content unchanged: the outgoing generation IS this one, so
            # the previous grace entry stays in its window
            grace = previous_grace
        else:
            grace = previous_data
        manifest = {
            "version": STORE_VERSION,
            "generation": generation,
            "dtype": dtype.name,
            "rows": int(matrix.shape[0]),
            "dim": int(matrix.shape[1]),
            "data_file": data_name,
            "grace_file": grace,
            "doc_ids": [int(d) for d in self.doc_ids],
            "offsets": [int(o) for o in self.offsets],
            "row_hashes": {str(d): h for d, h in self.row_hashes.items()},
            "encoder_fingerprint": self.encoder_fingerprint,
            "construction_fingerprint": self.construction_fingerprint,
            "extra": self.extra,
        }
        atomic_write_json(directory / MANIFEST_NAME, manifest)
        self.generation = generation
        # GC generations outside the grace window; done last so a crash
        # before this point leaves the previous generation loadable
        keep = {data_name, grace}
        # all suffixes: a dtype change mid-history must still collect the
        # other-dtype generations outside the grace window
        for stale in directory.glob("embeddings-*"):
            if stale.name not in keep:
                stale.unlink(missing_ok=True)
        return directory

    @classmethod
    def open(
        cls, directory: Union[str, Path], mmap: bool = True
    ) -> "EmbeddingStore":
        """Load a store saved by :meth:`save`; raises on any inconsistency.

        Retries once when the manifest's data file vanishes between the
        manifest read and the matrix attach: that is the GC race with a
        concurrent writer two generations ahead, and re-reading the (by
        then replaced) manifest resolves it. A second vanish — or a size
        mismatch, which signals corruption rather than a race — raises.
        """
        try:
            return cls._open_once(directory, mmap=mmap)
        except _DataFileVanished:
            # GC race: re-read the (by now replaced) manifest once
            try:
                return cls._open_once(directory, mmap=mmap)
            except _DataFileVanished as error:
                raise EmbeddingStoreError(str(error)) from error

    @classmethod
    def _open_once(
        cls, directory: Union[str, Path], mmap: bool = True
    ) -> "EmbeddingStore":
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise EmbeddingStoreError(f"no embedding store at {directory}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise EmbeddingStoreError(f"unreadable manifest: {error}") from error
        version = manifest.get("version")
        if version == LEGACY_STORE_VERSION:
            # pre-PR-8 stores: no dtype field, data is always float64
            dtype = F64
        elif version == STORE_VERSION:
            try:
                dtype = dtype_named(str(manifest.get("dtype")))
            except PrecisionError as error:
                raise EmbeddingStoreError(
                    f"malformed manifest: {error}"
                ) from error
        else:
            raise EmbeddingStoreError(
                f"embedding store version {version!r} != {STORE_VERSION}"
            )
        try:
            rows = int(manifest["rows"])
            dim = int(manifest["dim"])
            data_file = manifest["data_file"]
            doc_ids = [int(d) for d in manifest["doc_ids"]]
            offsets = [int(o) for o in manifest["offsets"]]
            row_hashes = {
                int(d): str(h) for d, h in manifest["row_hashes"].items()
            }
            encoder_fp = str(manifest["encoder_fingerprint"])
            construction_fp = str(manifest.get("construction_fingerprint", ""))
        except (KeyError, TypeError, ValueError) as error:
            raise EmbeddingStoreError(f"malformed manifest: {error}") from error
        if len(doc_ids) != len(offsets):
            raise EmbeddingStoreError(
                f"{len(doc_ids)} doc ids but {len(offsets)} offsets"
            )
        data_path = directory / data_file
        try:
            actual = data_path.stat().st_size
        except FileNotFoundError as error:
            raise _DataFileVanished(
                f"missing data file {data_file}"
            ) from error
        expected = rows * dim * dtype.itemsize
        if actual != expected:
            # a size mismatch is corruption, not a GC race — don't retry
            raise EmbeddingStoreError(
                f"data file {data_file} is {actual} bytes, expected {expected}"
            )
        if rows == 0:
            matrix = np.zeros((0, dim), dtype=dtype)
        else:
            try:
                matrix = _attach_matrix(data_path, rows, dim, mmap)
            except FileNotFoundError as error:
                raise _DataFileVanished(
                    f"data file {data_file} vanished mid-open"
                ) from error
        return cls(
            matrix=matrix,
            doc_ids=doc_ids,
            offsets=offsets,
            row_hashes=row_hashes,
            encoder_fingerprint=encoder_fp,
            construction_fingerprint=construction_fp,
            extra=dict(manifest.get("extra") or {}),
            # legacy (v1) manifests predate the counter and read as 0
            generation=int(manifest.get("generation", 0) or 0),
        )


def store_generation(directory: Union[str, Path]) -> Optional[int]:
    """Peek the published generation without attaching the matrix.

    One manifest read — cheap enough for the supervisor to poll while
    watching for a new ``repro ingest`` publish. Returns ``None`` when no
    (readable) store exists at ``directory`` yet. Accepts both a bare
    store directory and a published artifact directory whose manifest
    lives under the ``embeddings/`` subdirectory (the ingest layout).
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        manifest_path = directory / "embeddings" / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    try:
        return int(manifest.get("generation", 0))
    except (TypeError, ValueError):
        return 0
