"""Unit tests for the multi-hop pipeline and path ranker."""

import numpy as np
import pytest

from repro.pipeline.multihop import DocumentPath, MultiHopConfig, MultiHopRetriever
from repro.pipeline.path_ranker import PathRanker, PathRankerConfig, PathRankerTrainer
from repro.updater.updater import QuestionUpdater


@pytest.fixture(scope="module")
def multihop(retriever, encoder):
    updater = QuestionUpdater(encoder)
    return MultiHopRetriever(
        retriever, updater, MultiHopConfig(k_hop1=4, k_hop2=3, k_paths=6)
    )


class TestMultiHop:
    def test_paths_returned(self, multihop, hotpot):
        paths = multihop.retrieve_paths(hotpot.test[0].text)
        assert paths
        assert all(len(p.doc_ids) == 2 for p in paths)

    def test_no_self_loops(self, multihop, hotpot):
        for question in hotpot.test[:5]:
            for path in multihop.retrieve_paths(question.text):
                assert path.doc_ids[0] != path.doc_ids[1]

    def test_paths_unique(self, multihop, hotpot):
        paths = multihop.retrieve_paths(hotpot.test[0].text)
        keys = [p.doc_ids for p in paths]
        assert len(keys) == len(set(keys))

    def test_scores_sorted(self, multihop, hotpot):
        paths = multihop.retrieve_paths(hotpot.test[0].text)
        scores = [p.score for p in paths]
        assert scores == sorted(scores, reverse=True)

    def test_eq8_additive_score(self, multihop, hotpot):
        for path in multihop.retrieve_paths(hotpot.test[0].text):
            assert path.score == pytest.approx(sum(path.hop_scores))

    def test_k_paths_limit(self, multihop, hotpot):
        paths = multihop.retrieve_paths(hotpot.test[0].text, k_paths=3)
        assert len(paths) <= 3

    def test_explain_mentions_hops(self, multihop, hotpot):
        path = multihop.retrieve_paths(hotpot.test[0].text)[0]
        text = path.explain()
        assert "hop 1" in text and "hop 2" in text

    def test_updated_question_recorded(self, multihop, hotpot):
        paths = multihop.retrieve_paths(hotpot.test[0].text)
        assert any(p.updated_question for p in paths)


class TestPathRanker:
    def test_score_paths_shape(self, retriever, multihop, hotpot):
        ranker = PathRanker(retriever)
        paths = multihop.retrieve_paths(hotpot.test[0].text)
        scores = ranker.score_paths(hotpot.test[0].text, paths)
        assert scores.shape == (len(paths),)

    def test_rerank_preserves_set(self, retriever, multihop, hotpot):
        ranker = PathRanker(retriever)
        paths = multihop.retrieve_paths(hotpot.test[0].text)
        reranked = ranker.rerank(hotpot.test[0].text, paths)
        assert {p.doc_ids for p in reranked} == {p.doc_ids for p in paths}

    def test_rerank_k_limit(self, retriever, multihop, hotpot):
        ranker = PathRanker(retriever)
        paths = multihop.retrieve_paths(hotpot.test[0].text)
        assert len(ranker.rerank(hotpot.test[0].text, paths, k=2)) == 2

    def test_rerank_empty(self, retriever):
        ranker = PathRanker(retriever)
        assert ranker.rerank("q", []) == []

    def test_build_examples_injects_gold(self, retriever, multihop, hotpot, corpus):
        ranker = PathRanker(retriever)
        trainer = PathRankerTrainer(ranker)
        examples = trainer.build_examples(
            hotpot.train[:8], corpus, multihop, max_candidates=4
        )
        assert examples
        for question_text, paths, gold in examples:
            gold_path = paths[gold]
            question = next(
                q for q in hotpot.train if q.text == question_text
            )
            assert gold_path.title_set == frozenset(question.gold_titles)

    def test_training_reduces_loss(self, retriever, multihop, hotpot, corpus):
        ranker = PathRanker(retriever, PathRankerConfig(epochs=3, lr=5e-3))
        trainer = PathRankerTrainer(ranker)
        examples = trainer.build_examples(
            hotpot.train[:10], corpus, multihop, max_candidates=4
        )
        losses = trainer.train(examples)
        assert losses[-1] < losses[0]
