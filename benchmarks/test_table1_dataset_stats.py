"""Table I — dataset statistics (bridge / comparison × train / test).

Paper (HotpotQA): train 72991 bridge / 17456 comparison, test 5918 / 1487
— bridge-heavy (~80%), test ≈ 8% of total. The synthetic dataset must
reproduce that mix.
"""

from repro.data.hotpot import build_hotpot_dataset
from repro.eval.experiments import run_table1
from repro.eval.tables import format_table


def test_table1_dataset_statistics(ctx, benchmark):
    stats = benchmark.pedantic(
        lambda: run_table1(ctx), rounds=1, iterations=1
    )
    rows = [
        [split, s["bridge"], s["comparison"], s["total"]]
        for split, s in stats.items()
    ]
    print()
    print(
        format_table(
            ["split", "bridge", "comparison", "total"],
            rows,
            title="Table I — dataset statistics",
        )
    )
    for split in ("train", "test"):
        split_stats = stats[split]
        assert split_stats["total"] > 0
        # bridge-heavy mix, as in HotpotQA
        assert split_stats["bridge"] > split_stats["comparison"]
    # test fraction near the configured 20%
    total = stats["train"]["total"] + stats["test"]["total"]
    assert 0.1 <= stats["test"]["total"] / total <= 0.3


def test_generation_throughput(ctx, benchmark):
    """Benchmark raw dataset generation speed."""
    world, corpus = ctx.world, ctx.corpus
    result = benchmark(
        lambda: build_hotpot_dataset(world, corpus, comparison_per_kind=5)
    )
    assert result.all_questions
