"""Table III — retrieval over different triple-fact extraction fields.

Paper shape: the constructed TFS (Algorithm 1 over the union) beats both
raw extractor fields, and MinIE-TFS beats StanfordIE-TFS on bridge
questions (MinIE handles long sentences better and minimizes constituents).
"""

import pytest

from repro.eval.experiments import run_table3
from repro.eval.tables import format_table


@pytest.fixture(scope="module")
def table3(ctx):
    return run_table3(ctx)


FIELDS = [
    ("triples", "TFS"),
    ("minie_triples", "MinIE-TFS"),
    ("stanford_triples", "StanfordIE-TFS"),
]


def test_table3_extractor_comparison(ctx, table3, benchmark):
    question = ctx.eval_questions[0].text
    benchmark(
        lambda: ctx.lexical.retrieve(question, k=10, field="minie_triples")
    )
    rows = []
    for split in ("train", "test"):
        for field, label in FIELDS:
            cards = table3[split][field]
            rows.append(
                [
                    f"{split}/{label}",
                    cards["hop1_pr"].rate("bridge"),
                    cards["hop1_pr"].rate("comparison"),
                    cards["hop2_pem"].rate("bridge"),
                    cards["hop2_pem"].rate("comparison"),
                ]
            )
    print()
    print(
        format_table(
            ["split/field", "hop1 bri", "hop1 com", "hop2 bri", "hop2 com"],
            rows,
            title="Table III — extraction fields (PR@10 hop1, PEM@10 hop2)",
        )
    )
    for split in ("train", "test"):
        # hop 1: constructed TFS within noise of the raw extractions
        tfs_hop1 = table3[split]["triples"]["hop1_pr"]
        minie_hop1 = table3[split]["minie_triples"]["hop1_pr"]
        stanford_hop1 = table3[split]["stanford_triples"]["hop1_pr"]
        assert tfs_hop1.total >= minie_hop1.total - 0.03
        assert tfs_hop1.total >= stanford_hop1.total - 0.03
        # hop 2 (where extraction quality matters): constructed TFS beats
        # both raw fields, and MinIE >= StanfordIE on bridge questions
        tfs_hop2 = table3[split]["triples"]["hop2_pem"]
        minie_hop2 = table3[split]["minie_triples"]["hop2_pem"]
        stanford_hop2 = table3[split]["stanford_triples"]["hop2_pem"]
        assert tfs_hop2.rate("bridge") >= minie_hop2.rate("bridge") - 0.03
        assert tfs_hop2.rate("bridge") >= stanford_hop2.rate("bridge") - 0.03
        assert minie_hop2.rate("bridge") >= stanford_hop2.rate("bridge") - 0.03


def test_table3_triple_set_sizes(ctx):
    """Algorithm 1 must actually shrink the representation it searches."""
    constructed = ctx.store.total_triples()
    minie = ctx.extractor_store("minie").total_triples()
    stanford = ctx.extractor_store("stanford").total_triples()
    print(
        f"\ntriple counts: constructed={constructed} "
        f"minie={minie} stanford={stanford} union~={minie + stanford}"
    )
    assert constructed < minie + stanford
