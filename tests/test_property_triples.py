"""Property-based tests for triple-set construction invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oie.triple import Triple
from repro.oie.union import dedupe_triples
from repro.triples.canopy import build_canopies
from repro.triples.construct import ConstructionConfig, TripleSetConstructor
from repro.triples.hac import hac_construct
from repro.triples.setcover import find_mother_child_pairs, greedy_cover
from repro.triples.sibling import fuse_siblings, sibling_similarity

word = st.sampled_from(
    "lynd davis club band quaker activist historian american famous "
    "founded played won formed is was in for".split()
)
phrase = st.lists(word, min_size=1, max_size=4).map(" ".join)
subjects = st.sampled_from(["Lynd", "Davis", "The club"])
predicates = st.sampled_from(["is", "was", "played for", "won"])

triples_strategy = st.lists(
    st.builds(
        Triple,
        subject=subjects,
        predicate=predicates,
        object=phrase,
    ),
    min_size=0,
    max_size=12,
)


class TestSetCoverProperties:
    @given(triples_strategy)
    @settings(max_examples=40, deadline=None)
    def test_cover_has_no_mother_child_pairs(self, triples):
        survivors = greedy_cover(triples)
        assert not find_mother_child_pairs(survivors)

    @given(triples_strategy)
    @settings(max_examples=40, deadline=None)
    def test_cover_is_subset(self, triples):
        survivors = greedy_cover(triples)
        assert len(survivors) <= len(triples)
        identity = {id(t) for t in triples}
        assert all(id(t) in identity for t in survivors)


class TestSiblingProperties:
    @given(triples_strategy)
    @settings(max_examples=40, deadline=None)
    def test_fusion_never_grows(self, triples):
        fused = fuse_siblings(triples)
        assert len(fused) <= len(triples)

    @given(triples_strategy)
    @settings(max_examples=40, deadline=None)
    def test_fusion_preserves_objects(self, triples):
        fused = fuse_siblings(triples)
        fused_text = " ".join(t.flatten().lower() for t in fused)
        # every original object's content survives somewhere (possibly
        # subsumed by a longer object that contains its tokens)
        for triple in triples:
            tokens = [w for w in triple.object.lower().split()]
            assert any(token in fused_text for token in tokens)

    @given(
        st.builds(Triple, subject=subjects, predicate=predicates, object=phrase),
        st.builds(Triple, subject=subjects, predicate=predicates, object=phrase),
    )
    @settings(max_examples=60, deadline=None)
    def test_similarity_symmetric_and_bounded(self, a, b):
        sim_ab = sibling_similarity(a, b)
        assert 0.0 <= sim_ab <= 1.0
        assert sim_ab == sibling_similarity(b, a)


class TestConstructionProperties:
    @given(triples_strategy, st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_threshold_respected(self, triples, threshold):
        constructor = TripleSetConstructor(
            ConstructionConfig(threshold_size=threshold)
        )
        result = constructor.construct(triples)
        assert len(result.triples) <= threshold

    @given(triples_strategy)
    @settings(max_examples=30, deadline=None)
    def test_counters_add_up(self, triples):
        constructor = TripleSetConstructor()
        result = constructor.construct(triples)
        assert result.union_size == len(dedupe_triples(triples))
        assert result.pruned_noise >= 0
        assert len(result.triples) <= result.union_size

    @given(triples_strategy)
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, triples):
        a = TripleSetConstructor().construct(triples)
        b = TripleSetConstructor().construct(triples)
        assert [t.flatten() for t in a.triples] == [
            t.flatten() for t in b.triples
        ]


class TestHACProperties:
    @given(triples_strategy, st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_hac_size_bounded(self, triples, threshold):
        out = hac_construct(triples, threshold)
        assert len(out) <= max(threshold, 0) or not triples
        if triples:
            assert len(out) == min(threshold, len(triples))


class TestCanopyProperties:
    @given(triples_strategy)
    @settings(max_examples=40, deadline=None)
    def test_canopies_partition_input(self, triples):
        canopies = build_canopies(triples)
        total = sum(len(c) for c in canopies)
        assert total == len(triples)
