"""Unit tests for nn layers: Linear, Embedding, LayerNorm, Dropout."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Embedding, LayerNorm, Linear, Module, Sequential
from repro.nn.tensor import Tensor


class TestModule:
    def test_parameter_registration(self):
        layer = Linear(3, 2)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_modules(self):
        seq = Sequential(Linear(3, 4), Linear(4, 2))
        assert len(seq.parameters()) == 4
        names = [n for n, _ in seq.named_parameters()]
        assert "0.weight" in names and "1.bias" in names

    def test_train_eval_propagates(self):
        seq = Sequential(Dropout(0.5), Linear(2, 2))
        seq.eval()
        assert not seq.steps[0].training
        seq.train()
        assert seq.steps[0].training

    def test_zero_grad(self):
        layer = Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLinear:
    def test_shape(self):
        layer = Linear(5, 3)
        out = layer(Tensor(np.zeros((2, 5))))
        assert out.shape == (2, 3)

    def test_no_bias(self):
        layer = Linear(5, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradient_flows(self):
        layer = Linear(3, 1)
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad.shape == (3, 1)
        np.testing.assert_allclose(layer.bias.grad, [4.0])

    def test_deterministic_with_rng(self):
        a = Linear(3, 3, rng=np.random.RandomState(1))
        b = Linear(3, 3, rng=np.random.RandomState(1))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_padding_row_zero(self):
        emb = Embedding(10, 4, padding_idx=0)
        np.testing.assert_array_equal(emb.weight.data[0], np.zeros(4))

    def test_scatter_add_backward(self):
        emb = Embedding(5, 3)
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], np.full(3, 2.0))
        np.testing.assert_allclose(emb.weight.grad[2], np.full(3, 1.0))
        np.testing.assert_allclose(emb.weight.grad[3], np.zeros(3))

    def test_padding_gets_no_gradient(self):
        emb = Embedding(5, 3, padding_idx=0)
        out = emb(np.array([0, 1]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))


class TestLayerNorm:
    def test_output_normalized(self):
        norm = LayerNorm(8)
        x = Tensor(np.random.RandomState(0).randn(3, 8) * 5 + 2)
        out = norm(x).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gamma_beta_trainable(self):
        norm = LayerNorm(4)
        out = norm(Tensor(np.random.randn(2, 4))).sum()
        out.backward()
        assert norm.gamma.grad is not None and norm.beta.grad is not None


class TestDropout:
    def test_eval_mode_identity(self):
        drop = Dropout(0.5)
        drop.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(drop(x).numpy(), x.numpy())

    def test_train_mode_zeroes_and_scales(self):
        drop = Dropout(0.5, rng=np.random.RandomState(0))
        out = drop(Tensor(np.ones((100, 100)))).numpy()
        assert (out == 0).any()
        # surviving entries are scaled by 1/keep
        assert np.isclose(out[out > 0].mean(), 2.0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_p_zero_identity(self):
        drop = Dropout(0.0)
        x = Tensor(np.ones(5))
        np.testing.assert_array_equal(drop(x).numpy(), x.numpy())
