"""Masked-language-model pre-training (the "P" of the PLM).

The paper starts from a public BERT checkpoint; offline, the equivalent is
a short MLM pass over the corpus itself: 15% of tokens are selected, of
which 80% become [MASK], 10% a random token, 10% unchanged, and the
encoder predicts the originals through an output projection tied to the
input embedding matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.encoder.minibert import MiniBertEncoder
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


@dataclass
class PretrainConfig:
    """MLM pre-training knobs (BERT recipe, shrunk)."""

    epochs: int = 2
    batch_size: int = 16
    lr: float = 3e-3
    mask_prob: float = 0.15
    seed: int = 11
    max_sentences: Optional[int] = None  # cap the corpus sample


class MLMPretrainer:
    """Runs MLM pre-training over a list of sentences."""

    def __init__(self, encoder: MiniBertEncoder, config: Optional[PretrainConfig] = None):
        self.encoder = encoder
        self.config = config or PretrainConfig()
        self._rng = np.random.RandomState(self.config.seed)

    def _mask_batch(self, ids: np.ndarray, mask: np.ndarray):
        """BERT masking: returns (corrupted ids, MLM targets).

        Targets are the original ids at selected positions and pad
        elsewhere (pad id acts as the ignore index).
        """
        vocab = self.encoder.vocab
        rng = self._rng
        special = {vocab.pad_id, vocab.cls_id, vocab.sep_id}
        corrupted = ids.copy()
        targets = np.full_like(ids, vocab.pad_id)
        maskable = mask.astype(bool)
        for special_id in special:
            maskable &= ids != special_id
        selected = maskable & (rng.rand(*ids.shape) < self.config.mask_prob)
        targets[selected] = ids[selected]
        roll = rng.rand(*ids.shape)
        to_mask = selected & (roll < 0.8)
        to_random = selected & (roll >= 0.8) & (roll < 0.9)
        corrupted[to_mask] = vocab.mask_id
        corrupted[to_random] = rng.randint(
            len(vocab), size=int(to_random.sum())
        )
        return corrupted, targets

    def train(self, sentences: Sequence[str], verbose: bool = False) -> List[float]:
        """Run MLM pre-training; returns the per-epoch mean loss."""
        cfg = self.config
        sentences = list(sentences)
        if cfg.max_sentences is not None:
            self._rng.shuffle(sentences)
            sentences = sentences[: cfg.max_sentences]
        if not sentences:
            return []
        model = self.encoder.model
        model.train()
        optimizer = Adam(model.parameters(), lr=cfg.lr)
        losses: List[float] = []
        for epoch in range(cfg.epochs):
            order = self._rng.permutation(len(sentences))
            epoch_losses: List[float] = []
            for start in range(0, len(sentences), cfg.batch_size):
                batch = [sentences[i] for i in order[start : start + cfg.batch_size]]
                ids, mask = self.encoder.batch_ids(batch)
                corrupted, targets = self._mask_batch(ids, mask)
                if (targets != self.encoder.vocab.pad_id).sum() == 0:
                    continue
                optimizer.zero_grad()
                hidden = model(corrupted, mask=mask)  # (B, S, D)
                flat = hidden.reshape(-1, model.dim)
                # tied output projection: logits = hidden @ E^T
                logits = flat @ model.token_embedding.weight.transpose(1, 0)
                loss = cross_entropy(
                    logits,
                    targets.reshape(-1),
                    ignore_index=self.encoder.vocab.pad_id,
                )
                loss.backward()
                optimizer.clip_grad_norm(5.0)
                optimizer.step()
                epoch_losses.append(loss.item())
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
            losses.append(mean_loss)
            if verbose:  # pragma: no cover - console output
                print(f"[mlm] epoch {epoch + 1}/{cfg.epochs} loss={mean_loss:.4f}")
        model.eval()
        return losses
