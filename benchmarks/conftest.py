"""Shared benchmark fixtures.

The experiment context (corpus, triple stores, trained retriever, trained
baselines) is built once per session and shared by every table benchmark.
Scale via REPRO_BENCH_SCALE=small|full (default small).
"""

import pytest

from repro.eval.harness import shared_context


@pytest.fixture(scope="session")
def ctx():
    return shared_context()


@pytest.fixture(scope="session")
def trained_system(ctx):
    """The fully trained Triple-Fact Retrieval system (expensive, cached)."""
    return ctx.system
