"""Rule-based coreference resolution.

The paper runs neuralcoref over each Wikipedia document before OIE so that
triples extracted from later sentences carry the document's title entity as
their subject ("He played ..." -> "Walter Otto Davis played ...").

Encyclopedic intro paragraphs are the easy case for coreference: the first
sentence introduces the title entity, later sentences refer to it with
pronouns ("he", "she", "it", "the band", "the club") or a possessive
("his", "her", "its"). This resolver implements exactly that pattern:

* track the most recent *salient* entity (default: the document title),
* replace subject-position pronouns with the salient entity,
* replace possessive pronouns with "<entity> 's",
* replace definite nominals ("the band", "the club") with the entity when
  the entity's type matches.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.text.sentences import split_sentences

_SUBJECT_PRONOUNS = {"he", "she", "it", "they"}
_POSSESSIVE_PRONOUNS = {"his", "her", "its", "their"}
_OBJECT_PRONOUNS = {"him", "them"}

# Definite nominal heads that commonly re-mention a title entity, keyed by
# the entity kind they are compatible with.
_NOMINAL_HEADS = {
    "band": "band",
    "group": "band",
    "club": "club",
    "team": "club",
    "city": "city",
    "town": "city",
    "company": "company",
    "firm": "company",
    "album": "album",
    "film": "film",
    "movie": "film",
    "song": "song",
    "player": "person",
    "author": "person",
    "singer": "person",
}


@dataclass
class Mention:
    """A resolved mention: surface span replaced by an entity name."""

    surface: str
    entity: str
    sentence_index: int


@dataclass
class CorefResult:
    """Output of :func:`resolve_coreferences`."""

    text: str
    sentences: List[str]
    mentions: List[Mention] = field(default_factory=list)


def _pronoun_pattern() -> re.Pattern:
    words = sorted(
        _SUBJECT_PRONOUNS | _POSSESSIVE_PRONOUNS | _OBJECT_PRONOUNS,
        key=len,
        reverse=True,
    )
    return re.compile(r"\b(" + "|".join(words) + r")\b", re.IGNORECASE)


_PRONOUN_RE = _pronoun_pattern()
_NOMINAL_RE = re.compile(
    r"\bthe (" + "|".join(sorted(_NOMINAL_HEADS, key=len, reverse=True)) + r")\b",
    re.IGNORECASE,
)


def resolve_coreferences(
    text: str,
    title: Optional[str] = None,
    entity_kind: Optional[str] = None,
) -> CorefResult:
    """Resolve pronouns / definite nominals in ``text`` to ``title``.

    Parameters
    ----------
    text:
        The document body.
    title:
        The document's title entity. If ``None``, the subject of the first
        sentence (tokens before the first verb-ish word) is used.
    entity_kind:
        Optional kind tag (``"person"``, ``"band"``, ...) enabling definite
        nominal resolution ("the band" -> title for kind ``"band"``).

    Returns a :class:`CorefResult` whose ``text`` has mentions replaced.
    """
    sentences = split_sentences(text)
    if not sentences:
        return CorefResult(text=text, sentences=[])
    antecedent = title or _guess_title(sentences[0])
    mentions: List[Mention] = []
    resolved: List[str] = []
    for idx, sentence in enumerate(sentences):
        if idx == 0:
            # never rewrite the introducing sentence
            resolved.append(sentence)
            continue
        new_sentence = _resolve_sentence(
            sentence, antecedent, entity_kind, idx, mentions
        )
        resolved.append(new_sentence)
    return CorefResult(text=" ".join(resolved), sentences=resolved, mentions=mentions)


def _guess_title(first_sentence: str) -> str:
    """Heuristic title = leading capitalized span of the first sentence."""
    match = re.match(r"^((?:[A-Z][\w.'-]*\s*)+)", first_sentence)
    if match:
        return match.group(1).strip()
    return first_sentence.split()[0] if first_sentence.split() else ""


def _resolve_sentence(
    sentence: str,
    antecedent: str,
    entity_kind: Optional[str],
    idx: int,
    mentions: List[Mention],
) -> str:
    if not antecedent:
        return sentence

    def replace_pronoun(match: re.Match) -> str:
        word = match.group(1)
        lowered = word.lower()
        # only rewrite sentence-initial subject pronouns and possessives:
        # mid-sentence "it"/"they" are too ambiguous for a rule system.
        at_start = match.start() == 0
        if lowered in _SUBJECT_PRONOUNS and at_start:
            mentions.append(Mention(word, antecedent, idx))
            return antecedent
        if lowered in _POSSESSIVE_PRONOUNS:
            mentions.append(Mention(word, antecedent, idx))
            return antecedent + " 's"
        return word

    out = _PRONOUN_RE.sub(replace_pronoun, sentence)

    if entity_kind:
        def replace_nominal(match: re.Match) -> str:
            head = match.group(1).lower()
            if _NOMINAL_HEADS.get(head) == entity_kind:
                mentions.append(Mention(match.group(0), antecedent, idx))
                return antecedent
            return match.group(0)

        out = _NOMINAL_RE.sub(replace_nominal, out)
    return out
