"""Command-line interface.

Subcommands::

    python -m repro.cli build  --out model_dir [--persons 70 ...]
    python -m repro.cli ingest --out cache_dir [--workers 4] [--stats ...]
    python -m repro.cli query  --model model_dir "When was the club ... ?"
    python -m repro.cli query  --model model_dir --batch queries.txt
    python -m repro.cli eval   --model model_dir [--n 100]
    python -m repro.cli demo   "a sentence or two of text"   # OIE + Alg.1
    python -m repro.cli lint   [paths ...] [--jobs N] [--output report.json]
    python -m repro.cli serve-bench --model model_dir [--threads 8 ...]
    python -m repro.cli serve  --listen HOST:PORT --workers N [--store DIR]
    python -m repro.cli net-bench --synthetic [--workers 4 --threads 8 ...]

``build`` trains the full system on a freshly generated world and saves it
(plus the world seed, so ``query``/``eval`` can rebuild the same corpus).
``ingest`` runs the offline stage alone — parallel, incremental triple
extraction (optionally + encoding) into an on-disk artifact cache that
later runs refresh instead of rebuild. ``lint`` runs the repo's own
static analyzer (``repro.analysis``) and exits non-zero when any rule
fires. ``serve-bench`` stands up the in-process :mod:`repro.serve`
service and replays a query file from many client threads, reporting
throughput / latency / batching / cache stats. ``serve`` stands up the
*networked* fleet instead — an asyncio front door over N worker
processes (:mod:`repro.net`) with crash recovery and hot store reload —
and ``net-bench`` replays a query stream through that fleet over TCP.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
from pathlib import Path

from repro.data.documents import build_corpus
from repro.data.hotpot import build_hotpot_dataset
from repro.data.world import World, WorldConfig
from repro.encoder.minibert import EncoderConfig
from repro.eval.metrics import RetrievalScorecard, path_exact_match
from repro.perf import COUNTERS
from repro.pipeline.framework import FrameworkConfig, TripleFactRetrieval
from repro.retriever.trainer import TrainerConfig
from repro.storage.atomic import atomic_write_json


def _world_config(args) -> WorldConfig:
    return WorldConfig(
        n_persons=args.persons,
        n_clubs=args.clubs,
        n_bands=args.bands,
        n_cities=args.cities,
        seed=args.seed,
    )


def _rebuild(model_dir: Path):
    meta = json.loads((model_dir / "meta.json").read_text())
    world = World(WorldConfig(**meta["world"]))
    corpus = build_corpus(world)
    dataset = build_hotpot_dataset(world, corpus, **meta["dataset"])
    config = FrameworkConfig(
        encoder=EncoderConfig(**meta["encoder"]),
    )
    system = TripleFactRetrieval.load(model_dir, corpus, config=config)
    return system, world, corpus, dataset


def cmd_build(args) -> int:
    world_config = _world_config(args)
    world = World(world_config)
    corpus = build_corpus(world)
    dataset_kwargs = {"comparison_per_kind": args.comparisons}
    dataset = build_hotpot_dataset(world, corpus, **dataset_kwargs)
    encoder_config = EncoderConfig(
        dim=args.dim, n_layers=1, n_heads=4, max_len=40, residual_scale=0.05
    )
    config = FrameworkConfig(
        encoder=encoder_config,
        retriever=TrainerConfig(epochs=args.epochs, lr=3e-4),
        verbose=True,
    )
    print(f"building: {len(corpus)} docs, {len(dataset.train)} train questions")
    system = TripleFactRetrieval(config).fit(corpus, dataset)
    out = Path(args.out)
    system.save(out)
    meta = {
        "world": world_config.__dict__,
        "dataset": dataset_kwargs,
        "encoder": encoder_config.__dict__,
    }
    atomic_write_json(out / "meta.json", meta)
    print(f"saved to {out}")
    return 0


def cmd_ingest(args) -> int:
    from repro.ingest import IngestPipeline

    world = World(_world_config(args))
    corpus = build_corpus(world)
    pipeline = IngestPipeline(
        corpus,
        workers=args.workers,
        incremental=not args.no_incremental,
    )
    encoder = None
    if args.encode:
        from repro.encoder.minibert import MiniBertEncoder
        from repro.text.tokenize import tokenize
        from repro.text.vocab import Vocab

        vocab = Vocab.from_texts([d.text for d in corpus], tokenize)
        encoder = MiniBertEncoder(
            vocab,
            EncoderConfig(
                dim=args.dim, n_layers=1, n_heads=4, max_len=40,
                residual_scale=0.05,
            ),
            precision=args.precision,
        )
    if args.quantize and not args.shards:
        print("error: --quantize requires --shards", file=sys.stderr)
        return 2
    result = pipeline.run(Path(args.out), encoder=encoder)
    print(
        f"ingested {result.stats.docs_total} docs "
        f"({result.stats.triples_total} triples) into {args.out}"
    )
    if args.shards:
        if result.embeddings is None:
            print(
                "error: --shards requires --encode (no embedding store "
                "to split)",
                file=sys.stderr,
            )
            return 2
        from repro.shard import ShardedEmbeddingStore

        sharded = ShardedEmbeddingStore.split(
            result.embeddings, args.shards, mode=args.shard_mode
        )
        shards_dir = Path(args.out) / "shards"
        sharded.save(shards_dir, quantize=args.quantize)
        print(
            f"sharded {sharded.total_docs} docs into {sharded.n_shards} "
            f"{sharded.mode} shard(s) under {shards_dir}"
            + (" with int8 sidecars" if args.quantize else "")
        )
    if args.stats:
        print(result.stats.summary())
    return 0


def _read_query_file(path: Path):
    """Non-empty stripped lines of a query file (one question per line)."""
    lines = path.read_text(encoding="utf-8").splitlines()
    return [line.strip() for line in lines if line.strip()]


def cmd_query(args) -> int:
    if (args.question is None) == (args.batch is None):
        print(
            "error: provide exactly one of a question or --batch FILE",
            file=sys.stderr,
        )
        return 2
    system, _world, _corpus, _dataset = _rebuild(Path(args.model))
    COUNTERS.reset()
    if args.batch is not None:
        questions = _read_query_file(Path(args.batch))
        if not questions:
            print(f"error: no queries in {args.batch}", file=sys.stderr)
            return 2
        # one bulk retrieve_paths_batch call: encoding and both hops
        # amortize over the whole file instead of running per question
        path_lists = system.retrieve_paths_many(questions, k=args.k)
        for question, paths in zip(questions, path_lists):
            print(f"=== {question}")
            for path in paths:
                print(path.explain())
                print()
    else:
        for path in system.retrieve_paths(args.question, k=args.k):
            print(path.explain())
            print()
    if args.stats:
        print(COUNTERS.summary())
    return 0


def cmd_eval(args) -> int:
    system, _world, _corpus, dataset = _rebuild(Path(args.model))
    card = RetrievalScorecard()
    questions = dataset.test[: args.n]
    COUNTERS.reset()
    for question in questions:
        paths = system.retrieve_paths(question.text, k=8)
        card.add(
            question.qtype,
            path_exact_match([p.titles for p in paths], question.gold_titles),
        )
    print(f"questions: {len(questions)}")
    for qtype in sorted(card.hits):
        print(f"  {qtype}: PEM@8 = {card.rate(qtype):.3f}")
    print(f"  total: PEM@8 = {card.total:.3f}")
    if args.stats:
        print(COUNTERS.summary())
    return 0


def cmd_demo(args) -> int:
    from repro.oie.union import extract_union
    from repro.triples.construct import TripleSetConstructor

    union = extract_union(args.text)
    print(f"union extraction T_o ({len(union)} triples):")
    for triple in union:
        print(f"  {triple}")
    result = TripleSetConstructor().construct(union)
    print(f"\nconstructed T_d ({len(result.triples)} triples, "
          f"{result.removed_children} children removed, {result.fused} fused):")
    for triple in result.triples:
        print(f"  {triple}")
    return 0


def _split_rule_ids(raw: str):
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def cmd_lint(args) -> int:
    from repro.analysis import (
        all_rule_ids,
        load_config,
        render_json,
        render_text,
        run_lint,
    )
    from repro.analysis.cache import DEFAULT_CACHE_DIR
    from repro.analysis.core import REGISTRY
    from repro.storage.atomic import atomic_write_text

    if args.list_rules:
        for rule_id in all_rule_ids():
            print(f"{rule_id}: {REGISTRY[rule_id].description}")
        return 0
    config = load_config(Path.cwd())
    paths = [Path(p) for p in (args.paths or config.paths)]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = Path(args.cache_dir)
    else:
        cache_dir = (config.root or Path.cwd()) / DEFAULT_CACHE_DIR
    try:
        report = run_lint(
            paths,
            select=_split_rule_ids(args.select) if args.select else None,
            ignore=_split_rule_ids(args.ignore) if args.ignore else None,
            config=config,
            jobs=args.jobs,
            cache_dir=cache_dir,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    renderer = render_json if args.format == "json" else render_text
    if args.output:
        # the report is itself an artifact: write it through the same
        # atomic path the nonatomic-artifact-write rule enforces
        atomic_write_text(Path(args.output), render_json(report) + "\n")
    print(renderer(report))
    return 1 if report.findings else 0


def cmd_serve_bench(args) -> int:
    from repro.serve import RetrievalService, ServiceConfig

    system, _world, _corpus, dataset = _rebuild(Path(args.model))
    if args.queries is not None:
        questions = _read_query_file(Path(args.queries))
    else:
        questions = [q.text for q in dataset.test[: args.n]]
    if not questions:
        print("error: no queries to replay", file=sys.stderr)
        return 2
    precision = None
    if args.precision is not None:
        from repro.precision import Precision

        precision = Precision(
            mode=args.precision, rescore_width=args.rescore_width
        )
        if precision.quantized and not args.shards:
            print(
                "error: --precision int8-rescore requires --shards",
                file=sys.stderr,
            )
            return 2
    if args.shards:
        system.retriever.build_shards(
            args.shards,
            mode=args.shard_mode,
            quantize=precision is not None and precision.quantized,
        )
    elif args.nprobe is not None:
        print(
            "error: --nprobe requires --shards", file=sys.stderr
        )
        return 2
    config = ServiceConfig(
        max_batch_size=args.batch_size,
        max_wait_ms=args.wait_ms,
        max_pending=max(64, args.threads * len(questions)),
        workers=args.workers,
        cache_size=args.cache_size,
        default_k=args.k,
        default_nprobe=args.nprobe,
        default_precision=precision.key() if precision else None,
    )
    service = RetrievalService(
        system.retriever, multihop=system.multihop, config=config
    )
    errors = []

    def client(seed: int) -> None:
        order = list(questions)
        random.Random(seed).shuffle(order)
        for question in order:
            try:
                if args.mode == "paths":
                    service.retrieve_paths(question, k=args.k, timeout=300)
                else:
                    service.retrieve(question, k=args.k, timeout=300)
            except Exception as error:  # bench keeps replaying; reported below
                errors.append(repr(error))

    with service:
        clients = [
            threading.Thread(target=client, args=(seed,))
            for seed in range(args.threads)
        ]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        snapshot = service.stats_snapshot()
        summary = service.stats_summary()
    if args.format == "json":
        # record the run parameters alongside the stats so the BENCH
        # artifact is reproducible without out-of-band context
        snapshot["run"] = {
            "mode": args.mode,
            "k": args.k,
            "threads": args.threads,
            "queries": len(questions),
            "precision": precision.key() if precision else None,
            "nprobe": args.nprobe,
            "shards": args.shards,
            "shard_mode": args.shard_mode if args.shards else None,
            "store_generation": getattr(
                system.retriever, "store_generation", None
            ),
            "encoder": COUNTERS.encoder_throughput(),
        }
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(
            f"replayed {len(questions)} queries x {args.threads} client "
            f"thread(s), mode={args.mode}, k={args.k}"
        )
        print(summary)
    if errors:
        print(
            f"{len(errors)} request error(s); first: {errors[0]}",
            file=sys.stderr,
        )
        return 1
    return 0


def _parse_listen(value: str):
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"--listen expects HOST:PORT, got {value!r}"
        )
    return host, int(port)


def _worker_spec(args):
    """Build the :class:`repro.net.WorkerSpec` shared by serve/net-bench."""
    from repro.net import WorkerSpec

    if args.model is not None:
        target = "repro.net.bootstrap:model_dir_bundle"
        kwargs = {"model_dir": str(args.model)}
    else:
        target = "repro.net.bootstrap:synthetic_bundle"
        kwargs = {
            "seed": args.synthetic_seed,
            "n_docs": args.synthetic_docs,
            "encoder": args.synthetic_encoder,
            "multihop": not args.no_multihop,
        }
    service = {
        "max_batch_size": args.batch_size,
        "max_wait_ms": args.wait_ms,
        "cache_size": args.cache_size,
    }
    return WorkerSpec(
        target=target,
        kwargs=kwargs,
        store_dir=str(args.store) if args.store else None,
        multihop=not args.no_multihop,
        shards=args.shards,
        shard_mode=args.shard_mode,
        service=service,
    )


def cmd_serve(args) -> int:
    from repro.net import Fleet

    if args.model is None and not args.synthetic:
        print(
            "error: provide --model DIR or --synthetic", file=sys.stderr
        )
        return 2
    host, port = args.listen
    spec = _worker_spec(args)
    fleet = Fleet(
        spec,
        workers=args.workers,
        host=host,
        port=port,
        watch_store=args.watch_store,
    )
    stop = threading.Event()
    with fleet:
        bound_host, bound_port = fleet.address
        print(
            f"serving on {bound_host}:{bound_port} with {args.workers} "
            f"worker process(es)"
            + (f", watching {args.store} for new generations"
               if args.watch_store else "")
        )
        try:
            # --run-seconds bounds the lifetime (tests, smoke runs);
            # otherwise serve until interrupted
            stop.wait(args.run_seconds)
        except KeyboardInterrupt:
            print("shutting down")
    return 0


def cmd_net_bench(args) -> int:
    import random as random_module

    from repro.net import Fleet, NetClient

    if args.model is None and not args.synthetic:
        print(
            "error: provide --model DIR or --synthetic", file=sys.stderr
        )
        return 2
    spec = _worker_spec(args)
    fleet = Fleet(spec, workers=args.workers)
    errors = []
    with fleet:
        with NetClient(fleet.address) as probe:
            pong = probe.ping()
            if not pong.get("ok"):
                print("error: fleet did not answer ping", file=sys.stderr)
                return 1
        if args.queries is not None:
            questions = _read_query_file(Path(args.queries))
        else:
            from repro.net import resolve_target

            bundle = resolve_target(spec.target)(**spec.kwargs)
            questions = bundle.questions[: args.n] or [
                f"synthetic query {i} ?" for i in range(args.n)
            ]

        def client_thread(seed: int) -> None:
            order = list(questions)
            random_module.Random(seed).shuffle(order)
            with NetClient(fleet.address) as client:
                for index, question in enumerate(order):
                    mode = args.mode
                    if mode == "mixed":
                        mode = "paths" if index % 4 == 0 else "single"
                    try:
                        client.query_raw(
                            question, mode=mode, k=args.k,
                            nprobe=args.nprobe, precision=args.precision,
                        )
                    except Exception as error:
                        errors.append(repr(error))

        threads = [
            threading.Thread(target=client_thread, args=(seed,))
            for seed in range(args.threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with NetClient(fleet.address) as client:
            stats = client.stats()
    generations = sorted(
        {w.get("generation") for w in stats.get("workers", [])}
    )
    # fleet-wide encoder token throughput: sum tokens and encode time
    # across the worker processes' own counters
    encoder_tokens = 0
    encoder_seconds = 0.0
    for worker in stats.get("workers", []):
        encoder = worker.get("encoder") or {}
        encoder_tokens += int(encoder.get("tokens", 0))
        encoder_seconds += float(encoder.get("seconds", 0.0))
    payload = {
        "run": {
            "mode": args.mode,
            "k": args.k,
            "threads": args.threads,
            "workers": args.workers,
            "queries": len(questions),
            "precision": args.precision,
            "nprobe": args.nprobe,
            "store_generations": generations,
            "encoder": {
                "tokens": encoder_tokens,
                "seconds": encoder_seconds,
                "tokens_per_sec": (
                    encoder_tokens / encoder_seconds
                    if encoder_seconds > 0
                    else 0.0
                ),
            },
        },
        "frontdoor": stats.get("frontdoor"),
        "aggregate": stats.get("aggregate"),
        "workers": stats.get("workers"),
        "errors": len(errors),
    }
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        front = payload["frontdoor"] or {}
        latency = front.get("latency_ms") or {}
        print(
            f"replayed {len(questions)} queries x {args.threads} client "
            f"thread(s) over {args.workers} worker(s), mode={args.mode}"
        )
        print(
            f"  frontdoor: {front.get('completed', 0)} completed, "
            f"{front.get('failed', 0)} failed, "
            f"{front.get('retried', 0)} retried"
        )
        if latency:
            print(
                f"  latency ms: p50 {latency.get('p50', 0):.2f}  "
                f"p95 {latency.get('p95', 0):.2f}  "
                f"p99 {latency.get('p99', 0):.2f}"
            )
        print(f"  store generation(s): {generations}")
    if errors:
        print(
            f"{len(errors)} request error(s); first: {errors[0]}",
            file=sys.stderr,
        )
        return 1
    return 0


def _add_fleet_arguments(parser) -> None:
    """Worker-fleet options shared by ``serve`` and ``net-bench``."""
    parser.add_argument(
        "--model", default=None,
        help="trained model dir (repro build); omit for --synthetic",
    )
    parser.add_argument(
        "--synthetic", action="store_true",
        help="serve a deterministic synthetic bundle (no model needed)",
    )
    parser.add_argument("--synthetic-seed", type=int, default=29)
    parser.add_argument("--synthetic-docs", type=int, default=48)
    parser.add_argument(
        "--synthetic-encoder", choices=("dyadic", "minibert"),
        default="minibert",
        help="synthetic bundle encoder (dyadic = exact/cheap)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="published artifact dir (store.json + embeddings/) to "
        "memmap-attach; workers warm-start with zero encoder calls",
    )
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes")
    parser.add_argument(
        "--no-multihop", action="store_true",
        help="serve single-hop only (skip the updater/multihop stack)",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="build an N-shard plan inside each worker",
    )
    parser.add_argument(
        "--shard-mode", choices=("range", "centroid"), default="range",
    )
    parser.add_argument("--batch-size", type=int, default=16,
                        help="per-worker micro-batch flush size")
    parser.add_argument("--wait-ms", type=float, default=2.0,
                        help="per-worker micro-batch window (ms)")
    parser.add_argument("--cache-size", type=int, default=1024,
                        help="per-worker result cache capacity (0 disables)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Triple-Fact Retriever CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="train and save a system")
    build.add_argument("--out", required=True)
    build.add_argument("--persons", type=int, default=70)
    build.add_argument("--clubs", type=int, default=20)
    build.add_argument("--bands", type=int, default=20)
    build.add_argument("--cities", type=int, default=25)
    build.add_argument("--comparisons", type=int, default=15)
    build.add_argument("--seed", type=int, default=13)
    build.add_argument("--dim", type=int, default=96)
    build.add_argument("--epochs", type=int, default=2)
    build.set_defaults(func=cmd_build)

    ingest = sub.add_parser(
        "ingest",
        help="run the offline stage (parallel, incremental) into a cache",
    )
    ingest.add_argument("--out", required=True, help="artifact cache dir")
    ingest.add_argument("--persons", type=int, default=70)
    ingest.add_argument("--clubs", type=int, default=20)
    ingest.add_argument("--bands", type=int, default=20)
    ingest.add_argument("--cities", type=int, default=25)
    ingest.add_argument("--seed", type=int, default=13)
    ingest.add_argument(
        "--workers", type=int, default=1,
        help="extraction worker processes (output is byte-identical "
        "regardless of worker count)",
    )
    ingest.add_argument(
        "--no-incremental", action="store_true",
        help="ignore prior artifacts and rebuild everything",
    )
    ingest.add_argument(
        "--encode", action="store_true",
        help="also encode triples into a persistent embedding store",
    )
    ingest.add_argument("--dim", type=int, default=96,
                        help="encoder dimension when --encode is given")
    ingest.add_argument(
        "--precision", choices=("float32", "float64"), default=None,
        help="embedding store dtype when --encode is given "
        "(default: the float32 policy default)",
    )
    ingest.add_argument(
        "--quantize", action="store_true",
        help="also write per-shard int8 sidecars (requires --shards)",
    )
    ingest.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="also split the embedding store into N shard stores under "
        "OUT/shards (requires --encode)",
    )
    ingest.add_argument(
        "--shard-mode", choices=("range", "centroid"), default="range",
        help="document-to-shard assignment: contiguous doc-id ranges or "
        "coarse k-means centroids (better pruned-recall)",
    )
    ingest.add_argument(
        "--stats", action="store_true",
        help="print per-stage ingest counters and timings",
    )
    ingest.set_defaults(func=cmd_ingest)

    query = sub.add_parser("query", help="ask a trained system a question")
    query.add_argument("--model", required=True)
    query.add_argument("--k", type=int, default=3)
    query.add_argument(
        "--stats", action="store_true",
        help="print retrieval perf counters (encodes, matmul time)",
    )
    query.add_argument(
        "--batch", default=None, metavar="FILE",
        help="file with one question per line; answered in one bulk "
        "retrieval call (mutually exclusive with a positional question)",
    )
    query.add_argument("question", nargs="?", default=None)
    query.set_defaults(func=cmd_query)

    evaluate = sub.add_parser("eval", help="evaluate path PEM@8 on the test set")
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--n", type=int, default=100)
    evaluate.add_argument(
        "--stats", action="store_true",
        help="print retrieval perf counters (encodes, matmul time)",
    )
    evaluate.set_defaults(func=cmd_eval)

    demo = sub.add_parser("demo", help="run OIE + Algorithm 1 on raw text")
    demo.add_argument("text")
    demo.set_defaults(func=cmd_demo)

    lint = sub.add_parser(
        "lint", help="run the repo static analyzer (repro.analysis)"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: [tool.repro.lint] paths)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format",
    )
    lint.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    lint.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan per-file analysis over N worker processes",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="disable the per-file result cache",
    )
    lint.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache location (default: <root>/.repro-lint-cache)",
    )
    lint.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the JSON report to FILE (atomic replace)",
    )
    lint.set_defaults(func=cmd_lint)

    serve_bench = sub.add_parser(
        "serve-bench",
        help="replay queries through repro.serve from N client threads",
    )
    serve_bench.add_argument("--model", required=True)
    serve_bench.add_argument(
        "--queries", default=None, metavar="FILE",
        help="query file, one question per line "
        "(default: the model's own test questions)",
    )
    serve_bench.add_argument(
        "--n", type=int, default=32,
        help="test questions to use when --queries is not given",
    )
    serve_bench.add_argument("--threads", type=int, default=8,
                             help="client threads replaying the queries")
    serve_bench.add_argument("--k", type=int, default=3)
    serve_bench.add_argument(
        "--mode", choices=("single", "paths"), default="single",
        help="single-hop document retrieval or multi-hop path retrieval",
    )
    serve_bench.add_argument("--batch-size", type=int, default=16,
                             help="micro-batch flush size")
    serve_bench.add_argument("--wait-ms", type=float, default=2.0,
                             help="micro-batch window in milliseconds")
    serve_bench.add_argument("--workers", type=int, default=1,
                             help="service worker threads")
    serve_bench.add_argument("--cache-size", type=int, default=1024,
                             help="result cache capacity (0 disables)")
    serve_bench.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="shard the scoring matrix into N shards before serving",
    )
    serve_bench.add_argument(
        "--shard-mode", choices=("range", "centroid"), default="range",
        help="document-to-shard assignment when --shards is given",
    )
    serve_bench.add_argument(
        "--nprobe", type=int, default=None,
        help="shards probed per request (default: all = exact)",
    )
    serve_bench.add_argument(
        "--precision",
        choices=("float64", "float32", "int8-rescore"),
        default=None,
        help="precision policy of every replayed request (default: the "
        "retriever's own; int8-rescore requires --shards)",
    )
    serve_bench.add_argument(
        "--rescore-width", type=int, default=64,
        help="documents exactly rescored per query under int8-rescore",
    )
    serve_bench.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stats output format",
    )
    serve_bench.set_defaults(func=cmd_serve_bench)

    serve = sub.add_parser(
        "serve",
        help="serve retrieval over TCP: asyncio front door + N worker "
        "processes with hot store reload",
    )
    serve.add_argument(
        "--listen", type=_parse_listen, default=("127.0.0.1", 7371),
        metavar="HOST:PORT",
        help="front-door bind address (port 0 picks a free port)",
    )
    _add_fleet_arguments(serve)
    serve.add_argument(
        "--watch-store", action="store_true",
        help="poll --store for new generations and hot-roll the fleet "
        "automatically when `repro ingest` publishes one",
    )
    serve.add_argument(
        "--run-seconds", type=float, default=None, metavar="S",
        help="serve for S seconds then exit 0 (default: until Ctrl-C)",
    )
    serve.set_defaults(func=cmd_serve)

    net_bench = sub.add_parser(
        "net-bench",
        help="replay queries through a local worker fleet over TCP",
    )
    _add_fleet_arguments(net_bench)
    net_bench.add_argument(
        "--queries", default=None, metavar="FILE",
        help="query file, one question per line (default: the bundle's "
        "own deterministic questions)",
    )
    net_bench.add_argument("--n", type=int, default=32,
                           help="bundle questions to replay")
    net_bench.add_argument("--threads", type=int, default=8,
                           help="client threads")
    net_bench.add_argument("--k", type=int, default=3)
    net_bench.add_argument(
        "--mode", choices=("single", "paths", "mixed"), default="mixed",
        help="mixed interleaves multi-hop paths into the stream",
    )
    net_bench.add_argument(
        "--nprobe", type=int, default=None,
        help="shards probed per request (requires --shards)",
    )
    net_bench.add_argument(
        "--precision",
        choices=("float64", "float32", "int8-rescore"), default=None,
        help="precision policy of every replayed request",
    )
    net_bench.add_argument(
        "--format", choices=("text", "json"), default="text",
    )
    net_bench.set_defaults(func=cmd_net_bench)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
