"""The worker process: one `RetrievalService` behind a TCP socket.

Each worker is spawned by the supervisor with a :class:`WorkerSpec`,
rebuilds its serving bundle from the spec's importable factory target,
memmap-attaches the published embedding store (zero encoder calls, zero
matrix copies — the manifest's fingerprints prove the rows are reusable)
and serves the length-prefixed JSON protocol with the existing
micro-batcher underneath: per-connection reader threads submit straight
into :class:`~repro.serve.service.RetrievalService`, so coalescing,
admission control and deadlines all apply unchanged.

**Hot swap.** ``reload`` builds a *second* retriever/service on the new
store generation, then swaps the instance pointer under ``_swap_lock``
and drains the old service. Query submission snapshots
``(service, generation)`` under the same lock, which yields the two
properties the fleet guarantees: no request is ever submitted to a
stopped service (zero drops), and every response is tagged with exactly
the generation that scored it (no mixed-generation answers — a request
is answered wholly by the service it was submitted to).
"""

from __future__ import annotations

import os
import socket
import threading
import queue as queue_module
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.ingest.embedding_store import (
    EmbeddingStore,
    MANIFEST_NAME as STORE_MANIFEST_NAME,
)
from repro.net.bootstrap import ServingBundle, resolve_target
from repro.net.protocol import (
    ProtocolError,
    recv_frame,
    results_to_wire,
    send_frame,
)
from repro.perf import COUNTERS
from repro.retriever.store import TripleStore
from repro.serve import RetrievalService, ServiceConfig

#: ingest cache-dir layout (mirrors repro.ingest.pipeline without
#: importing the full pipeline into every worker)
STORE_NAME = "store.json"
EMBEDDINGS_DIR = "embeddings"


@dataclass
class WorkerSpec:
    """Everything needed to stand up one worker process.

    Picklable and JSON-safe: ``target`` names an importable
    :class:`~repro.net.bootstrap.ServingBundle` factory
    (``"module:function"``) and ``kwargs`` are its arguments, so the
    spec can cross process boundaries and be embedded in control frames.
    """

    target: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: published artifact dir (``store.json`` + ``embeddings/``) to
    #: warm-attach; None serves the bundle's own in-memory store cold
    store_dir: Optional[str] = None
    host: str = "127.0.0.1"
    multihop: bool = True
    #: build an in-worker shard plan over the attached matrix
    shards: int = 0
    shard_mode: str = "range"
    #: ServiceConfig field overrides (e.g. {"max_wait_ms": 1.0})
    service: Dict[str, Any] = field(default_factory=dict)


def _embeddings_dir(store_dir: Path) -> Optional[Path]:
    """Locate the embedding-store manifest under a published artifact dir."""
    nested = store_dir / EMBEDDINGS_DIR
    if (nested / STORE_MANIFEST_NAME).exists():
        return nested
    if (store_dir / STORE_MANIFEST_NAME).exists():
        return store_dir
    return None


class WorkerRuntime:
    """Socket front + service lifecycle of one worker process."""

    def __init__(self, bundle: ServingBundle, spec: WorkerSpec):
        self.bundle = bundle
        self.spec = spec
        self._swap_lock = threading.Lock()
        self._service, self._generation = self._build_service(spec.store_dir)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((spec.host, 0))
        self._listener.listen(64)
        self._shutdown = threading.Event()

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    @property
    def generation(self) -> int:
        with self._swap_lock:
            return self._generation

    # -- service construction / hot swap ---------------------------------
    def _build_service(
        self, store_dir: Optional[str]
    ) -> Tuple[RetrievalService, int]:
        """A fresh service on ``store_dir``'s current generation.

        Never mutates the live service's retriever: hot reload calls
        this for the new generation while the old pair keeps serving.
        """
        triples = self.bundle.store
        generation = 0
        embeddings: Optional[EmbeddingStore] = None
        if store_dir is not None:
            directory = Path(store_dir)
            store_path = directory / STORE_NAME
            if store_path.exists():
                triples = TripleStore.load(store_path, self.bundle.corpus)
            emb_dir = _embeddings_dir(directory)
            if emb_dir is not None:
                embeddings = EmbeddingStore.open(emb_dir, mmap=True)
        retriever = self.bundle.make_retriever(triples)
        if embeddings is not None:
            adopted = retriever.attach_embeddings(embeddings)
            if adopted == 0 and embeddings.matrix.shape[0] > 0:
                raise RuntimeError(
                    f"store at {store_dir} was rejected by attach "
                    "(fingerprint/layout mismatch)"
                )
            generation = embeddings.generation
        if self.spec.shards > 0:
            retriever.build_shards(self.spec.shards, mode=self.spec.shard_mode)
        multihop = (
            self.bundle.make_multihop(retriever)
            if self.spec.multihop
            else None
        )
        config = ServiceConfig(**dict(self.spec.service))
        service = RetrievalService(retriever, multihop=multihop, config=config)
        service.start()
        return service, generation

    def reload(self, store_dir: Optional[str] = None) -> int:
        """Atomically swap onto the (new) generation at ``store_dir``.

        Builds the replacement service first — a failure leaves the old
        one serving untouched. The pointer swap happens under the same
        lock submissions take, then the old service drains: everything
        already submitted completes on (and is tagged with) the old
        generation. Returns the new generation.
        """
        target = store_dir or self.spec.store_dir
        new_service, new_generation = self._build_service(target)
        with self._swap_lock:
            old_service = self._service
            self._service = new_service
            self._generation = new_generation
        if target is not None:
            self.spec.store_dir = target
        old_service.stop(drain=True)
        return new_generation

    # -- request handling -------------------------------------------------
    def _submit(self, message: Dict[str, Any]) -> Callable[[], Dict[str, Any]]:
        """Submit one query now; return a thunk that waits for its result.

        Submission happens under ``_swap_lock`` so a request can never
        race the hot swap into a stopped service, and the generation it
        captures is exactly the one that will score it.
        """
        request_id = message.get("id")
        question = message.get("question", "")
        mode = message.get("mode", "single")
        kwargs: Dict[str, Any] = {}
        for key in ("k", "nprobe"):
            if message.get(key) is not None:
                kwargs[key] = int(message[key])
        if message.get("precision") is not None:
            kwargs["precision"] = str(message["precision"])
        if message.get("deadline_s") is not None:
            kwargs["deadline_s"] = float(message["deadline_s"])
        timeout = float(message.get("timeout_s") or 300.0)
        try:
            with self._swap_lock:
                generation = self._generation
                pending = self._service.submit(question, mode=mode, **kwargs)
        except Exception as error:
            # Overloaded / ServiceStopped / bad-argument ValueError —
            # all surface to the client as typed error responses.
            # (rebound: `except` unbinds its name when the block exits,
            # which would NameError inside the deferred lambda)
            failure = error
            return lambda: _error_response(request_id, failure)

        def wait() -> Dict[str, Any]:
            try:
                results = pending.result(timeout)
            except Exception as error:
                return _error_response(request_id, error)
            return {
                "id": request_id,
                "ok": True,
                "mode": mode,
                "generation": generation,
                "results": results_to_wire(mode, results),
            }

        return wait

    def _handle(self, message: Any) -> Callable[[], Dict[str, Any]]:
        """Map one request frame to a deferred-response thunk."""
        if not isinstance(message, dict):
            return lambda: _error_response(
                None, ProtocolError("request frame must be a JSON object")
            )
        op = message.get("op", "query")
        request_id = message.get("id")
        if op == "query":
            return self._submit(message)
        if op == "ping":
            response = {
                "id": request_id,
                "ok": True,
                "op": "ping",
                "pid": os.getpid(),
                "generation": self.generation,
            }
            return lambda: response
        if op == "stats":
            def stats() -> Dict[str, Any]:
                with self._swap_lock:
                    service, generation = self._service, self._generation
                return {
                    "id": request_id,
                    "ok": True,
                    "op": "stats",
                    "pid": os.getpid(),
                    "generation": generation,
                    "pending": service.pending(),
                    "stats": service.stats_snapshot(),
                    # this process's encoder token throughput (warm paths
                    # only encode the query; cold paths the whole corpus)
                    "encoder": COUNTERS.encoder_throughput(),
                }
            return stats
        if op == "reload":
            def reload() -> Dict[str, Any]:
                try:
                    generation = self.reload(message.get("store_dir"))
                except Exception as error:
                    return _error_response(request_id, error)
                return {
                    "id": request_id,
                    "ok": True,
                    "op": "reload",
                    "generation": generation,
                }
            return reload
        if op == "shutdown":
            def shutdown() -> Dict[str, Any]:
                self._shutdown.set()
                return {"id": request_id, "ok": True, "op": "shutdown"}
            return shutdown
        return lambda: _error_response(
            request_id, ProtocolError(f"unknown op {op!r}")
        )

    # -- connection plumbing ----------------------------------------------
    def _write_loop(self, conn: socket.socket, work) -> None:
        """Settle deferred responses in submission order and send them."""
        while True:
            thunk = work.get()
            if thunk is None:
                return
            response = thunk()
            try:
                send_frame(conn, response)
            except OSError:
                return  # peer vanished; readers notice on their side

    def _serve_connection(self, conn: socket.socket) -> None:
        work: "queue_module.Queue" = queue_module.Queue()
        writer = threading.Thread(
            target=self._write_loop,
            args=(conn, work),
            name="repro-net-writer",
            daemon=True,
        )
        writer.start()
        try:
            while not self._shutdown.is_set():
                try:
                    message = recv_frame(conn)
                except (ProtocolError, OSError):
                    break
                if message is None:
                    break
                work.put(self._handle(message))
        finally:
            work.put(None)
            writer.join(timeout=30.0)
            try:
                conn.close()
            except OSError:
                pass  # lint: ignore[except-pass] -- peer already tore the socket down

    def serve_forever(self) -> None:
        """Accept loop; returns after a ``shutdown`` op."""
        while not self._shutdown.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-net-conn",
                daemon=True,
            ).start()
        self.close()

    def close(self) -> None:
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:
            pass  # lint: ignore[except-pass] -- listener may already be closed
        with self._swap_lock:
            service = self._service
        service.stop(drain=True)


def _error_response(request_id: Any, error: BaseException) -> Dict[str, Any]:
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "type": type(error).__name__,
            "message": str(error),
        },
    }


def worker_main(spec: WorkerSpec, ready_conn) -> None:
    """Process entry point: build, bind, report readiness, serve.

    ``ready_conn`` (one end of a ``multiprocessing.Pipe``) receives
    either ``{"port", "pid", "generation"}`` once the listener is bound
    or ``{"error"}`` when construction fails — the supervisor decides
    what to do with the corpse.
    """
    try:
        bundle = resolve_target(spec.target)(**spec.kwargs)
        runtime = WorkerRuntime(bundle, spec)
    except Exception as error:
        try:
            ready_conn.send({"error": f"{type(error).__name__}: {error}"})
        finally:
            ready_conn.close()
        return
    try:
        ready_conn.send({
            "port": runtime.port,
            "pid": os.getpid(),
            "generation": runtime.generation,
        })
    finally:
        ready_conn.close()
    runtime.serve_forever()
