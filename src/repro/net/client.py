"""Blocking client for the networked retrieval protocol.

One TCP connection, strictly request/response — callers that want
concurrency open one client per thread (connections are cheap; the
multiplexing lives in the front door). Results decode back into the
same dataclasses the in-process :class:`~repro.serve.service.
RetrievalService` returns, so swapping a service call for a
:class:`NetClient` call is a one-line change.
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.net.protocol import recv_frame, send_frame, wire_to_results


class NetRequestError(RuntimeError):
    """The fleet answered with an error response."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"{kind}: {message}")
        self.kind = kind


class NetClient:
    """Context-managed blocking connection to a front door (or worker)."""

    def __init__(
        self,
        address: Tuple[str, int],
        timeout_s: float = 300.0,
    ):
        self.address = tuple(address)
        self.timeout_s = timeout_s
        self._ids = itertools.count(1)
        self._sock: Optional[socket.socket] = None

    def connect(self) -> "NetClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                self.address, timeout=self.timeout_s
            )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "NetClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- raw round-trips --------------------------------------------------
    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame, return the (id-matched) response frame."""
        if self._sock is None:
            raise RuntimeError("client is not connected; use connect()")
        request_id = next(self._ids)
        send_frame(self._sock, {**payload, "id": request_id})
        while True:
            response = recv_frame(self._sock)
            if response is None:
                raise ConnectionError("connection closed awaiting response")
            if response.get("id") == request_id:
                return response

    def query_raw(
        self,
        question: str,
        mode: str = "single",
        k: Optional[int] = None,
        nprobe: Optional[int] = None,
        precision: Optional[str] = None,
        deadline_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """The full wire response of one query (results still encoded).

        Byte-identity tests compare this — re-canonicalizing
        ``response["results"]`` yields the exact bytes the worker sent.
        """
        payload: Dict[str, Any] = {
            "op": "query",
            "question": question,
            "mode": mode,
        }
        for key, value in (
            ("k", k),
            ("nprobe", nprobe),
            ("precision", precision),
            ("deadline_s", deadline_s),
        ):
            if value is not None:
                payload[key] = value
        response = self.request(payload)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise NetRequestError(
                error.get("type", "unknown"), error.get("message", "")
            )
        return response

    # -- decoded conveniences ---------------------------------------------
    def retrieve(self, question: str, **kwargs) -> List[Any]:
        """Single-hop retrieval, decoded to ``RetrievedDocument`` lists."""
        response = self.query_raw(question, mode="single", **kwargs)
        return wire_to_results("single", response["results"])

    def retrieve_paths(self, question: str, **kwargs) -> List[Any]:
        """Multi-hop retrieval, decoded to ``DocumentPath`` lists."""
        response = self.query_raw(question, mode="paths", **kwargs)
        return wire_to_results("paths", response["results"])

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def reload(self, store_dir: Optional[str] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "reload"}
        if store_dir is not None:
            payload["store_dir"] = str(store_dir)
        response = self.request(payload)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise NetRequestError(
                error.get("type", "unknown"), error.get("message", "")
            )
        return response
