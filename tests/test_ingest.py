"""Parity + incremental-invalidation suite for ``repro.ingest``.

Pins the two guarantees the ingestion subsystem makes:

* **Deterministic merge** — extraction fanned out over a worker pool is
  byte-identical to the sequential build, for any worker count.
* **Precise invalidation** — an incremental rebuild re-extracts exactly
  the edited documents and re-encodes exactly the dirty embedding rows;
  everything reused is reused *bitwise*.
"""

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.corpus import Corpus, Document
from repro.data.world import Entity
from repro.encoder.minibert import EncoderConfig, MiniBertEncoder
from repro.ingest import (
    EMBEDDINGS_DIR,
    EmbeddingStore,
    EmbeddingStoreError,
    IngestPipeline,
    extract_corpus_triples,
)
from repro.retriever.single import SingleRetriever
from repro.retriever.store import build_triple_store
from repro.text import Vocab, tokenize
from repro.triples.construct import ConstructionConfig

_MINI_DOCS = [
    ("Alpha Club", "club",
     "Alpha Club is a club in Delta City. Alpha Club was founded in 1901."),
    ("Beta Band", "band",
     "Beta Band is a band from Delta City. Beta Band recorded Gamma Album."),
    ("Delta City", "city",
     "Delta City is a city. Delta City hosts Alpha Club and Beta Band."),
    ("Gamma Album", "album",
     "Gamma Album is an album. Gamma Album was recorded by Beta Band."),
    ("Epsilon Hall", "venue",
     "Epsilon Hall is a venue in Delta City. Epsilon Hall opened in 1950."),
]


def _mini_corpus(texts=None):
    """A tiny hand-made corpus; ``texts`` overrides bodies by doc id."""
    texts = texts or {}
    documents = []
    for doc_id, (title, kind, body) in enumerate(_MINI_DOCS):
        documents.append(
            Document(
                doc_id=doc_id,
                title=title,
                text=texts.get(doc_id, body),
                entity=Entity(uid=f"e{doc_id}", name=title, kind=kind),
            )
        )
    return Corpus(documents)


def _mini_encoder(corpus, dim=16, seed=7):
    vocab = Vocab.from_texts([d.text for d in corpus], tokenize)
    return MiniBertEncoder(
        vocab,
        EncoderConfig(dim=dim, n_layers=1, n_heads=2, max_len=24, seed=seed),
    )


def _store_bytes(store, tmp_path, name):
    path = tmp_path / name
    store.save(path)
    return path.read_bytes()


def _segments(cache_dir):
    """doc_id -> raw row bytes of the persisted embedding store."""
    es = EmbeddingStore.open(cache_dir / EMBEDDINGS_DIR)
    return {
        doc_id: np.asarray(es.segment(index)).tobytes()
        for index, doc_id in enumerate(es.doc_ids)
    }


class TestParallelParity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_store_bytes_identical_to_sequential(
        self, corpus, store, tmp_path, workers
    ):
        parallel = build_triple_store(corpus, workers=workers)
        assert _store_bytes(parallel, tmp_path, f"par{workers}.json") == (
            _store_bytes(store, tmp_path, "seq.json")
        )

    def test_extract_subset_respects_doc_ids(self, corpus):
        wanted = [3, 1]
        result = extract_corpus_triples(corpus, doc_ids=wanted)
        assert list(result) == sorted(wanted)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_pipeline_artifacts_identical_across_worker_counts(
        self, tmp_path, workers
    ):
        corpus = _mini_corpus()
        encoder = _mini_encoder(corpus)
        seq_dir = tmp_path / "seq"
        par_dir = tmp_path / "par"
        IngestPipeline(corpus, workers=1).run(seq_dir, encoder=encoder)
        IngestPipeline(corpus, workers=workers).run(par_dir, encoder=encoder)
        assert (seq_dir / "store.json").read_bytes() == (
            par_dir / "store.json"
        ).read_bytes()
        assert _segments(seq_dir) == _segments(par_dir)

    def test_mini_corpus_actually_extracts(self):
        store = build_triple_store(_mini_corpus())
        assert store.total_triples() > 0


class TestIncrementalInvalidation:
    def _ingest(self, corpus, encoder, cache_dir, **kwargs):
        return IngestPipeline(corpus, **kwargs).run(cache_dir, encoder=encoder)

    def test_clean_rerun_extracts_and_encodes_nothing(self, tmp_path):
        corpus = _mini_corpus()
        encoder = _mini_encoder(corpus)
        cache = tmp_path / "cache"
        first = self._ingest(corpus, encoder, cache)
        assert first.stats.docs_extracted == len(corpus)
        second = self._ingest(corpus, encoder, cache)
        assert second.stats.docs_extracted == 0
        assert second.stats.docs_reused == len(corpus)
        assert second.stats.rows_encoded == 0
        assert second.stats.rows_reused == second.stats.rows_total

    def test_doc_edit_dirties_exactly_that_doc(self, tmp_path):
        corpus = _mini_corpus()
        encoder = _mini_encoder(corpus)
        cache = tmp_path / "cache"
        self._ingest(corpus, encoder, cache)
        before = _segments(cache)
        edited = _mini_corpus(
            texts={1: "Beta Band is a band. Beta Band split up in 1999."}
        )
        result = self._ingest(edited, encoder, cache)
        assert result.stats.docs_extracted == 1
        assert result.stats.docs_reused == len(corpus) - 1
        after = _segments(cache)
        for doc_id in (0, 2, 3, 4):
            assert after[doc_id] == before[doc_id]  # reused bitwise

    def test_config_change_dirties_every_extraction(self, tmp_path):
        corpus = _mini_corpus()
        encoder = _mini_encoder(corpus)
        cache = tmp_path / "cache"
        self._ingest(corpus, encoder, cache)
        result = self._ingest(
            corpus, encoder, cache,
            construction=ConstructionConfig(threshold_size=8),
        )
        assert result.stats.docs_extracted == len(corpus)
        assert result.stats.docs_reused == 0

    def test_encoder_change_dirties_rows_but_not_extraction(self, tmp_path):
        corpus = _mini_corpus()
        cache = tmp_path / "cache"
        first = self._ingest(corpus, _mini_encoder(corpus, seed=7), cache)
        assert first.stats.rows_encoded == first.stats.rows_total
        result = self._ingest(corpus, _mini_encoder(corpus, seed=8), cache)
        assert result.stats.docs_extracted == 0
        assert result.stats.rows_encoded == result.stats.rows_total
        assert result.stats.rows_reused == 0

    def test_non_incremental_rebuilds_everything(self, tmp_path):
        corpus = _mini_corpus()
        encoder = _mini_encoder(corpus)
        cache = tmp_path / "cache"
        self._ingest(corpus, encoder, cache)
        result = self._ingest(corpus, encoder, cache, incremental=False)
        assert result.stats.docs_extracted == len(corpus)

    def test_corrupt_manifest_degrades_to_full_rebuild(self, tmp_path):
        corpus = _mini_corpus()
        encoder = _mini_encoder(corpus)
        cache = tmp_path / "cache"
        self._ingest(corpus, encoder, cache)
        (cache / "ingest_manifest.json").write_text("{not json")
        result = self._ingest(corpus, encoder, cache)
        assert result.stats.docs_extracted == len(corpus)

    _case = itertools.count()

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        edits=st.sets(
            st.integers(min_value=0, max_value=len(_MINI_DOCS) - 1),
            max_size=len(_MINI_DOCS),
        )
    )
    def test_any_edit_subset_dirties_exactly_those_docs(self, tmp_path, edits):
        cache = tmp_path / f"case{next(self._case)}"
        corpus = _mini_corpus()
        encoder = _mini_encoder(corpus)
        self._ingest(corpus, encoder, cache)
        before = _segments(cache)
        edited = _mini_corpus(
            texts={
                doc_id: _MINI_DOCS[doc_id][2] + " It is widely known."
                for doc_id in edits
            }
        )
        result = self._ingest(edited, encoder, cache)
        assert result.stats.docs_extracted == len(edits)
        assert result.stats.docs_reused == len(corpus) - len(edits)
        after = _segments(cache)
        for doc_id in set(range(len(corpus))) - edits:
            assert after[doc_id] == before[doc_id]


class TestEmbeddingStore:
    def _build(self, rows=7, dim=4, n_docs=3):
        rng = np.random.RandomState(3)
        matrix = rng.randn(rows, dim)
        offsets = [0, 3, 5][:n_docs]
        return EmbeddingStore(
            matrix=matrix,
            doc_ids=list(range(n_docs)),
            offsets=offsets,
            row_hashes={i: f"h{i}" for i in range(n_docs)},
            encoder_fingerprint="enc-fp",
            construction_fingerprint="con-fp",
        )

    def test_roundtrip(self, tmp_path):
        original = self._build()
        original.save(tmp_path)
        loaded = EmbeddingStore.open(tmp_path)
        assert np.array_equal(np.asarray(loaded.matrix), original.matrix)
        assert loaded.doc_ids == original.doc_ids
        assert loaded.offsets == original.offsets
        assert loaded.row_hashes == original.row_hashes
        assert loaded.encoder_fingerprint == "enc-fp"
        assert loaded.construction_fingerprint == "con-fp"

    def test_segments_cover_matrix(self, tmp_path):
        store = self._build()
        store.save(tmp_path)
        loaded = EmbeddingStore.open(tmp_path)
        stacked = np.concatenate(
            [loaded.segment(i) for i in range(len(loaded.doc_ids))]
        )
        assert np.array_equal(stacked, store.matrix)

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(EmbeddingStoreError):
            EmbeddingStore.open(tmp_path / "nope")

    def test_version_mismatch_raises(self, tmp_path):
        import json

        self._build().save(tmp_path)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(EmbeddingStoreError, match="version"):
            EmbeddingStore.open(tmp_path)

    def test_truncated_data_file_raises(self, tmp_path):
        self._build().save(tmp_path)
        data_file = next(tmp_path.glob("embeddings-*.f64"))
        data_file.write_bytes(data_file.read_bytes()[:-8])
        with pytest.raises(EmbeddingStoreError, match="bytes"):
            EmbeddingStore.open(tmp_path)

    def test_stale_generations_are_collected(self, tmp_path):
        """Two-generation GC: grace window keeps save N-1, collects N-2."""
        generations = []
        for bump in range(3):
            store = self._build()
            store.matrix = store.matrix + float(bump)
            store.save(tmp_path)
            generations.append(
                {p.name for p in tmp_path.glob("embeddings-*.f64")}
            )
        # save 2 keeps generation 1 in its grace window...
        assert len(generations[1]) == 2
        # ...and save 3 collects it: only generations 2 and 3 survive
        assert len(generations[2]) == 2
        assert generations[1] - generations[0] <= generations[2]
        assert not (generations[0] & generations[2])
        loaded = EmbeddingStore.open(tmp_path)
        assert np.array_equal(
            np.asarray(loaded.matrix), self._build().matrix + 2.0
        )

    def test_resave_identical_content_keeps_grace_window(self, tmp_path):
        """Re-saving unchanged content must not shrink the grace window."""
        first = self._build()
        first.save(tmp_path)
        second = self._build()
        second.matrix = second.matrix + 1.0
        second.save(tmp_path)
        second.save(tmp_path)  # same bytes: same content-addressed name
        names = {p.name for p in tmp_path.glob("embeddings-*.f64")}
        assert len(names) == 2  # generation 1 still graced

    def test_open_survives_concurrent_save_gc(self, tmp_path, monkeypatch):
        """A reader holding the previous manifest survives one writer save.

        Regression for the GC race: ``save`` used to unlink every
        non-current generation immediately, so a reader that had just
        parsed the old manifest found its data file gone.
        """
        import repro.ingest.embedding_store as es

        gen1 = self._build()
        gen1.save(tmp_path)
        gen2 = self._build()
        gen2.matrix = gen2.matrix + 1.0

        real_attach = es._attach_matrix
        state = {"raced": False}

        def racing_attach(data_path, rows, dim, mmap):
            # first attach: a writer lands a full save (manifest replace
            # + GC) between our manifest read and the memmap
            if not state["raced"]:
                state["raced"] = True
                gen2.save(tmp_path)
            return real_attach(data_path, rows, dim, mmap)

        monkeypatch.setattr(es, "_attach_matrix", racing_attach)
        loaded = EmbeddingStore.open(tmp_path)
        assert state["raced"]
        # the graced generation-1 file stayed readable through the save
        assert np.array_equal(np.asarray(loaded.matrix), gen1.matrix)

    def test_open_retries_once_when_data_file_vanishes(
        self, tmp_path, monkeypatch
    ):
        """A vanished data file triggers exactly one manifest re-read."""
        import repro.ingest.embedding_store as es

        gen1 = self._build()
        gen1.save(tmp_path)
        gen2 = self._build()
        gen2.matrix = gen2.matrix + 1.0
        gen3 = self._build()
        gen3.matrix = gen3.matrix + 2.0

        real_attach = es._attach_matrix
        state = {"attempts": 0}

        def racing_attach(data_path, rows, dim, mmap):
            state["attempts"] += 1
            if state["attempts"] == 1:
                # two writer generations land: gen1 leaves the grace
                # window and is unlinked, so this attach must fail
                gen2.save(tmp_path)
                gen3.save(tmp_path)
                assert not data_path.exists()
            return real_attach(data_path, rows, dim, mmap)

        monkeypatch.setattr(es, "_attach_matrix", racing_attach)
        loaded = EmbeddingStore.open(tmp_path)
        assert state["attempts"] == 2  # one retry, against the new manifest
        assert np.array_equal(np.asarray(loaded.matrix), gen3.matrix)

    def test_empty_store_roundtrips(self, tmp_path):
        empty = EmbeddingStore(
            matrix=np.zeros((0, 4)),
            doc_ids=[],
            offsets=[],
            row_hashes={},
            encoder_fingerprint="enc-fp",
        )
        empty.save(tmp_path)
        loaded = EmbeddingStore.open(tmp_path)
        assert loaded.matrix.shape == (0, 4)
        assert loaded.doc_ids == []


class TestRetrieverIncrementalRefresh:
    def test_full_refresh_matches_legacy_bitwise(self):
        corpus = _mini_corpus()
        encoder = _mini_encoder(corpus)
        store = build_triple_store(corpus)
        texts = []
        for doc_id in store.doc_ids():
            texts.extend(store.flattened(doc_id))
        expected = encoder.encode_numpy(texts, batch_size=128)
        retriever = SingleRetriever(encoder, store)
        encoded = retriever.refresh_embeddings()
        assert encoded == len(texts)
        assert retriever._stacked.tobytes() == expected.tobytes()

    def test_second_refresh_encodes_nothing(self):
        corpus = _mini_corpus()
        retriever = SingleRetriever(
            _mini_encoder(corpus), build_triple_store(corpus)
        )
        assert retriever.refresh_embeddings() > 0
        assert retriever.refresh_embeddings() == 0

    def test_force_reencodes_everything(self):
        corpus = _mini_corpus()
        retriever = SingleRetriever(
            _mini_encoder(corpus), build_triple_store(corpus)
        )
        total = retriever.refresh_embeddings()
        assert retriever.refresh_embeddings(force=True) == total

    def test_store_edit_reencodes_only_that_doc(self):
        corpus = _mini_corpus()
        encoder = _mini_encoder(corpus)
        store = build_triple_store(corpus)
        retriever = SingleRetriever(encoder, store)
        retriever.refresh_embeddings()
        assert len(store.triples(0)) >= 2  # truncation below must dirty it
        kept = {
            doc_id: retriever.doc_embeddings(doc_id).copy()
            for doc_id in store.doc_ids()
            if doc_id != 0
        }
        store.put(0, store.triples(0)[:1])
        encoded = retriever.refresh_embeddings()
        assert encoded == 1
        for doc_id, previous in kept.items():
            assert retriever.doc_embeddings(doc_id).tobytes() == (
                previous.tobytes()
            )

    def test_attach_rejects_wrong_dim(self, tmp_path):
        corpus = _mini_corpus()
        retriever = SingleRetriever(
            _mini_encoder(corpus, dim=16), build_triple_store(corpus)
        )
        wrong = EmbeddingStore(
            matrix=np.zeros((2, 8)),
            doc_ids=[0],
            offsets=[0],
            row_hashes={0: "x"},
            encoder_fingerprint="fp",
        )
        assert retriever.attach_embeddings(wrong) == 0
        assert retriever._embeddings == {}
