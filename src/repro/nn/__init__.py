"""A from-scratch neural-network substrate (numpy + reverse-mode autograd).

The paper fine-tunes BERT on 8 V100s; this environment has neither
HuggingFace nor a GPU, so the PLM is rebuilt from first principles:

* :mod:`repro.nn.tensor` — a reverse-mode automatic-differentiation engine,
* :mod:`repro.nn.layers` — Linear / Embedding / LayerNorm / Dropout modules,
* :mod:`repro.nn.attention` — multi-head self-attention,
* :mod:`repro.nn.transformer` — the BERT-style encoder stack,
* :mod:`repro.nn.infer` — graph-free fused inference over baked weights,
* :mod:`repro.nn.optim` — SGD and Adam,
* :mod:`repro.nn.losses` — BCE, cross-entropy, cosine similarity,
* :mod:`repro.nn.serialize` — weight (de)serialization.
"""

from repro.nn.tensor import Tensor
from repro.nn.layers import Module, Linear, Embedding, LayerNorm, Dropout, Sequential
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.transformer import TransformerEncoderLayer, TransformerEncoder
from repro.nn.infer import (
    InferenceSession,
    fused_gelu,
    fused_layer_norm,
    fused_softmax,
)
from repro.nn.optim import SGD, Adam
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    cosine_similarity,
)
from repro.nn.serialize import save_weights, load_weights

__all__ = [
    "Tensor",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "InferenceSession",
    "fused_gelu",
    "fused_layer_norm",
    "fused_softmax",
    "SGD",
    "Adam",
    "binary_cross_entropy_with_logits",
    "cross_entropy",
    "cosine_similarity",
    "save_weights",
    "load_weights",
]
