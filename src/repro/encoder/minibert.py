"""MiniBERT: the shared-parameter text encoder (paper Sec. III-B).

Encodes questions and flattened triple facts into the same vector space
with one parameter-shared transformer: tokenize, add [CLS]/[SEP], pad to a
batch, run the encoder, take the [CLS] hidden state.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.infer import InferenceSession
from repro.nn.serialize import load_weights, save_weights
from repro.perf import COUNTERS, time_block
from repro.precision import TRAINING_DTYPE, PrecisionLike, cast_matrix, resolve
from repro.storage.atomic import atomic_write_bytes
from repro.nn.tensor import Tensor
from repro.nn.transformer import TransformerEncoder
from repro.text.tokenize import tokenize
from repro.text.vocab import Vocab


@dataclass
class EncoderConfig:
    """MiniBERT hyper-parameters (a faithful but CPU-sized BERT).

    ``pooling`` selects the sentence representation: ``"cls"`` is the
    paper's choice on full-size BERT; ``"mean"`` (masked mean over token
    states, Sentence-BERT style) is the default here because a 2-layer
    CPU-sized encoder cannot bind token identity into [CLS] the way a
    12-layer pre-trained BERT can — mean pooling preserves the behaviour
    the paper gets from CLS at full scale.
    """

    dim: int = 96
    n_layers: int = 1
    n_heads: int = 4
    ffn_dim: Optional[int] = None
    max_len: int = 48
    dropout: float = 0.0
    pooling: str = "mean"  # "mean" or "cls"
    residual_scale: float = 0.05  # GPT-2-style near-identity block init
    seed: int = 7


class MiniBertEncoder:
    """Shared-parameter encoder for questions and triple facts.

    The paper: "We use a pre-trained language model, i.e., Bert, ... we
    take the final hidden state for the special [CLS] label as the
    representation for the input sentence."
    """

    def __init__(
        self,
        vocab: Vocab,
        config: Optional[EncoderConfig] = None,
        precision: PrecisionLike = None,
    ):
        self.vocab = vocab
        self.config = config or EncoderConfig()
        # output dtype policy: training math stays TRAINING_DTYPE inside
        # the model; inference output is cast at this boundary. Not part
        # of the encoder fingerprint — a dtype change is caught by the
        # explicit dtype checks at store attach / segment reuse instead.
        self.precision = resolve(precision)
        self.model = TransformerEncoder(
            vocab_size=len(vocab),
            dim=self.config.dim,
            n_layers=self.config.n_layers,
            n_heads=self.config.n_heads,
            ffn_dim=self.config.ffn_dim,
            max_len=self.config.max_len,
            dropout=self.config.dropout,
            pad_id=vocab.pad_id,
            seed=self.config.seed,
            residual_scale=self.config.residual_scale,
        )
        # per-token pooling weights; uniform until fit_idf() is called
        self._token_weights = np.ones(len(vocab))
        self._token_weights[vocab.pad_id] = 0.0
        # lazily-built fused inference snapshot (repro.nn.infer); rebuilt
        # whenever the weights are replaced or the precision changes
        self._infer_session: Optional[InferenceSession] = None

    def fit_idf(self, texts: Sequence[str]) -> None:
        """Fit IDF pooling weights from a text collection.

        Mean pooling weights each token by its inverse document frequency,
        so rare (informative) tokens dominate the sentence vector — the
        behaviour a fully pre-trained BERT's attention provides implicitly
        and a CPU-sized model cannot learn from scratch. Special tokens
        get zero weight.
        """
        doc_freq = np.zeros(len(self.vocab))
        n_docs = 0
        for text in texts:
            n_docs += 1
            for token_id in set(self.vocab.encode(tokenize(text))):
                doc_freq[token_id] += 1
        idf = np.log(1.0 + (n_docs + 1.0) / (doc_freq + 1.0))
        for special in (self.vocab.pad_id, self.vocab.cls_id, self.vocab.sep_id,
                        self.vocab.mask_id):
            idf[special] = 0.0
        self._token_weights = idf

    # -- tokenization ----------------------------------------------------
    def text_to_ids(self, text: str) -> List[int]:
        """[CLS] tokens [SEP], truncated to the model's max length."""
        tokens = tokenize(text)
        body = self.vocab.encode(tokens)[: self.config.max_len - 2]
        return [self.vocab.cls_id] + body + [self.vocab.sep_id]

    def batch_ids(
        self, texts: Sequence[str]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pad a batch of texts to a rectangular id matrix + mask."""
        encoded = [self.text_to_ids(t) for t in texts]
        width = max(len(ids) for ids in encoded)
        pad = self.vocab.pad_id
        ids = np.full((len(encoded), width), pad, dtype=np.int64)
        mask = np.zeros((len(encoded), width), dtype=TRAINING_DTYPE)
        for row, seq in enumerate(encoded):
            ids[row, : len(seq)] = seq
            mask[row, : len(seq)] = 1.0
        return ids, mask

    # -- encoding ----------------------------------------------------------
    def encode(self, texts: Sequence[str]) -> Tensor:
        """Encode texts to sentence embeddings (N, dim), with gradients.

        Pooling follows ``config.pooling``: the [CLS] state or the masked
        mean of token states.
        """
        if not texts:
            raise ValueError("encode() requires at least one text")
        ids, mask = self.batch_ids(texts)
        if self.config.pooling == "cls":
            return self.model.encode_cls(ids, mask=mask)
        hidden = self.model(ids, mask=mask)  # (N, S, D)
        weights = self._token_weights[ids] * mask  # idf-weighted pooling
        totals = weights.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        weights_t = Tensor(weights[:, :, None])
        summed = (hidden * weights_t).sum(axis=1)
        return summed / Tensor(totals)

    def _session(self) -> InferenceSession:
        """The current fused-inference snapshot, rebaking when stale.

        Weight updates (optimizer steps, ``load_weights``) replace
        parameter arrays, which flips ``stale()``; a precision change
        needs a re-bake too because the weights are cast at bake time.
        Benign under concurrency: a lost race just builds one extra
        snapshot of identical weights.
        """
        session = self._infer_session
        if (
            session is None
            or session.dtype != self.precision.dtype
            or session.stale()
        ):
            session = InferenceSession(self.model, dtype=self.precision.dtype)
            self._infer_session = session
        return session

    def encode_numpy(self, texts: Sequence[str], batch_size: int = 64) -> np.ndarray:
        """Gradient-free encoding on the fused inference path.

        Runs :class:`repro.nn.infer.InferenceSession` — no autograd
        graph, compute directly in the precision dtype (float32 by
        default; float64 in the opt-in exact parity mode), so every
        downstream matrix inherits one policy dtype without a cast.

        Batches are length-bucketed: texts are sorted by token count
        (stable, so ties keep their input order), grouped into
        ``batch_size`` buckets so each rectangle is only as wide as its
        longest member, and results are scattered back into the input
        order. Bucketing cannot change any embedding: padded positions
        carry exactly-zero attention weight and exactly-zero pooling
        weight, so a sequence's vector is independent of its batch mates.
        """
        dtype = self.precision.dtype
        if not texts:
            return np.zeros((0, self.config.dim), dtype=dtype)
        session = self._session()
        encoded = [self.text_to_ids(t) for t in texts]
        order = sorted(range(len(encoded)), key=lambda i: len(encoded[i]))
        out = np.empty((len(encoded), self.config.dim), dtype=dtype)
        with time_block() as elapsed:
            for start in range(0, len(order), batch_size):
                bucket = order[start : start + batch_size]
                ids, mask = self._pad_bucket([encoded[i] for i in bucket], dtype)
                hidden = session.forward(ids, mask=mask)
                out[bucket] = self._pool(hidden, ids, mask)
        COUNTERS.record_encode_tokens(
            sum(len(seq) for seq in encoded), elapsed()
        )
        return out

    def _pad_bucket(
        self, encoded: Sequence[List[int]], dtype
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pad one bucket of token-id lists to a rectangle + mask."""
        width = max(len(seq) for seq in encoded)
        pad = self.vocab.pad_id
        ids = np.full((len(encoded), width), pad, dtype=np.int64)
        mask = np.zeros((len(encoded), width), dtype=dtype)
        for row, seq in enumerate(encoded):
            ids[row, : len(seq)] = seq
            mask[row, : len(seq)] = 1.0
        return ids, mask

    def _pool(
        self, hidden: np.ndarray, ids: np.ndarray, mask: np.ndarray
    ) -> np.ndarray:
        """Sentence vectors from fused hidden states, per ``config.pooling``."""
        if self.config.pooling == "cls":
            return hidden[:, 0, :]
        weights = self._token_weights[ids].astype(hidden.dtype) * mask
        totals = weights.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        pooled = np.einsum("bsd,bs->bd", hidden, weights)
        pooled /= totals
        return pooled

    def encode_numpy_graph(
        self, texts: Sequence[str], batch_size: int = 64
    ) -> np.ndarray:
        """The autograd-graph reference path for :meth:`encode_numpy`.

        Kept for parity suites and the encoder throughput benchmark:
        computes in ``TRAINING_DTYPE`` through :meth:`encode` and casts
        to the precision dtype at the boundary — exactly what
        ``encode_numpy`` did before the fused engine.
        """
        was_training = self.model.training
        self.model.eval()
        dtype = self.precision.dtype
        try:
            chunks = []
            with time_block() as elapsed:
                for start in range(0, len(texts), batch_size):
                    chunk = texts[start : start + batch_size]
                    chunks.append(cast_matrix(self.encode(chunk).numpy(), dtype))
            COUNTERS.record_encode_tokens(
                sum(len(self.text_to_ids(t)) for t in texts), elapsed()
            )
            return np.concatenate(chunks, axis=0) if chunks else np.zeros(
                (0, self.config.dim), dtype=dtype
            )
        finally:
            if was_training:
                self.model.train()

    # -- persistence ---------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Persist weights + vocab into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_weights(self.model, directory / "weights.npz")
        self.vocab.save(directory / "vocab.json")
        buffer = io.BytesIO()
        np.save(buffer, self._token_weights)
        atomic_write_bytes(directory / "token_weights.npy", buffer.getvalue())

    @classmethod
    def load(
        cls, directory: Union[str, Path], config: Optional[EncoderConfig] = None
    ) -> "MiniBertEncoder":
        """Restore an encoder saved by :meth:`save`."""
        directory = Path(directory)
        vocab = Vocab.load(directory / "vocab.json")
        encoder = cls(vocab, config=config)
        load_weights(encoder.model, directory / "weights.npz")
        weights_path = directory / "token_weights.npy"
        if weights_path.exists():
            encoder._token_weights = np.load(weights_path)
        return encoder
