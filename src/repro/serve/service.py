"""The in-process retrieval service: front door, workers, lifecycle.

:class:`RetrievalService` turns the vectorized retriever into a
traffic-handling layer: many client threads call :meth:`retrieve` /
:meth:`retrieve_paths` concurrently; worker threads drain the bounded
request queue in dynamically coalesced micro-batches and answer each
batch with one :meth:`~repro.retriever.single.SingleRetriever.
retrieve_many` (single-hop) or :meth:`~repro.pipeline.multihop.
MultiHopRetriever.retrieve_paths_batch` (multi-hop) call.

Guarantees:

* **Bounded latency, explicit rejection** — a full queue raises
  :class:`Overloaded` at submit time; a request whose deadline lapses
  before a worker reaches it fails with :class:`DeadlineExceeded`.
* **Determinism** — coalescing never changes answers: a batch is scored
  by the same single-matmul path as a sequential ``retrieve_batch``
  call, so results are identical to serving each request alone (exactly
  so under a batch-invariant encoder; see ``retrieve_paths_batch``).
* **Graceful shutdown** — ``stop()`` (or leaving the context manager)
  refuses new work, flushes every in-flight and queued request, then
  joins the workers. ``stop(drain=False)`` fails queued requests with
  :class:`ServiceStopped` instead.

Results returned for identical (normalized) queries may be shared
objects served from the LRU+TTL cache — treat them as read-only.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.pipeline.multihop import MultiHopRetriever
from repro.precision import PrecisionLike, parse_key, resolve
from repro.retriever.single import SingleRetriever
from repro.serve.batching import BatchQueue, PendingRequest
from repro.serve.cache import MISS, ResultCache, query_cache_key
from repro.serve.errors import (
    DeadlineExceeded,
    Overloaded,
    ServiceStopped,
)
from repro.serve.stats import ServiceStats

MODES = ("single", "paths")


@dataclass
class ServiceConfig:
    """Sizing and behaviour knobs of one service instance."""

    max_batch_size: int = 16  # flush when this many compatible requests wait
    max_wait_ms: float = 2.0  # ... or when the oldest has waited this long
    max_pending: int = 256  # admission limit (Overloaded beyond this)
    workers: int = 1  # worker threads draining the queue
    cache_size: int = 1024  # LRU capacity; <= 0 disables caching
    cache_ttl_s: Optional[float] = None  # entry lifetime; None = no expiry
    default_k: int = 8  # results per request unless overridden
    default_deadline_s: Optional[float] = None  # per-request deadline
    # shards probed per request when the retriever has an active shard
    # plan; None = no pruning (provably exact). Overridable per request.
    default_nprobe: Optional[int] = None
    # precision policy applied to requests that don't name one; None
    # defers to the retriever's own policy. Part of the cache AND batch
    # keys, so quantized answers never serve an exact-mode request.
    default_precision: Optional[str] = None
    latency_reservoir: int = 65536  # latency samples kept for percentiles
    # build the retriever's scoring matrices inside start() instead of on
    # the first request's worker thread — a warm-started (attached)
    # retriever finishes this without any encoder call
    warm_start: bool = True


class RetrievalService:
    """Concurrent micro-batching front door over the trained retrievers.

    ``clock`` must be monotonic and drives deadlines, the batch window
    and cache TTLs; it is injectable so tests control time. Latency
    *measurement* always uses ``time.perf_counter``.
    """

    def __init__(
        self,
        retriever: SingleRetriever,
        multihop: Optional[MultiHopRetriever] = None,
        config: Optional[ServiceConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.retriever = retriever
        self.multihop = multihop
        self.config = config or ServiceConfig()
        if self.config.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.config.workers <= 0:
            raise ValueError("workers must be positive")
        self._clock = clock
        self._queue = BatchQueue(self.config.max_pending, clock=clock)
        self._cache = ResultCache(
            capacity=self.config.cache_size,
            ttl_s=self.config.cache_ttl_s,
            clock=clock,
        )
        self.stats = ServiceStats(self.config.latency_reservoir)
        self._threads: List[threading.Thread] = []
        self._state_lock = threading.Lock()
        self._running = False

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "RetrievalService":
        """Spawn the worker threads (idempotent).

        With ``warm_start`` (the default) the retriever's scoring
        matrices are built here, so the first request never pays the
        build — and never pays encoding at all when the retriever was
        attached to a persisted embedding store.
        """
        with self._state_lock:
            if self._running:
                return self
            if self.config.warm_start:
                # duck-typed: test stubs and minimal retrievers without
                # an ensure_ready() simply start cold
                ensure_ready = getattr(self.retriever, "ensure_ready", None)
                if ensure_ready is not None:
                    ensure_ready()
            self._running = True
            self._threads = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-serve-{index}",
                    daemon=True,
                )
                for index in range(self.config.workers)
            ]
            for thread in self._threads:
                thread.start()
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Refuse new work, settle everything pending, join the workers.

        ``drain=True`` (default) flushes every queued request through the
        normal batch path before the workers exit; ``drain=False`` fails
        queued requests with :class:`ServiceStopped` immediately.
        """
        with self._state_lock:
            if not self._running:
                return
            self._running = False
            self._queue.stop()
            if not drain:
                for request in self._queue.drain_remaining():
                    request.fail(
                        ServiceStopped("service stopped before serving")
                    )
                    self.stats.record_failed()
            threads, self._threads = self._threads, []
        for thread in threads:
            thread.join(timeout)

    def __enter__(self) -> "RetrievalService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        with self._state_lock:
            return self._running

    def pending(self) -> int:
        """Requests currently queued (excludes the batch being served)."""
        return len(self._queue)

    # -- submission ------------------------------------------------------
    def submit(
        self,
        question: str,
        k: Optional[int] = None,
        mode: str = "single",
        deadline_s: Optional[float] = None,
        nprobe: Optional[int] = None,
        precision: PrecisionLike = None,
    ) -> PendingRequest:
        """Enqueue one request and return its future immediately.

        Raises :class:`Overloaded` when admission control rejects it and
        :class:`ServiceStopped` when the service is not running. A cache
        hit completes the returned request synchronously. ``nprobe``
        (default :attr:`ServiceConfig.default_nprobe`) prunes sharded
        scoring to that many shards; it is part of both the cache key and
        the batch key, so pruned and exact requests never mix — and so is
        ``precision`` (default :attr:`ServiceConfig.default_precision`),
        so quantized answers never serve exact-mode callers.
        """
        cfg = self.config
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r} (expected {MODES})")
        if mode == "paths" and self.multihop is None:
            raise ValueError(
                "service was built without a MultiHopRetriever; "
                "mode='paths' is unavailable"
            )
        with self._state_lock:
            if not self._running:
                raise ServiceStopped("service is not running; call start()")
        k = k if k is not None else cfg.default_k
        deadline_s = (
            deadline_s if deadline_s is not None else cfg.default_deadline_s
        )
        nprobe = nprobe if nprobe is not None else cfg.default_nprobe
        precision = (
            precision if precision is not None else cfg.default_precision
        )
        # the canonical key string (mode[:rescore_width]) — validated here
        # at the front door so malformed precisions fail at submit time
        precision_key = (
            None if precision is None else resolve(precision).key()
        )
        cache_key = query_cache_key(
            question, mode, k, nprobe, precision_key
        )
        deadline = (
            None if deadline_s is None else self._clock() + deadline_s
        )
        request = PendingRequest(
            question,
            mode,
            k,
            cache_key,
            deadline,
            nprobe=nprobe,
            precision=precision_key,
        )
        self.stats.record_submitted()
        cached = self._cache.get(cache_key)
        if cached is not MISS:
            request.complete(cached)
            self.stats.record_cache_hit()
            return request
        try:
            self._queue.put(request)
        except Overloaded:
            self.stats.record_overloaded()
            raise
        return request

    def retrieve(
        self,
        question: str,
        k: Optional[int] = None,
        deadline_s: Optional[float] = None,
        timeout: Optional[float] = None,
        nprobe: Optional[int] = None,
        precision: PrecisionLike = None,
    ) -> Any:
        """Blocking single-hop retrieval (submit + wait)."""
        return self.submit(
            question, k=k, mode="single", deadline_s=deadline_s,
            nprobe=nprobe, precision=precision,
        ).result(timeout)

    def retrieve_paths(
        self,
        question: str,
        k: Optional[int] = None,
        deadline_s: Optional[float] = None,
        timeout: Optional[float] = None,
        nprobe: Optional[int] = None,
        precision: PrecisionLike = None,
    ) -> Any:
        """Blocking multi-hop path retrieval (submit + wait)."""
        return self.submit(
            question, k=k, mode="paths", deadline_s=deadline_s,
            nprobe=nprobe, precision=precision,
        ).result(timeout)

    # -- observability ---------------------------------------------------
    def stats_snapshot(self) -> dict:
        """Service + cache counters as one JSON-ready dict."""
        return self.stats.snapshot(self._cache.stats.snapshot())

    def stats_summary(self) -> str:
        """Human-readable stats block."""
        return self.stats.summary(self._cache.stats.snapshot())

    # -- worker internals ------------------------------------------------
    def _worker_loop(self) -> None:
        max_wait = self.config.max_wait_ms / 1e3
        while True:
            batch = self._queue.take_batch(
                self.config.max_batch_size, max_wait
            )
            if batch is None:
                return
            self._execute(batch)

    def _execute(self, batch: List[PendingRequest]) -> None:
        """Serve one homogeneous batch with a single bulk retrieval call."""
        now = self._clock()
        live: List[PendingRequest] = []
        for request in batch:
            if request.deadline is not None and now > request.deadline:
                request.fail(
                    DeadlineExceeded(
                        f"deadline passed before batch execution "
                        f"({request.question[:60]!r})"
                    )
                )
                self.stats.record_deadline_exceeded()
            else:
                live.append(request)
        if not live:
            return
        self.stats.record_batch(len(live))
        # coalesce duplicate (normalized) questions: one scored row can
        # answer several waiting clients
        row_of: Dict[Any, int] = {}
        questions: List[str] = []
        for request in live:
            if request.cache_key not in row_of:
                row_of[request.cache_key] = len(questions)
                questions.append(request.question)
        mode, k, nprobe, precision_key = live[0].batch_key
        # pass nprobe/precision only when set so duck-typed retrievers
        # that predate those options keep working unchanged
        extra: Dict[str, Any] = {}
        if nprobe is not None:
            extra["nprobe"] = nprobe
        if precision_key is not None:
            extra["precision"] = parse_key(precision_key)
        try:
            if mode == "single":
                results = self.retriever.retrieve_many(
                    questions, k=k, **extra
                )
            else:
                results = self.multihop.retrieve_paths_batch(
                    questions, k_paths=k, **extra
                )
        except Exception as error:  # surface to every waiting client
            for request in live:
                request.fail(error)
                self.stats.record_failed()
            return
        finished_at = time.perf_counter()
        for request in live:
            value = results[row_of[request.cache_key]]
            self._cache.put(request.cache_key, value)
            request.complete(value)
            self.stats.record_completed(finished_at - request.submitted_at)
