"""Lightweight performance instrumentation for the retrieval hot path."""

from repro.perf.counters import COUNTERS, PerfCounters, time_block

__all__ = ["COUNTERS", "PerfCounters", "time_block"]
