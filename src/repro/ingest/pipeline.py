"""Parallel, incremental corpus ingestion (the offline stage, scaled).

The paper's offline stage — "at the very beginning, we extract a triple
fact set for each document" — is embarrassingly parallel across
documents and almost always *incremental* in practice: a corpus refresh
touches a handful of documents, not all of them. This module provides
both properties without changing a single output byte:

* :func:`extract_corpus_triples` fans coref + OIE union + Algorithm 1
  out over a ``multiprocessing`` pool. Documents are dealt to workers in
  ascending-doc-id order and results are merged back in that same order
  (``Pool.map`` preserves input order), and per-document construction is
  deterministic and independent, so the parallel triple store is
  **byte-identical** to the sequential one.
* :class:`IngestPipeline` adds the incremental layer: a JSON manifest of
  per-document content hashes plus the construction fingerprint
  (:mod:`repro.ingest.fingerprint`). On rebuild, only documents whose
  hash changed re-extract; only documents whose flattened triples or
  encoder changed re-encode (dirty-row tracking inside
  :meth:`~repro.retriever.single.SingleRetriever.refresh_embeddings`).
  Artifacts (triple store, manifest, embedding store) are written
  atomically, so an interrupted ingest never corrupts the previous one.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.data.corpus import Corpus
from repro.index.entity_index import EntityIndex
from repro.ingest.embedding_store import EmbeddingStore, EmbeddingStoreError
from repro.ingest.fingerprint import (
    construction_fingerprint,
    document_fingerprint,
)
from repro.oie.triple import Triple
from repro.oie.union import UnionExtractor
from repro.perf import COUNTERS, time_block
from repro.storage.atomic import atomic_write_json
from repro.triples.construct import ConstructionConfig, TripleSetConstructor

MANIFEST_VERSION = 1
MANIFEST_NAME = "ingest_manifest.json"
STORE_NAME = "store.json"
EMBEDDINGS_DIR = "embeddings"

# -- worker-pool plumbing ---------------------------------------------------
# One constructor per worker process, built once by the initializer; the
# payloads then carry only per-document data. Module-level so both fork
# and spawn start methods can pickle the entry points.
_WORKER: Dict[str, TripleSetConstructor] = {}


def _init_worker(
    config: Optional[ConstructionConfig],
    linker: Optional[EntityIndex],
    extractor: Optional[UnionExtractor],
) -> None:
    _WORKER["constructor"] = TripleSetConstructor(
        config=config, linker=linker, extractor=extractor
    )


def _extract_one(
    payload: Tuple[int, str, str, Optional[str], List[str]]
) -> Tuple[int, List[Triple]]:
    doc_id, text, title, entity_kind, doc_entities = payload
    result = _WORKER["constructor"].construct_from_text(
        text, title=title, entity_kind=entity_kind, doc_entities=doc_entities
    )
    return doc_id, result.triples


def extract_corpus_triples(
    corpus: Corpus,
    linker: Optional[EntityIndex] = None,
    config: Optional[ConstructionConfig] = None,
    extractor: Optional[UnionExtractor] = None,
    workers: int = 1,
    doc_ids: Optional[Sequence[int]] = None,
) -> Dict[int, List[Triple]]:
    """Extraction + Algorithm 1 for ``doc_ids`` (default: whole corpus).

    Returns ``{doc_id: triples}`` in ascending doc-id order regardless of
    worker count — the deterministic-merge guarantee the parity suite
    pins. ``workers <= 1`` runs sequentially in-process (the reference
    path); more workers fan documents out over a process pool.
    """
    chosen = sorted(doc_ids) if doc_ids is not None else range(len(corpus))
    payloads = []
    for doc_id in chosen:
        document = corpus[doc_id]
        entities = linker.entities_of(doc_id) if linker is not None else []
        payloads.append(
            (
                document.doc_id,
                document.text,
                document.title,
                document.entity.kind,
                entities,
            )
        )
    if workers <= 1 or len(payloads) <= 1:
        constructor = TripleSetConstructor(
            config=config, linker=linker, extractor=extractor
        )
        results = [
            (
                doc_id,
                constructor.construct_from_text(
                    text,
                    title=title,
                    entity_kind=entity_kind,
                    doc_entities=doc_entities,
                ).triples,
            )
            for doc_id, text, title, entity_kind, doc_entities in payloads
        ]
        return dict(results)
    chunksize = max(1, len(payloads) // (workers * 4))
    with multiprocessing.get_context().Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(config, linker, extractor),
    ) as pool:
        results = pool.map(_extract_one, payloads, chunksize=chunksize)
    return dict(results)


# -- the incremental pipeline ----------------------------------------------


@dataclass
class IngestStats:
    """Per-stage counts and wall-clock timings of one ingest run."""

    workers: int = 1
    incremental: bool = True
    docs_total: int = 0
    docs_extracted: int = 0
    docs_reused: int = 0
    triples_total: int = 0
    rows_total: int = 0
    rows_encoded: int = 0
    rows_reused: int = 0
    tokens_encoded: int = 0
    link_seconds: float = 0.0
    extract_seconds: float = 0.0
    encode_seconds: float = 0.0
    save_seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    def summary(self) -> str:
        """Human-readable block (CLI ``repro ingest --stats``)."""
        return "\n".join(
            [
                "ingest stats:",
                f"  documents:  {self.docs_total}"
                f" ({self.docs_extracted} extracted,"
                f" {self.docs_reused} reused)",
                f"  triples:    {self.triples_total}",
                f"  embed rows: {self.rows_total}"
                f" ({self.rows_encoded} encoded, {self.rows_reused} reused)",
                f"  link:       {self.link_seconds * 1e3:.1f} ms",
                f"  extract:    {self.extract_seconds * 1e3:.1f} ms"
                f" ({self.workers} worker(s))",
                f"  encode:     {self.encode_seconds * 1e3:.1f} ms"
                f" ({self.tokens_encoded} tokens,"
                f" {self.tokens_per_sec():.0f} tokens/s)",
                f"  save:       {self.save_seconds * 1e3:.1f} ms",
            ]
        )

    def tokens_per_sec(self) -> float:
        """Encoder token throughput of this run (the ingest ceiling)."""
        if self.encode_seconds <= 0:
            return 0.0
        return self.tokens_encoded / self.encode_seconds


@dataclass
class IngestResult:
    """Everything one :meth:`IngestPipeline.run` produced."""

    store: "TripleStore"
    stats: IngestStats
    embeddings: Optional[EmbeddingStore] = None
    retriever: Optional["SingleRetriever"] = None
    manifest: Dict[str, object] = field(default_factory=dict)


class IngestPipeline:
    """Build (or refresh) the offline artifacts for one corpus.

    ``run(cache_dir)`` extracts triples (parallel over ``workers``),
    persists ``store.json`` + ``ingest_manifest.json`` under
    ``cache_dir``, and — when an ``encoder`` is supplied — encodes the
    flattened triples into a persistent :class:`EmbeddingStore` under
    ``cache_dir/embeddings``. With ``incremental=True`` a second run
    against unchanged inputs extracts and encodes nothing.
    """

    def __init__(
        self,
        corpus: Corpus,
        construction: Optional[ConstructionConfig] = None,
        extractor: Optional[UnionExtractor] = None,
        linker: Optional[EntityIndex] = None,
        workers: int = 1,
        incremental: bool = True,
        batch_size: int = 128,
    ):
        self.corpus = corpus
        self.construction = construction or ConstructionConfig()
        self.extractor = extractor
        self.linker = linker
        self.workers = max(1, int(workers))
        self.incremental = incremental
        self.batch_size = batch_size

    # -- stage 0: entity linking ----------------------------------------
    def _ensure_linker(self, stats: IngestStats) -> EntityIndex:
        if self.linker is None:
            with time_block() as elapsed:
                linker = EntityIndex(self.corpus.titles())
                for document in self.corpus:
                    linker.add_document(document.doc_id, document.text)
            stats.link_seconds = elapsed()
            self.linker = linker
        return self.linker

    # -- stage 1: extraction --------------------------------------------
    def _load_prior(
        self, cache_dir: Path, expected_fp: str
    ) -> Tuple[Dict[str, str], Optional["TripleStore"]]:
        """(prior doc hashes, prior store) when reusable, else empty."""
        import json

        from repro.retriever.store import TripleStore

        manifest_path = cache_dir / MANIFEST_NAME
        store_path = cache_dir / STORE_NAME
        if not (manifest_path.exists() and store_path.exists()):
            return {}, None
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}, None
        if manifest.get("version") != MANIFEST_VERSION:
            return {}, None
        if manifest.get("construction_fingerprint") != expected_fp:
            return {}, None
        try:
            prior_store = TripleStore.load(store_path, self.corpus)
        except (OSError, KeyError, ValueError):
            return {}, None
        docs = manifest.get("docs")
        if not isinstance(docs, dict):
            return {}, None
        return {str(k): str(v) for k, v in docs.items()}, prior_store

    def extract(self, cache_dir: Union[str, Path]) -> IngestResult:
        """Run (incremental, parallel) extraction and persist the store."""
        from repro.retriever.store import TripleStore

        cache_dir = Path(cache_dir)
        cache_dir.mkdir(parents=True, exist_ok=True)
        stats = IngestStats(workers=self.workers, incremental=self.incremental)
        linker = self._ensure_linker(stats)
        construction_fp = construction_fingerprint(
            self.construction, self.corpus.titles()
        )
        doc_hashes = {
            document.doc_id: document_fingerprint(
                document.title, document.text, document.entity.kind
            )
            for document in self.corpus
        }
        prior_hashes: Dict[str, str] = {}
        prior_store = None
        if self.incremental:
            prior_hashes, prior_store = self._load_prior(
                cache_dir, construction_fp
            )
        dirty = [
            doc_id
            for doc_id, digest in doc_hashes.items()
            if prior_store is None or prior_hashes.get(str(doc_id)) != digest
        ]
        with time_block() as elapsed:
            fresh = extract_corpus_triples(
                self.corpus,
                linker=linker,
                config=self.construction,
                extractor=self.extractor,
                workers=self.workers,
                doc_ids=dirty,
            )
        stats.extract_seconds = elapsed()
        store = TripleStore(self.corpus)
        for doc_id in sorted(doc_hashes):
            if doc_id in fresh:
                store.put(doc_id, fresh[doc_id])
            else:
                store.put(doc_id, prior_store.triples(doc_id))
        stats.docs_total = len(doc_hashes)
        stats.docs_extracted = len(fresh)
        stats.docs_reused = stats.docs_total - stats.docs_extracted
        stats.triples_total = store.total_triples()
        COUNTERS.record_extract(
            n_docs=stats.docs_extracted,
            n_reused=stats.docs_reused,
            n_triples=sum(len(t) for t in fresh.values()),
            seconds=stats.extract_seconds,
        )
        manifest = {
            "version": MANIFEST_VERSION,
            "construction_fingerprint": construction_fp,
            "docs": {str(d): h for d, h in doc_hashes.items()},
        }
        with time_block() as elapsed:
            store.save(cache_dir / STORE_NAME)
            atomic_write_json(cache_dir / MANIFEST_NAME, manifest)
        stats.save_seconds = elapsed()
        return IngestResult(store=store, stats=stats, manifest=manifest)

    # -- stage 2: encoding ----------------------------------------------
    def encode(
        self,
        result: IngestResult,
        encoder,
        cache_dir: Union[str, Path],
    ) -> IngestResult:
        """Encode the store's triples into a persistent embedding store.

        Warm-starts from a prior ``cache_dir/embeddings`` generation when
        one exists: rows whose flattened triples and encoder fingerprint
        are unchanged are reused verbatim, everything else re-encodes.
        """
        from repro.retriever.single import SingleRetriever

        cache_dir = Path(cache_dir)
        emb_dir = cache_dir / EMBEDDINGS_DIR
        stats = result.stats
        retriever = SingleRetriever(encoder, result.store)
        if self.incremental:
            try:
                retriever.attach_embeddings(EmbeddingStore.open(emb_dir))
            except EmbeddingStoreError:
                # no prior generation (or an unreadable one): cold encode
                retriever.detach_embeddings()
        tokens_before = COUNTERS.encoder_throughput()["tokens"]
        with time_block() as elapsed:
            stats.rows_encoded = retriever.refresh_embeddings(
                batch_size=self.batch_size
            )
        stats.encode_seconds = elapsed()
        stats.tokens_encoded = (
            COUNTERS.encoder_throughput()["tokens"] - tokens_before
        )
        stats.rows_total = result.store.total_triples()
        stats.rows_reused = stats.rows_total - stats.rows_encoded
        embeddings = retriever.export_embeddings(
            construction_fingerprint=result.manifest.get(
                "construction_fingerprint", ""
            )
        )
        with time_block() as elapsed:
            embeddings.save(emb_dir)
        stats.save_seconds += elapsed()
        result.embeddings = embeddings
        result.retriever = retriever
        return result

    def run(
        self, cache_dir: Union[str, Path], encoder=None
    ) -> IngestResult:
        """Extract (and, with an ``encoder``, encode) into ``cache_dir``."""
        result = self.extract(cache_dir)
        if encoder is not None:
            result = self.encode(result, encoder, cache_dir)
        return result
