"""PathRetriever baseline (Asai et al. 2020): recurrent graph search.

PathRetriever restricts candidates to the Wikipedia hyperlink graph and
walks it with a recurrent state: seed documents come from lexical
retrieval, each expansion step scores hyperlink neighbours against a
GRU-style hidden state combining the question with the path so far. Its
strength (Table V) is comparison questions — both gold documents are
lexically close to the question; its weakness is paths whose documents
share no hyperlink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.dense_base import DenseConfig, DenseRetriever
from repro.baselines.lexical import LexicalRetriever
from repro.data.corpus import Corpus
from repro.encoder.minibert import MiniBertEncoder
from repro.nn.layers import Linear
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


@dataclass
class PathRetrieverConfig:
    """Beam-search and training knobs."""

    n_seeds: int = 8
    beam: int = 4
    epochs: int = 2
    lr: float = 1e-3
    clip_norm: float = 5.0
    seed: int = 37


class PathRetrieverBaseline:
    """Recurrent beam search over the hyperlink graph.

    The recurrent state is ``h' = tanh(W [h ; e(d)])`` starting from the
    encoded question; candidate documents are scored by a bilinear-ish
    head on ``[h ; e(d)]``.
    """

    def __init__(
        self,
        encoder: MiniBertEncoder,
        corpus: Corpus,
        dense: Optional[DenseRetriever] = None,
        config: Optional[PathRetrieverConfig] = None,
    ):
        self.encoder = encoder
        self.corpus = corpus
        self.config = config or PathRetrieverConfig()
        self.dense = dense or DenseRetriever(encoder, corpus)
        self.lexical = LexicalRetriever(corpus)
        rng = np.random.RandomState(self.config.seed)
        dim = encoder.config.dim
        self.recurrent = Linear(2 * dim, dim, rng=rng)
        self.score_head = Linear(2 * dim, 1, rng=rng)

    # -- internals ---------------------------------------------------------
    def _doc_vec(self, doc_id: int) -> np.ndarray:
        self.dense._ensure_fresh()
        return self.dense._doc_normed[doc_id]

    def _state_update(self, state: np.ndarray, doc_vec: np.ndarray) -> np.ndarray:
        joint = np.concatenate([state, doc_vec])
        return np.tanh(joint @ self.recurrent.weight.data + self.recurrent.bias.data)

    def _score(self, state: np.ndarray, doc_vec: np.ndarray) -> float:
        joint = np.concatenate([state, doc_vec])
        return float(joint @ self.score_head.weight.data.reshape(-1)
                     + self.score_head.bias.data[0])

    def _candidates(self, doc_id: int, question: str) -> List[int]:
        """Hyperlink neighbours of ``doc_id`` (the graph constraint)."""
        neighbours = [
            d.doc_id for d in self.corpus.neighbours(self.corpus[doc_id])
        ]
        return neighbours

    # -- retrieval ------------------------------------------------------------
    def retrieve_paths(
        self, question: str, k_paths: int = 8
    ) -> List[Tuple[str, ...]]:
        """Beam search: lexical seeds, hyperlink expansion, learned scores."""
        cfg = self.config
        state0 = self.dense.encode_query(question)
        seeds = self.lexical.retrieve(question, k=cfg.n_seeds, field="text")
        scored_paths: List[Tuple[float, Tuple[int, int]]] = []
        seen = set()
        for seed in seeds:
            seed_vec = self._doc_vec(seed.doc_id)
            seed_score = self._score(state0, seed_vec)
            state1 = self._state_update(state0, seed_vec)
            candidates = self._candidates(seed.doc_id, question)
            if not candidates:
                continue
            ranked = sorted(
                candidates,
                key=lambda d: -self._score(state1, self._doc_vec(d)),
            )
            for hop2 in ranked[: cfg.beam]:
                if hop2 == seed.doc_id or (seed.doc_id, hop2) in seen:
                    continue
                seen.add((seed.doc_id, hop2))
                total = seed_score + self._score(state1, self._doc_vec(hop2))
                scored_paths.append((total, (seed.doc_id, hop2)))
        scored_paths.sort(key=lambda item: -item[0])
        return [
            (self.corpus[a].title, self.corpus[b].title)
            for _, (a, b) in scored_paths[:k_paths]
        ]

    # -- training -----------------------------------------------------------
    def train(
        self,
        questions: Sequence,
        verbose: bool = False,
    ) -> List[float]:
        """Train the recurrent scorer on gold paths vs. sampled negatives.

        Each question with a gold path ``(g1, g2)`` contributes two
        listwise decisions: rank ``g1`` above lexical-seed distractors at
        step 1, and rank ``g2`` above other hyperlink neighbours of ``g1``
        at step 2. The scoring head is the trainable part; the recurrent
        state transition is a fixed random projection (echo-state style),
        and the encoder stays frozen — enough capacity for the baseline's
        role in Table V while keeping its defining constraint (the
        hyperlink graph) intact.
        """
        cfg = self.config
        self.dense._ensure_fresh()
        optimizer = Adam(
            self.recurrent.parameters() + self.score_head.parameters(), lr=cfg.lr
        )
        rng = np.random.RandomState(cfg.seed)
        losses: List[float] = []
        examples = []
        for question in questions:
            golds = [
                self.corpus.by_title(t)
                for t in getattr(question, "gold_titles", [])
            ]
            if len(golds) < 2 or any(g is None for g in golds):
                continue
            examples.append((question.text, golds[0].doc_id, golds[1].doc_id))
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(examples))
            epoch_losses = []
            for i in order:
                text, g1, g2 = examples[i]
                loss = self._example_loss(text, g1, g2, rng)
                if loss is None:
                    continue
                for parameter in optimizer.parameters:
                    parameter.zero_grad()
                loss.backward()
                optimizer.clip_grad_norm(cfg.clip_norm)
                optimizer.step()
                epoch_losses.append(loss.item())
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
            losses.append(mean_loss)
            if verbose:  # pragma: no cover
                print(f"[pathretriever] epoch {epoch + 1}/{cfg.epochs} "
                      f"loss={mean_loss:.4f}")
        return losses

    def _example_loss(self, question, g1, g2, rng):
        state0 = self.dense.encode_query(question)
        seeds = [h.doc_id for h in self.lexical.retrieve(question, k=6, field="text")]
        step1 = [g1] + [d for d in seeds if d != g1][:5]
        if len(step1) < 2:
            return None
        loss1 = self._listwise(state0, step1, 0)
        state1 = self._state_update(state0, self._doc_vec(g1))
        neighbours = [
            d.doc_id for d in self.corpus.neighbours(self.corpus[g1]) if d.doc_id != g2
        ]
        if g2 not in [d.doc_id for d in self.corpus.neighbours(self.corpus[g1])]:
            return loss1  # gold not linked: only step-1 supervision exists
        step2 = [g2] + neighbours[:5]
        if len(step2) < 2:
            return loss1
        return loss1 + self._listwise(state1, step2, 0)

    def _listwise(self, state: np.ndarray, doc_ids: List[int], gold: int) -> Tensor:
        joints = np.stack(
            [np.concatenate([state, self._doc_vec(d)]) for d in doc_ids]
        )
        logits = self.score_head(Tensor(joints)).reshape(-1)
        return -logits.softmax(axis=-1).log()[gold]
