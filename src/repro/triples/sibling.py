"""Sibling detection and fusion (paper Algorithm 1, line 9).

Two triples are *siblings* when they share a high structural + semantic
similarity — in Fig. 3, ``<S, is, American conscientious objector>`` and
``<S, is, Quaker>`` describe one fact (the person's roles) from different
aspects. Sibling pairs are replaced by a single *fusion* triple carrying
all objects, shrinking the set with no information loss.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.oie.triple import Triple
from repro.text.stem import stem
from repro.text.tokenize import tokenize


def _key_tokens(text: str) -> frozenset:
    return frozenset(stem(t) for t in tokenize(text) if t[:1].isalnum())


def _jaccard(a: frozenset, b: frozenset) -> float:
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union) if union else 0.0


def sibling_similarity(a: Triple, b: Triple) -> float:
    """Structure + semantics similarity in [0, 1].

    Weighted combination: subject identity (0.4), predicate similarity
    (0.4), object similarity (0.2). Sharing subject and predicate exactly —
    the canopy structure — already yields 0.8, above the default alpha.
    """
    subject_sim = _jaccard(_key_tokens(a.subject), _key_tokens(b.subject))
    predicate_sim = _jaccard(_key_tokens(a.predicate), _key_tokens(b.predicate))
    object_sim = _jaccard(_key_tokens(a.object), _key_tokens(b.object))
    return 0.4 * subject_sim + 0.4 * predicate_sim + 0.2 * object_sim


def find_sibling_pairs(
    triples: Sequence[Triple], alpha: float = 0.75
) -> List[Tuple[int, int]]:
    """Index pairs (i < j) with similarity >= ``alpha``. O(n^2) traverse."""
    pairs: List[Tuple[int, int]] = []
    n = len(triples)
    for i in range(n):
        for j in range(i + 1, n):
            if sibling_similarity(triples[i], triples[j]) >= alpha:
                pairs.append((i, j))
    return pairs


def fuse_pair(a: Triple, b: Triple) -> Triple:
    """Fuse a sibling pair into one triple with merged objects.

    Objects whose content tokens are covered by another merged object are
    dropped ("in 1885" subsumes "1885"), keeping the fusion minimal.
    """
    objects_a = (a.object,) + a.extra_objects
    objects_b = (b.object,) + b.extra_objects
    candidates: List[str] = []
    seen = set()
    for obj in objects_a + objects_b:
        key = obj.lower()
        if key not in seen:
            seen.add(key)
            candidates.append(obj)
    token_sets = [_key_tokens(obj) for obj in candidates]
    merged: List[str] = []
    for i, obj in enumerate(candidates):
        subsumed = any(
            i != j
            and (
                token_sets[i] < token_sets[j]
                or (token_sets[i] == token_sets[j] and j < i)
            )
            for j in range(len(candidates))
        )
        if not subsumed:
            merged.append(obj)
    return Triple(
        subject=a.subject,
        predicate=a.predicate,
        object=merged[0],
        extra_objects=tuple(merged[1:]),
        source="fusion",
        sentence_index=min(a.sentence_index, b.sentence_index),
        confidence=max(a.confidence, b.confidence),
    )


def fuse_siblings(
    triples: Sequence[Triple], alpha: float = 0.75, max_rounds: int = 10
) -> List[Triple]:
    """Repeatedly fuse sibling pairs until none remain above ``alpha``.

    Each round fuses disjoint pairs (a triple participates in at most one
    fusion per round), so the procedure terminates in O(log n) rounds with
    O(n^2) work per round.
    """
    current = list(triples)
    for _ in range(max_rounds):
        pairs = find_sibling_pairs(current, alpha=alpha)
        if not pairs:
            break
        used = set()
        fused: List[Triple] = []
        consumed = set()
        for i, j in pairs:
            if i in used or j in used:
                continue
            used.update((i, j))
            consumed.update((i, j))
            fused.append(fuse_pair(current[i], current[j]))
        current = [t for k, t in enumerate(current) if k not in consumed] + fused
    return current
