"""Updated-question composition (paper: "we add the knowledge of
updater-clue into the original question to generate a new question q' in a
de-duplication way")."""

from __future__ import annotations

from typing import Set

from repro.oie.triple import Triple
from repro.text.tokenize import tokenize


def compose_updated_question(question: str, clue: Triple) -> str:
    """Append the clue triple's novel tokens to the question.

    Tokens already present in the question (case-insensitive) are skipped,
    so repeated entity mentions do not pile up across hops.

    >>> from repro.oie.triple import Triple
    >>> compose_updated_question(
    ...     "Which club did Davis play for?",
    ...     Triple("Davis", "played for", "Millwall"))
    'Which club did Davis play for? played Millwall'
    """
    seen: Set[str] = set(tokenize(question))
    extra = []
    for token in clue.flatten().split():
        lowered_parts = tokenize(token)
        if all(part in seen for part in lowered_parts):
            continue
        extra.append(token)
        seen.update(lowered_parts)
    if not extra:
        return question
    return f"{question} {' '.join(extra)}"
