"""Unit tests for the question updater: golden supervision, question
composition and the learned clue selector."""

import numpy as np
import pytest

from repro.oie.triple import Triple
from repro.updater.golden import (
    golden_expansion_terms,
    ground_clue_index,
    ground_updated_question,
)
from repro.updater.question import compose_updated_question
from repro.updater.updater import QuestionUpdater, UpdaterConfig, UpdaterTrainer


class TestComposeUpdatedQuestion:
    def test_appends_novel_tokens(self):
        clue = Triple("Davis", "played for", "Millwall")
        out = compose_updated_question("Which club did Davis play for?", clue)
        assert "Millwall" in out
        assert out.startswith("Which club did Davis play for?")

    def test_deduplicates(self):
        clue = Triple("Davis", "played for", "Millwall")
        question = "When was Millwall founded? Davis played"
        out = compose_updated_question(question, clue)
        assert out.count("Millwall") == 1

    def test_all_duplicate_returns_question(self):
        clue = Triple("Davis", "played", "club")
        question = "davis played club"
        assert compose_updated_question(question, clue) == question


class TestGoldenSupervision:
    def test_ground_clue_prefers_bridge_title(self, corpus, store, hotpot):
        question = next(q for q in hotpot.train if q.is_bridge)
        hop1 = corpus.by_title(question.gold_titles[0])
        hop2 = corpus.by_title(question.gold_titles[1])
        triples = store.triples(hop1.doc_id)
        index = ground_clue_index(triples, hop2)
        assert index is not None
        assert hop2.title.split()[0].lower() in triples[index].flatten().lower()

    def test_ground_clue_empty_triples(self, corpus):
        assert ground_clue_index([], corpus[0]) is None

    def test_ground_updated_question_contains_bridge(self, corpus, store, hotpot):
        question = next(q for q in hotpot.train if q.is_bridge)
        hop1 = corpus.by_title(question.gold_titles[0])
        hop2 = corpus.by_title(question.gold_titles[1])
        updated = ground_updated_question(
            question.text, store.triples(hop1.doc_id), hop2
        )
        assert updated is not None
        # at least part of the bridge entity name enters the new question
        assert any(
            token in updated for token in question.gold_titles[1].split()
        )

    def test_expansion_terms_novel_only(self):
        terms = golden_expansion_terms(
            "who is Walter Davis", ["Walter Davis", "Millwall Athletic"]
        )
        assert terms == ["Millwall Athletic"]

    def test_expansion_terms_empty(self):
        assert golden_expansion_terms("question", []) == []


class TestQuestionUpdater:
    def test_score_shape(self, encoder, store):
        updater = QuestionUpdater(encoder)
        triples = store.triples(store.doc_ids()[0])
        scores = updater.score_triples("some question", triples)
        assert scores.shape == (len(triples),)

    def test_select_clue(self, encoder, store):
        updater = QuestionUpdater(encoder)
        triples = store.triples(store.doc_ids()[0])
        index, clue = updater.select_clue("some question", triples)
        assert triples[index] is clue

    def test_select_clue_empty(self, encoder):
        updater = QuestionUpdater(encoder)
        assert updater.select_clue("q", []) is None

    def test_update_question_returns_new_text(self, encoder, store):
        updater = QuestionUpdater(encoder)
        triples = store.triples(store.doc_ids()[0])
        out = updater.update_question("completely unrelated words", triples)
        assert len(out) > len("completely unrelated words")

    def test_update_question_no_triples(self, encoder):
        updater = QuestionUpdater(encoder)
        assert updater.update_question("q", []) == "q"


class TestUpdaterTraining:
    def test_build_examples_bridge_only(self, encoder, hotpot, corpus, store):
        updater = QuestionUpdater(encoder)
        trainer = UpdaterTrainer(updater)
        examples = trainer.build_examples(hotpot.train[:30], corpus, store)
        assert examples
        for _question, triples, gold in examples:
            assert 0 <= gold < len(triples)

    def test_training_reduces_loss(self, encoder, hotpot, corpus, store):
        updater = QuestionUpdater(
            encoder, UpdaterConfig(epochs=3, lr=5e-3)
        )
        trainer = UpdaterTrainer(updater)
        examples = trainer.build_examples(hotpot.train[:15], corpus, store)
        losses = trainer.train(examples)
        assert losses[-1] < losses[0]

    def test_trained_selector_beats_chance(self, encoder, hotpot, corpus, store):
        updater = QuestionUpdater(encoder, UpdaterConfig(epochs=4, lr=5e-3))
        trainer = UpdaterTrainer(updater)
        examples = trainer.build_examples(hotpot.train[:40], corpus, store)
        trainer.train(examples)
        hits = 0
        chance = 0.0
        for question, triples, gold in examples:
            scores = updater.score_triples(question, triples)
            hits += int(scores.argmax()) == gold
            chance += 1.0 / len(triples)
        assert hits >= chance  # at least random-selection accuracy
