"""Unit tests for the baseline retrievers."""

import numpy as np
import pytest

from repro.baselines.dense_base import DenseConfig, DenseRetriever
from repro.baselines.golden_retriever import GoldEnRetriever
from repro.baselines.hop_retriever import HopRetrieverBaseline
from repro.baselines.lexical import LexicalRetriever
from repro.baselines.mdr import MDRRetriever
from repro.baselines.path_retriever import PathRetrieverBaseline, PathRetrieverConfig
from repro.baselines.tprr import TPRRRetriever
from repro.retriever.negatives import mine_training_examples


class TestLexicalRetriever:
    def test_text_field_retrieval(self, corpus):
        lexical = LexicalRetriever(corpus)
        document = corpus[0]
        titles = lexical.retrieve_titles(document.title, k=5)
        assert document.title in titles

    def test_triple_field_retrieval(self, corpus, store):
        lexical = LexicalRetriever(corpus, store=store)
        document = next(d for d in corpus if d.entity.kind == "club")
        titles = lexical.retrieve_titles(
            f"when was {document.title} established", k=5, field="triples"
        )
        assert document.title in titles

    def test_tfidf_scorer(self, corpus):
        lexical = LexicalRetriever(corpus, scorer="tfidf")
        assert lexical.retrieve("football club", k=3)

    def test_extra_fields(self, corpus):
        extra = {"custom": {0: "zzyzx unique token"}}
        lexical = LexicalRetriever(corpus, extra_fields=extra)
        hits = lexical.retrieve("zzyzx", k=3, field="custom")
        assert hits and hits[0].doc_id == 0


class TestGoldEn:
    def test_one_hop(self, corpus):
        golden = GoldEnRetriever(corpus)
        document = corpus[0]
        assert document.title in golden.retrieve_documents(document.title, k=5)

    def test_query_generation_adds_entity(self, corpus, hotpot):
        golden = GoldEnRetriever(corpus)
        question = next(q for q in hotpot.train if q.is_bridge)
        hop1 = corpus.by_title(question.gold_titles[0])
        generated = golden.generate_query(question.text, hop1.doc_id)
        assert len(generated) >= len(question.text)

    def test_paths_shape(self, corpus, hotpot):
        golden = GoldEnRetriever(corpus, k_hop1=3, k_hop2=2)
        paths = golden.retrieve_paths(hotpot.test[0].text, k_paths=5)
        assert paths and all(len(p) == 2 for p in paths)
        assert all(p[0] != p[1] for p in paths)


@pytest.fixture(scope="module")
def dense(encoder, corpus):
    retriever = DenseRetriever(
        encoder, corpus, DenseConfig(epochs=1, lr=1e-4)
    )
    retriever.refresh_embeddings()
    return retriever


class TestDenseBase:
    def test_retrieve_shapes(self, dense):
        hits = dense.retrieve("football club", k=5)
        assert len(hits) == 5
        scores = [s for _, s in hits]
        assert scores == sorted(scores, reverse=True)

    def test_exclude(self, dense):
        hits = dense.retrieve("club", k=5, exclude=[0, 1])
        assert all(d not in (0, 1) for d, _ in hits)

    def test_title_query_ranks_doc_above_median(self, dense, corpus):
        document = corpus[0]
        titles = dense.retrieve_titles(document.title, k=len(corpus) // 2)
        assert document.title in titles

    def test_training_runs(self, dense, hotpot, corpus, store):
        examples = mine_training_examples(hotpot.train[:6], corpus, store)
        losses = dense.train(examples)
        assert len(losses) == 1 and np.isfinite(losses[0])

    def test_vector_query(self, dense):
        vec = dense.encode_query("some question")
        hits = dense.retrieve_by_vector(vec, k=3)
        assert len(hits) == 3


class TestTPRRandMDR:
    def test_tprr_paths(self, encoder, corpus, hotpot):
        tprr = TPRRRetriever(encoder, corpus, k_hop1=3, k_hop2=2)
        paths = tprr.retrieve_paths(hotpot.test[0].text, k_paths=4)
        assert paths and all(len(p) == 2 for p in paths)

    def test_mdr_hop2_query_contains_document(self, encoder, corpus, hotpot):
        mdr = MDRRetriever(encoder, corpus)
        question = hotpot.test[0]
        query = mdr.hop2_query(question.text, 0)
        assert corpus[0].text in query

    def test_mdr_paths(self, encoder, corpus, hotpot):
        mdr = MDRRetriever(encoder, corpus, k_hop1=3, k_hop2=2)
        paths = mdr.retrieve_paths(hotpot.test[0].text, k_paths=4)
        assert paths and all(p[0] != p[1] for p in paths)


class TestPathRetrieverBaseline:
    def test_paths_respect_hyperlinks(self, encoder, corpus, hotpot):
        baseline = PathRetrieverBaseline(encoder, corpus)
        for question in hotpot.test[:3]:
            for hop1_title, hop2_title in baseline.retrieve_paths(question.text):
                hop1 = corpus.by_title(hop1_title)
                neighbour_titles = {d.title for d in corpus.neighbours(hop1)}
                assert hop2_title in neighbour_titles

    def test_training_runs(self, encoder, corpus, hotpot):
        baseline = PathRetrieverBaseline(
            encoder, corpus, config=PathRetrieverConfig(epochs=1)
        )
        losses = baseline.train(hotpot.train[:10])
        assert len(losses) == 1


class TestHopRetrieverBaseline:
    def test_document_text_contains_entities(self, encoder, corpus):
        baseline = HopRetrieverBaseline(encoder, corpus)
        document = next(d for d in corpus if d.entity.kind == "person")
        text = baseline.document_text(document.doc_id)
        assert document.title in text

    def test_hop2_query_uses_entities_not_text(self, encoder, corpus, hotpot):
        baseline = HopRetrieverBaseline(encoder, corpus)
        question = hotpot.test[0]
        query = baseline.hop2_query(question.text, 0)
        assert len(query) < len(question.text) + len(corpus[0].text)

    def test_paths(self, encoder, corpus, hotpot):
        baseline = HopRetrieverBaseline(encoder, corpus, k_hop1=3, k_hop2=2)
        paths = baseline.retrieve_paths(hotpot.test[0].text, k_paths=4)
        assert paths
