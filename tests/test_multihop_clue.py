"""Focused tests for the hop-2 clue-vector mechanics."""

import numpy as np
import pytest

from repro.pipeline.multihop import MultiHopConfig, MultiHopRetriever
from repro.updater.updater import QuestionUpdater


@pytest.fixture(scope="module")
def multihop(retriever, encoder):
    updater = QuestionUpdater(encoder)
    return MultiHopRetriever(
        retriever, updater, MultiHopConfig(k_hop1=4, k_hop2=3, k_paths=8)
    )


class TestClueVector:
    def test_clue_changes_hop2_ranking(self, multihop, retriever, hotpot, corpus):
        """With a clue, hop-2 results must differ from hop-1 results for
        at least some questions (the drowning failure mode would make
        them identical everywhere)."""
        differs = 0
        for question in hotpot.test[:8]:
            paths = multihop.retrieve_paths(question.text)
            hop1_ids = {p.doc_ids[0] for p in paths}
            hop2_ids = {p.doc_ids[1] for p in paths}
            if hop2_ids - hop1_ids:
                differs += 1
        assert differs > 0

    def test_clue_weight_zero_reduces_to_question(self, retriever, encoder, hotpot):
        updater = QuestionUpdater(encoder)
        no_clue = MultiHopRetriever(
            retriever,
            updater,
            MultiHopConfig(k_hop1=3, k_hop2=3, clue_weight=0.0),
        )
        question = hotpot.test[0].text
        paths = no_clue.retrieve_paths(question)
        hop1 = [r.doc_id for r in retriever.retrieve(question, k=3)]
        # with no clue contribution, hop-2 ranking mirrors hop-1 (minus
        # the excluded hop-1 doc)
        for path in paths[:3]:
            assert path.doc_ids[1] in hop1 or path.doc_ids[1] not in hop1[:1]

    def test_gold_clue_boosts_gold_hop2(self, retriever, encoder, corpus, hotpot, store):
        """Oracle check: mixing in the gold clue's novel tokens must rank
        the gold hop-2 document above its rank under the plain question
        for a majority of answerable bridge questions."""
        from repro.updater.golden import ground_clue_index

        improved = total = 0
        for question in hotpot.test:
            if not question.is_bridge:
                continue
            hop1 = corpus.by_title(question.gold_titles[0])
            hop2 = corpus.by_title(question.gold_titles[1])
            triples = store.triples(hop1.doc_id)
            gold = ground_clue_index(triples, hop2)
            if gold is None:
                continue
            clue = triples[gold]
            question_tokens = set(
                t.lower() for t in question.text.replace("?", " ").split()
            )
            novel = [
                t
                for t in clue.flatten().split()
                if t.lower() not in question_tokens and t[:1].isupper()
            ]
            if not novel:
                continue
            question_vec = retriever.encode_question(question.text)
            clue_vec = encoder.encode_numpy([" ".join(novel)])[0]
            mixed = question_vec / np.linalg.norm(question_vec) + clue_vec / (
                np.linalg.norm(clue_vec) or 1.0
            )

            def rank_of(vec):
                results = retriever.retrieve_by_vector(vec, k=len(corpus))
                for position, result in enumerate(results):
                    if result.title == hop2.title:
                        return position
                return len(corpus)

            total += 1
            if rank_of(mixed) < rank_of(question_vec):
                improved += 1
        assert total > 0
        assert improved / total > 0.5
