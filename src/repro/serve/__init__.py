"""Concurrent retrieval serving: micro-batching, caching, backpressure.

The production-facing layer over the vectorized retrievers::

    from repro.serve import RetrievalService, ServiceConfig

    with RetrievalService(retriever, multihop=multihop) as service:
        docs = service.retrieve("who founded Millwall ?", k=5)
        paths = service.retrieve_paths("where was the founder born ?")
        print(service.stats_summary())

See ``repro serve-bench`` for a CLI harness that replays a query file
from many client threads and reports throughput/latency/cache stats.
"""

from repro.serve.batching import BatchQueue, PendingRequest
from repro.serve.cache import MISS, CacheStats, ResultCache, query_cache_key
from repro.serve.errors import (
    DeadlineExceeded,
    Overloaded,
    ServeError,
    ServiceStopped,
)
from repro.serve.service import MODES, RetrievalService, ServiceConfig
from repro.serve.stats import ServiceStats, merge_snapshots

__all__ = [
    "BatchQueue",
    "CacheStats",
    "DeadlineExceeded",
    "MISS",
    "MODES",
    "Overloaded",
    "PendingRequest",
    "ResultCache",
    "RetrievalService",
    "ServeError",
    "ServiceConfig",
    "ServiceStats",
    "ServiceStopped",
    "merge_snapshots",
    "query_cache_key",
]
