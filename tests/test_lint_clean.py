"""Tier-1 gate: the repository's own tree lints clean.

Runs the full rule catalog (as configured by ``[tool.repro.lint]`` in
``pyproject.toml``) over ``src``, ``tests`` and ``benchmarks``. A failure
here means a rule caught a real regression of one of our recorded bug
classes — fix the code (or, with a written justification, add a
``# lint: ignore[rule-id]`` on the offending line); never weaken the rule.
"""

from pathlib import Path

import pytest

from repro.analysis import all_rule_ids, load_config, render_text, run_lint

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[1]

PROJECT_RULES = {
    "unlocked-shared-state",
    "lock-order-cycle",
    "layering-violation",
    "dead-symbol",
}


def test_project_passes_are_registered():
    """The gate below is only meaningful if phase 2 actually runs."""
    registered = set(all_rule_ids())
    assert PROJECT_RULES <= registered
    assert len(registered) >= 16


def test_layer_dag_is_configured():
    config = load_config(REPO_ROOT)
    assert config.layers_order, "layering rule disabled: no layer order"
    assert set(config.layers) == set(config.layers_order)


def test_repository_lints_clean():
    config = load_config(REPO_ROOT)
    paths = [REPO_ROOT / p for p in config.paths]
    existing = [p for p in paths if p.exists()]
    assert existing, f"configured lint paths missing: {config.paths}"
    report = run_lint(existing, config=config)
    assert not report.findings, "\n" + render_text(report)
    # sanity: the walk actually covered the tree (not an empty glob)
    assert report.files_scanned > 50
