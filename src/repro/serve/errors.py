"""Typed failures of the retrieval service.

Backpressure is explicit: an overloaded service rejects *now* with
:class:`Overloaded` instead of queueing into unbounded latency, and a
request that cannot make its deadline fails with
:class:`DeadlineExceeded` instead of returning stale-late results.
Clients can catch :class:`ServeError` to handle all of them uniformly.
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base class for every service-side rejection or failure."""


class Overloaded(ServeError):
    """Admission control rejected the request: the pending queue is full.

    Raised synchronously by ``submit``/``retrieve`` — the caller should
    back off and retry, shed the request, or raise its own 503.
    """


class DeadlineExceeded(ServeError):
    """The request's deadline passed before a worker could serve it."""


class ServiceStopped(ServeError):
    """The service is stopped (or stopping) and accepts no new work."""
